//! Pipeline telemetry: the `GenObserver` hook API, per-phase timings
//! and memory accounting, a metrics registry, and a Chrome-trace
//! recorder.
//!
//! The paper's evaluation (Table 1, RQ2/RQ3) reports *per-use-case*
//! runtime and memory for the five-phase pipeline, and the CrySL line of
//! work stresses rule-level diagnostics over opaque totals. This module
//! is the observability layer that makes both visible without changing
//! what the pipeline emits:
//!
//! * [`GenObserver`] — the hook trait. The generator opens one span per
//!   [`Phase`] per template (enter/exit with the measured wall time and
//!   the [`AllocDelta`] of the span, when [`crate::memtrack`] is
//!   installed) and reports fine-grained [`Event`]s from inside the
//!   phases: ORDER-cache hits and misses, DFA state counts, enumerated
//!   accepting paths, per-parameter resolution outcomes, batch-worker
//!   job placement.
//! * [`PhaseTimings`] — an observer that accumulates monotonic per-phase
//!   wall time *and* per-phase allocation deltas per template unit —
//!   both of Table 1's measured columns.
//! * [`MetricsRegistry`] — named counters, gauges and histograms with a
//!   deterministic [`MetricsRegistry::merge_from`], so per-worker
//!   registries collected by a batch can be folded in input order into
//!   one aggregate regardless of scheduling.
//! * [`MetricsCollector`] — the observer that maps spans and events onto
//!   a registry (see the module constants for the metric names).
//! * [`TraceRecorder`] — an observer that records the span/event stream
//!   with monotonic timestamps and serializes it in Chrome Trace Event
//!   Format, openable in `chrome://tracing` or Perfetto
//!   ([`validate_trace`] checks a written file's invariants).
//!
//! Everything here is `std`-only and allocation-light; the
//! [`NoopObserver`] path adds no measurable work, and the differential
//! suite proves telemetry-on output byte-identical to telemetry-off.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use devharness::json::Json;

use crate::memtrack::{AllocDelta, AllocScope};

/// The five pipeline phases of the paper's Figure 6, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Gather rules and template parameters from each call chain.
    Collect,
    /// Connect rules through ENSURES/REQUIRES predicates.
    Link,
    /// Select a method sequence per rule from its state machine.
    Select,
    /// Find a value for every method parameter.
    Resolve,
    /// Emit the Java code, the showcase class, and the type check.
    Assemble,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Collect,
        Phase::Link,
        Phase::Select,
        Phase::Resolve,
        Phase::Assemble,
    ];

    /// Stable lowercase name, used in metric keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Collect => "collect",
            Phase::Link => "link",
            Phase::Select => "select",
            Phase::Resolve => "resolve",
            Phase::Assemble => "assemble",
        }
    }

    /// Position in [`Phase::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One phase execution for one template: the unit label is the template
/// class name, which is what Table 1 keys its rows by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span<'a> {
    /// Template class name (the per-use-case label).
    pub unit: &'a str,
    /// The pipeline phase this span covers.
    pub phase: Phase,
}

/// How a compiled-ORDER lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Compiled on this lookup and inserted.
    Miss,
    /// No cache in play — the cold enumeration path.
    Uncached,
}

/// How a rule parameter obtained its value (the discriminant of
/// [`crate::resolve::Resolution`], without payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionKind {
    /// Bound to a template variable by `addParameter`.
    Template,
    /// Supplied by a predicate link from an earlier rule.
    Linked,
    /// Bound by an earlier event of the same rule.
    OwnReturn,
    /// The rule's own instance.
    This,
    /// A literal derived from CONSTRAINTS.
    Constraint,
    /// Unresolvable — hoisted into the wrapper signature.
    Hoist,
}

impl ResolutionKind {
    /// Stable lowercase name, used in metric keys.
    pub fn name(self) -> &'static str {
        match self {
            ResolutionKind::Template => "template",
            ResolutionKind::Linked => "linked",
            ResolutionKind::OwnReturn => "own_return",
            ResolutionKind::This => "this",
            ResolutionKind::Constraint => "constraint",
            ResolutionKind::Hoist => "hoist",
        }
    }
}

/// A fine-grained pipeline event, reported from inside a phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// A rule's compiled-ORDER artefact was obtained during selection.
    /// `dfa_states` is `None` on the cold path, which enumerates paths
    /// without building the minimized DFA.
    OrderCompiled {
        /// Rule class name.
        rule: &'a str,
        /// States of the minimized DFA, when compiled.
        dfa_states: Option<usize>,
        /// Enumerated accepting call sequences.
        accepting_paths: usize,
        /// How the artefact was served.
        cache: CacheOutcome,
    },
    /// Path selection finished for one rule.
    PathSelected {
        /// Rule class name.
        rule: &'a str,
        /// Paths the selector considered (the enumerated set).
        enumerated: usize,
        /// Call count of the chosen path.
        chosen_len: usize,
        /// Parameters the chosen path leaves to the hoisting fallback.
        hoisted: usize,
    },
    /// A method parameter of a selected path was resolved.
    ParamResolved {
        /// Rule class name.
        rule: &'a str,
        /// The CrySL variable.
        variable: &'a str,
        /// Which resolution rule supplied the value.
        via: ResolutionKind,
    },
    /// A method parameter fell through to the hoisting fallback.
    ParamHoisted {
        /// Rule class name.
        rule: &'a str,
        /// The CrySL variable.
        variable: &'a str,
    },
    /// A batch job completed on an engine worker. Reported *after* the
    /// fan-out joins, in input order; the worker assignment itself is
    /// scheduling-dependent.
    BatchJob {
        /// Worker ordinal within the batch pool.
        worker: usize,
        /// Index of the job in the batch input.
        index: usize,
    },
}

/// Observer hooks for the generation pipeline.
///
/// All methods have empty defaults, so an implementation only overrides
/// what it cares about. Implementations must be `Send + Sync`: the
/// engine shares one observer across batch workers. Hook invariants the
/// generator guarantees (and the test suite enforces):
///
/// * spans never nest and arrive in [`Phase::ALL`] order — exactly one
///   `span_enter`/`span_exit` pair per phase per generated template;
/// * `span_exit` receives the monotonic wall time of the span plus the
///   span's [`AllocDelta`], and is called even when the phase fails
///   (the error still propagates);
/// * the alloc delta is all zeros unless the binary installed
///   [`crate::memtrack::TrackingAlloc`] as its global allocator;
/// * events are reported between the enter and exit of the phase they
///   belong to, except [`Event::BatchJob`], which the engine reports
///   after the batch joins.
pub trait GenObserver: Send + Sync {
    /// A pipeline phase is starting for `span.unit`.
    fn span_enter(&self, span: &Span<'_>) {
        let _ = span;
    }

    /// A pipeline phase finished after `elapsed` of monotonic wall
    /// time, allocating `alloc` on the executing thread.
    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        let _ = (span, elapsed, alloc);
    }

    /// A fine-grained pipeline event occurred.
    fn event(&self, event: &Event<'_>) {
        let _ = event;
    }
}

/// The do-nothing observer: the default everywhere, and the reference
/// point of the telemetry-off differential tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl GenObserver for NoopObserver {}

/// A `&'static` no-op observer for default parameters.
pub fn noop() -> &'static NoopObserver {
    static NOOP: NoopObserver = NoopObserver;
    &NOOP
}

/// Forwards every hook to both targets, in order. Lets the engine run
/// its own metrics collector alongside a user-supplied observer without
/// allocating.
#[derive(Clone, Copy)]
pub struct Tee<'a>(pub &'a dyn GenObserver, pub &'a dyn GenObserver);

impl GenObserver for Tee<'_> {
    fn span_enter(&self, span: &Span<'_>) {
        self.0.span_enter(span);
        self.1.span_enter(span);
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        self.0.span_exit(span, elapsed, alloc);
        self.1.span_exit(span, elapsed, alloc);
    }

    fn event(&self, event: &Event<'_>) {
        self.0.event(event);
        self.1.event(event);
    }
}

/// Forwards every hook to a list of shared observers, in order.
#[derive(Default, Clone)]
pub struct Fanout {
    targets: Vec<Arc<dyn GenObserver>>,
}

impl Fanout {
    /// An empty fan-out (equivalent to [`NoopObserver`]).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a target observer.
    pub fn with(mut self, target: Arc<dyn GenObserver>) -> Self {
        self.targets.push(target);
        self
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fanout({} targets)", self.targets.len())
    }
}

impl GenObserver for Fanout {
    fn span_enter(&self, span: &Span<'_>) {
        for t in &self.targets {
            t.span_enter(span);
        }
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        for t in &self.targets {
            t.span_exit(span, elapsed, alloc);
        }
    }

    fn event(&self, event: &Event<'_>) {
        for t in &self.targets {
            t.event(event);
        }
    }
}

/// RAII span: `span_enter` on construction, `span_exit` with the
/// measured monotonic time and the span's [`AllocDelta`] on drop — so a
/// phase that errors out still closes its span and the enter/exit
/// pairing invariant holds.
///
/// The allocation scope opens *after* `span_enter` returns and the
/// delta is computed *before* `span_exit` runs, so an observer's own
/// bookkeeping at the span boundaries is never charged to the phase.
/// Event-handling allocations inside the phase are in scope — they are
/// part of what the phase cost.
pub struct SpanTimer<'o, 'u> {
    observer: &'o dyn GenObserver,
    span: Span<'u>,
    scope: Option<AllocScope>,
    start: Instant,
}

impl<'o, 'u> SpanTimer<'o, 'u> {
    /// Opens the span and starts the clock and the allocation scope.
    pub fn enter(observer: &'o dyn GenObserver, span: Span<'u>) -> Self {
        observer.span_enter(&span);
        SpanTimer {
            observer,
            span,
            scope: Some(AllocScope::enter()),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_, '_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let alloc = self
            .scope
            .take()
            .map(AllocScope::finish)
            .unwrap_or_default();
        self.observer.span_exit(&self.span, elapsed, alloc);
    }
}

// ---------------------------------------------------------------------
// PhaseTimings
// ---------------------------------------------------------------------

/// Accumulated wall time, span count and allocation activity for one
/// phase of one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Completed spans.
    pub spans: u64,
    /// Total monotonic wall time across those spans.
    pub total: Duration,
    /// Bytes allocated across those spans (zero unless
    /// [`crate::memtrack::TrackingAlloc`] is installed).
    pub alloc_bytes: u64,
    /// Allocations across those spans.
    pub allocations: u64,
    /// Largest scope-relative peak of live bytes any single span
    /// reached.
    pub peak_live_bytes: u64,
}

/// Per-phase timings of one template unit (one Table-1 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitTimings {
    /// Template class name.
    pub unit: String,
    /// One slot per [`Phase::ALL`] entry, in phase order.
    pub phases: [PhaseStat; 5],
}

impl UnitTimings {
    /// The stat for one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStat {
        self.phases[phase.index()]
    }

    /// Wall time summed over all five phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.total).sum()
    }

    /// Bytes allocated, summed over all five phases.
    pub fn alloc_total_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.alloc_bytes).sum()
    }

    /// The largest per-span peak of live bytes any phase reached.
    pub fn peak_live_bytes(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.peak_live_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// An observer that collects monotonic per-phase wall time and
/// allocation deltas per unit — the Table-1 runtime *and* memory
/// columns, split by pipeline phase.
///
/// Thread-safe; share it via [`Arc`] between the engine observer slot
/// and the reporting code that reads the snapshot afterwards.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    inner: Mutex<BTreeMap<String, [PhaseStat; 5]>>,
}

impl PhaseTimings {
    /// An empty collector.
    pub fn new() -> Self {
        PhaseTimings::default()
    }

    /// The timings recorded for `unit`, if any span completed for it.
    pub fn unit(&self, unit: &str) -> Option<UnitTimings> {
        self.lock().get(unit).map(|phases| UnitTimings {
            unit: unit.to_owned(),
            phases: *phases,
        })
    }

    /// All recorded units, sorted by unit name.
    pub fn snapshot(&self) -> Vec<UnitTimings> {
        self.lock()
            .iter()
            .map(|(unit, phases)| UnitTimings {
                unit: unit.clone(),
                phases: *phases,
            })
            .collect()
    }

    /// Drops all recorded timings.
    pub fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, [PhaseStat; 5]>> {
        match self.inner.lock() {
            Ok(g) => g,
            // Writers only do field arithmetic; the map is never left
            // mid-mutation, so continuing after a poisoned lock is sound.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl GenObserver for PhaseTimings {
    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        let mut map = self.lock();
        let slot = &mut map.entry(span.unit.to_owned()).or_default()[span.phase.index()];
        slot.spans += 1;
        slot.total += elapsed;
        slot.alloc_bytes += alloc.allocated_bytes;
        slot.allocations += alloc.allocations;
        slot.peak_live_bytes = slot.peak_live_bytes.max(alloc.peak_live_bytes);
    }
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

/// Order-insensitive histogram summary: merging two summaries gives the
/// same result whatever the merge order, which is what makes batch
/// metrics deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStat {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramStat {
    /// Folds one sample in.
    pub fn observe(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Folds another summary in (commutative and associative).
    pub fn merge(&mut self, other: &HistogramStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Arithmetic mean of the samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One named metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic count; merges by addition.
    Counter(u64),
    /// Last-set value; merges by maximum (the only order-insensitive
    /// choice that keeps batch aggregation deterministic).
    Gauge(u64),
    /// Sample summary; merges per [`HistogramStat::merge`].
    Histogram(HistogramStat),
}

impl Metric {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Metric::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// The histogram summary, if this is a histogram.
    pub fn as_histogram(&self) -> Option<HistogramStat> {
        match self {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        }
    }
}

/// A thread-safe registry of named counters, gauges and histograms.
///
/// Keys are sorted (`BTreeMap`), every merge operation is commutative
/// and associative, and histograms store order-insensitive summaries —
/// so two registries that saw the same multiset of operations are equal,
/// and folding per-worker registries in input order after a batch yields
/// the same aggregate at any thread count.
///
/// A name is bound to the kind of its first write; operations of a
/// different kind on the same name are ignored (and flagged in debug
/// builds) rather than corrupting the entry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, n: u64) {
        let mut map = self.lock();
        match map.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "`{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut map = self.lock();
        match map.entry(name.to_owned()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(g) => *g = value,
            other => debug_assert!(false, "`{name}` is not a gauge: {other:?}"),
        }
    }

    /// Folds `sample` into the histogram `name`.
    pub fn observe(&self, name: &str, sample: u64) {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert(Metric::Histogram(HistogramStat::default()))
        {
            Metric::Histogram(h) => h.observe(sample),
            other => debug_assert!(false, "`{name}` is not a histogram: {other:?}"),
        }
    }

    /// The metric registered under `name`.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.lock().get(name).copied()
    }

    /// The counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).and_then(|m| m.as_counter()).unwrap_or(0)
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// gauges take the maximum, histograms merge their summaries. The
    /// result is independent of merge order.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot();
        let mut map = self.lock();
        for (name, metric) in theirs {
            match (
                map.entry(name).or_insert(match metric {
                    Metric::Counter(_) => Metric::Counter(0),
                    Metric::Gauge(_) => Metric::Gauge(0),
                    Metric::Histogram(_) => Metric::Histogram(HistogramStat::default()),
                }),
                metric,
            ) {
                (Metric::Counter(mine), Metric::Counter(n)) => *mine += n,
                (Metric::Gauge(mine), Metric::Gauge(g)) => *mine = (*mine).max(g),
                (Metric::Histogram(mine), Metric::Histogram(h)) => mine.merge(&h),
                (mine, theirs) => {
                    debug_assert!(false, "metric kind mismatch: {mine:?} vs {theirs:?}");
                }
            }
        }
    }

    /// All metrics, keyed and sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.lock().clone()
    }

    /// Whether no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Renders every metric as a line-oriented text exposition, sorted
    /// by name — the payload of a daemon's `/metrics` endpoint. One
    /// line per metric:
    ///
    /// ```text
    /// <name> counter <value>
    /// <name> gauge <value>
    /// <name> histogram count=<n> sum=<s> min=<lo> max=<hi>
    /// ```
    ///
    /// The format is deterministic: two registries that saw the same
    /// multiset of operations render byte-identical text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            match metric {
                Metric::Counter(n) => {
                    let _ = writeln!(out, "{name} counter {n}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} gauge {g}");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} histogram count={} sum={} min={} max={}",
                        h.count, h.sum, h.min, h.max
                    );
                }
            }
        }
        out
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

// ---------------------------------------------------------------------
// MetricsCollector
// ---------------------------------------------------------------------

/// The observer that maps pipeline spans and events onto a
/// [`MetricsRegistry`].
///
/// Metric names it writes:
///
/// * `phase.<phase>.spans` — completed spans per phase (counter);
/// * `mem.phase.<phase>.alloc_bytes` — bytes allocated inside the
///   phase's spans (counter; zero unless
///   [`crate::memtrack::TrackingAlloc`] is installed);
/// * `mem.phase.<phase>.peak_live_bytes` — scope-relative peak live
///   bytes per span (histogram; `max` is the figure of interest);
/// * `order_cache.hits` / `order_cache.misses` / `order_cache.uncached`
///   — compiled-ORDER lookups by outcome (counters);
/// * `order.dfa_states`, `order.accepting_paths` — per-rule artefact
///   sizes (histograms);
/// * `pathsel.selections` (counter), `pathsel.candidates` (histogram),
///   `pathsel.hoisted_params` (counter);
/// * `resolve.params`, `resolve.hoisted` and `resolve.via.<kind>` —
///   parameter resolution outcomes (counters);
/// * `engine.batch.worker.<NN>.jobs` — jobs per batch worker (counter;
///   inherently scheduling-dependent, excluded from the determinism
///   guarantees).
///
/// Durations are deliberately *not* recorded here — wall time varies
/// across runs and would break the registry's determinism. Use
/// [`PhaseTimings`] for time.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    registry: Arc<MetricsRegistry>,
}

impl MetricsCollector {
    /// A collector writing into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsCollector { registry }
    }

    /// A collector over a fresh private registry.
    pub fn fresh() -> Self {
        MetricsCollector::new(Arc::new(MetricsRegistry::new()))
    }

    /// The registry this collector writes into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl GenObserver for MetricsCollector {
    fn span_exit(&self, span: &Span<'_>, _elapsed: Duration, alloc: AllocDelta) {
        let phase = span.phase.name();
        self.registry.add(&format!("phase.{phase}.spans"), 1);
        self.registry.add(
            &format!("mem.phase.{phase}.alloc_bytes"),
            alloc.allocated_bytes,
        );
        self.registry.observe(
            &format!("mem.phase.{phase}.peak_live_bytes"),
            alloc.peak_live_bytes,
        );
    }

    fn event(&self, event: &Event<'_>) {
        let r = &*self.registry;
        match event {
            Event::OrderCompiled {
                dfa_states,
                accepting_paths,
                cache,
                ..
            } => {
                let outcome = match cache {
                    CacheOutcome::Hit => "order_cache.hits",
                    CacheOutcome::Miss => "order_cache.misses",
                    CacheOutcome::Uncached => "order_cache.uncached",
                };
                r.add(outcome, 1);
                if let Some(states) = dfa_states {
                    r.observe("order.dfa_states", *states as u64);
                }
                r.observe("order.accepting_paths", *accepting_paths as u64);
            }
            Event::PathSelected {
                enumerated,
                hoisted,
                ..
            } => {
                r.add("pathsel.selections", 1);
                r.observe("pathsel.candidates", *enumerated as u64);
                r.add("pathsel.hoisted_params", *hoisted as u64);
            }
            Event::ParamResolved { via, .. } => {
                r.add("resolve.params", 1);
                r.add(&format!("resolve.via.{}", via.name()), 1);
            }
            Event::ParamHoisted { .. } => {
                r.add("resolve.params", 1);
                r.add("resolve.hoisted", 1);
            }
            Event::BatchJob { worker, .. } => {
                r.add(&format!("engine.batch.worker.{worker:02}.jobs"), 1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// LoadObserver
// ---------------------------------------------------------------------

/// The observer the load harness attaches to a library-target engine:
/// per-phase wall-time [`Histogram`]s (p50/p95/p99 with bounded error,
/// O(1) per span) plus the deterministic span counters of a
/// [`MetricsRegistry`].
///
/// This is deliberately the opposite trade-off from
/// [`MetricsCollector`], which excludes durations to stay
/// deterministic: a load harness exists to measure wall time, so the
/// histograms here are wall-clock by design and belong in the
/// non-deterministic section of a load report. The registry half
/// (`load.phase.<phase>.spans` counters) stays a pure function of the
/// workload and is what replay-determinism gates compare.
///
/// [`Histogram`]: devharness::histogram::Histogram
#[derive(Debug)]
pub struct LoadObserver {
    registry: Arc<MetricsRegistry>,
    phases: Mutex<BTreeMap<&'static str, devharness::histogram::Histogram>>,
}

impl Default for LoadObserver {
    fn default() -> Self {
        LoadObserver::new()
    }
}

impl LoadObserver {
    /// A fresh observer with an empty registry and empty histograms.
    pub fn new() -> Self {
        LoadObserver {
            registry: Arc::new(MetricsRegistry::new()),
            phases: Mutex::new(BTreeMap::new()),
        }
    }

    /// The deterministic half: `load.phase.<phase>.spans` counters.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A snapshot of the per-phase wall-time histograms, sorted by
    /// phase name.
    pub fn phase_histograms(&self) -> Vec<(String, devharness::histogram::Histogram)> {
        let map = match self.phases.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.iter()
            .map(|(name, h)| ((*name).to_owned(), h.clone()))
            .collect()
    }
}

impl GenObserver for LoadObserver {
    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, _alloc: AllocDelta) {
        let phase = span.phase.name();
        self.registry.add(&format!("load.phase.{phase}.spans"), 1);
        let mut map = match self.phases.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.entry(phase)
            .or_default()
            .record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

// ---------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------

/// One recorded trace entry, already reduced to the Chrome Trace Event
/// Format fields.
#[derive(Debug, Clone)]
struct TraceEvent {
    /// Event name (`name`): the phase name for spans, the event kind
    /// for instants.
    name: &'static str,
    /// Category (`cat`): `"phase"`, `"pipeline"` or `"engine"`.
    cat: &'static str,
    /// Phase type (`ph`): `'B'` (span begin), `'E'` (span end) or
    /// `'i'` (instant).
    ph: char,
    /// Microseconds since the recorder was created (`ts`).
    ts_us: f64,
    /// Small integer id of the recording thread (`tid`).
    tid: u64,
    /// The `args` object payload.
    args: Vec<(String, Json)>,
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<TraceEvent>,
    /// Maps OS thread identity to a stable small integer, in order of
    /// first appearance.
    tids: Vec<ThreadId>,
}

/// An observer that records the span/event stream with monotonic
/// timestamps and serializes it as a [Chrome Trace Event Format]
/// document — load the written file in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev) to see the pipeline's phases per
/// thread on a timeline, with cache traffic and resolution outcomes as
/// instant markers.
///
/// Guarantees the recorder maintains (and [`validate_trace`] checks on
/// a written file):
///
/// * every `B` has a matching `E` with the same name on the same `tid`
///   (spans close on error paths because [`SpanTimer`] is RAII);
/// * timestamps are non-decreasing per `tid` (they are taken from one
///   monotonic clock under the recorder's lock);
/// * `E` events carry the span's wall time and [`AllocDelta`] in
///   `args`; instant events carry their payload (cache outcome, DFA and
///   path-set sizes, resolution kinds) in `args`.
///
/// [Chrome Trace Event Format]:
/// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
#[derive(Debug)]
pub struct TraceRecorder {
    start: Instant,
    inner: Mutex<TraceInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// An empty recorder; its clock starts now.
    pub fn new() -> Self {
        TraceRecorder {
            start: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// Recorded events so far.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Drops all recorded events (the clock keeps running, so a
    /// recorder reused across runs stays monotonic).
    pub fn reset(&self) {
        self.lock().events.clear();
    }

    fn lock(&self) -> MutexGuard<'_, TraceInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one event, stamping it with the current thread's stable
    /// id and the recorder clock. The timestamp is taken under the lock
    /// so the event vector is globally time-ordered.
    fn push(&self, name: &'static str, cat: &'static str, ph: char, args: Vec<(String, Json)>) {
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let tid = match inner.tids.iter().position(|&t| t == thread) {
            Some(i) => i as u64,
            None => {
                inner.tids.push(thread);
                (inner.tids.len() - 1) as u64
            }
        };
        let ts_us = self.start.elapsed().as_nanos() as f64 / 1000.0;
        inner.events.push(TraceEvent {
            name,
            cat,
            ph,
            ts_us,
            tid,
            args,
        });
    }

    /// Serializes everything recorded so far as a Chrome Trace Event
    /// Format document (object form, `traceEvents` array).
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        Self::render(inner.events.iter())
    }

    fn render<'e>(events: impl Iterator<Item = &'e TraceEvent>) -> Json {
        let events = events
            .map(|e| {
                let mut members = vec![
                    ("name".to_owned(), Json::Str(e.name.to_owned())),
                    ("cat".to_owned(), Json::Str(e.cat.to_owned())),
                    ("ph".to_owned(), Json::Str(e.ph.to_string())),
                    ("ts".to_owned(), Json::Num(e.ts_us)),
                    ("pid".to_owned(), Json::Num(1.0)),
                    ("tid".to_owned(), Json::Num(e.tid as f64)),
                ];
                if e.ph == 'i' {
                    // Instant scope: thread-level marker.
                    members.push(("s".to_owned(), Json::Str("t".to_owned())));
                }
                members.push(("args".to_owned(), Json::Obj(e.args.clone())));
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("traceEvents".to_owned(), Json::Arr(events)),
            ("displayTimeUnit".to_owned(), Json::Str("ms".to_owned())),
        ])
    }

    /// [`TraceRecorder::to_json`] with capture-boundary artefacts
    /// removed, so the document always passes [`validate_trace`].
    ///
    /// A recorder that is armed and disarmed *while spans are in
    /// flight* — the daemon's `/profilez` capture window — can hold a
    /// truncated stream: an `E` whose `B` fell before arming, or a `B`
    /// whose `E` fell after disarming. Neither is recorder breakage
    /// (the full stream is balanced; the window just cut it), so this
    /// export drops exactly those unpaired events per `tid` and keeps
    /// everything else, instants included.
    pub fn to_balanced_json(&self) -> Json {
        let inner = self.lock();
        let mut keep = vec![true; inner.events.len()];
        // tid → stack of indices of currently-open B events.
        let mut open: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, e) in inner.events.iter().enumerate() {
            match e.ph {
                'B' => open.entry(e.tid).or_default().push(i),
                'E' => {
                    let stack = open.entry(e.tid).or_default();
                    match stack.last() {
                        Some(&b) if inner.events[b].name == e.name => {
                            stack.pop();
                        }
                        // An E that closes nothing we saw begin: its B
                        // predates the capture window.
                        _ => keep[i] = false,
                    }
                }
                _ => {}
            }
        }
        // B events still open at the end: their E postdates the
        // capture window.
        for (_, stack) in open {
            for b in stack {
                keep[b] = false;
            }
        }
        Self::render(
            inner
                .events
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(e, _)| e),
        )
    }
}

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

impl GenObserver for TraceRecorder {
    fn span_enter(&self, span: &Span<'_>) {
        self.push(
            span.phase.name(),
            "phase",
            'B',
            vec![("unit".to_owned(), Json::Str(span.unit.to_owned()))],
        );
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        self.push(
            span.phase.name(),
            "phase",
            'E',
            vec![
                ("unit".to_owned(), Json::Str(span.unit.to_owned())),
                ("wall_us".to_owned(), Json::Num(elapsed.as_secs_f64() * 1e6)),
                (
                    "alloc_bytes".to_owned(),
                    Json::Num(alloc.allocated_bytes as f64),
                ),
                (
                    "freed_bytes".to_owned(),
                    Json::Num(alloc.freed_bytes as f64),
                ),
                (
                    "allocations".to_owned(),
                    Json::Num(alloc.allocations as f64),
                ),
                (
                    "peak_live_bytes".to_owned(),
                    Json::Num(alloc.peak_live_bytes as f64),
                ),
            ],
        );
    }

    fn event(&self, event: &Event<'_>) {
        let (name, cat, args) = match event {
            Event::OrderCompiled {
                rule,
                dfa_states,
                accepting_paths,
                cache,
            } => (
                "order_compiled",
                "pipeline",
                vec![
                    ("rule".to_owned(), Json::Str((*rule).to_owned())),
                    (
                        "cache".to_owned(),
                        Json::Str(
                            match cache {
                                CacheOutcome::Hit => "hit",
                                CacheOutcome::Miss => "miss",
                                CacheOutcome::Uncached => "uncached",
                            }
                            .to_owned(),
                        ),
                    ),
                    ("dfa_states".to_owned(), dfa_states.map_or(Json::Null, num)),
                    ("accepting_paths".to_owned(), num(*accepting_paths)),
                ],
            ),
            Event::PathSelected {
                rule,
                enumerated,
                chosen_len,
                hoisted,
            } => (
                "path_selected",
                "pipeline",
                vec![
                    ("rule".to_owned(), Json::Str((*rule).to_owned())),
                    ("enumerated".to_owned(), num(*enumerated)),
                    ("chosen_len".to_owned(), num(*chosen_len)),
                    ("hoisted".to_owned(), num(*hoisted)),
                ],
            ),
            Event::ParamResolved {
                rule,
                variable,
                via,
            } => (
                "param_resolved",
                "pipeline",
                vec![
                    ("rule".to_owned(), Json::Str((*rule).to_owned())),
                    ("variable".to_owned(), Json::Str((*variable).to_owned())),
                    ("via".to_owned(), Json::Str(via.name().to_owned())),
                ],
            ),
            Event::ParamHoisted { rule, variable } => (
                "param_hoisted",
                "pipeline",
                vec![
                    ("rule".to_owned(), Json::Str((*rule).to_owned())),
                    ("variable".to_owned(), Json::Str((*variable).to_owned())),
                ],
            ),
            Event::BatchJob { worker, index } => (
                "batch_job",
                "engine",
                vec![
                    ("worker".to_owned(), num(*worker)),
                    ("index".to_owned(), num(*index)),
                ],
            ),
        };
        self.push(name, cat, 'i', args);
    }
}

/// Validates a written Chrome-trace document: a `traceEvents` array
/// whose `B`/`E` events are strictly paired (same name, LIFO per
/// `tid`) with non-decreasing timestamps per `tid`; only `B`, `E` and
/// `i` phase types are accepted.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    // tid → (open-span name stack, last timestamp seen).
    let mut threads: BTreeMap<u64, (Vec<String>, f64)> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric `ts`"))?;
        let (stack, last_ts) = threads.entry(tid).or_insert_with(|| (Vec::new(), ts));
        if ts < *last_ts {
            return Err(format!(
                "event {i}: timestamp {ts} goes backwards on tid {tid} (last {last_ts})"
            ));
        }
        *last_ts = ts;
        match ph {
            "B" => stack.push(name.to_owned()),
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` closes open span `{open}` on tid {tid}"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` without an open span on tid {tid}"
                    ));
                }
            },
            "i" => {}
            other => return Err(format!("event {i}: unsupported phase type `{other}`")),
        }
    }
    for (tid, (stack, _)) in &threads {
        if let Some(open) = stack.last() {
            return Err(format!("span `{open}` left open on tid {tid}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_named() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["collect", "link", "select", "resolve", "assemble"]);
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn span_timer_pairs_enter_and_exit_even_on_early_exit() {
        #[derive(Default)]
        struct Log(Mutex<Vec<(Phase, bool)>>);
        impl GenObserver for Log {
            fn span_enter(&self, span: &Span<'_>) {
                self.0.lock().unwrap().push((span.phase, true));
            }
            fn span_exit(&self, span: &Span<'_>, _e: Duration, _a: AllocDelta) {
                self.0.lock().unwrap().push((span.phase, false));
            }
        }
        let log = Log::default();
        let run = |fail: bool| -> Result<(), ()> {
            let _span = SpanTimer::enter(
                &log,
                Span {
                    unit: "U",
                    phase: Phase::Select,
                },
            );
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(false).unwrap();
        run(true).unwrap_err();
        let seq = log.0.lock().unwrap().clone();
        assert_eq!(
            seq,
            vec![
                (Phase::Select, true),
                (Phase::Select, false),
                (Phase::Select, true),
                (Phase::Select, false),
            ]
        );
    }

    #[test]
    fn phase_timings_accumulate_per_unit() {
        let t = PhaseTimings::new();
        let span = Span {
            unit: "A",
            phase: Phase::Collect,
        };
        let alloc = AllocDelta {
            allocated_bytes: 100,
            freed_bytes: 40,
            allocations: 3,
            peak_live_bytes: 64,
        };
        t.span_exit(&span, Duration::from_millis(2), alloc);
        t.span_exit(&span, Duration::from_millis(3), alloc);
        t.span_exit(
            &Span {
                unit: "B",
                phase: Phase::Assemble,
            },
            Duration::from_millis(1),
            AllocDelta::default(),
        );
        let a = t.unit("A").unwrap();
        assert_eq!(a.phase(Phase::Collect).spans, 2);
        assert_eq!(a.phase(Phase::Collect).total, Duration::from_millis(5));
        assert_eq!(a.phase(Phase::Collect).alloc_bytes, 200);
        assert_eq!(a.phase(Phase::Collect).allocations, 6);
        assert_eq!(a.phase(Phase::Collect).peak_live_bytes, 64);
        assert_eq!(a.phase(Phase::Link).spans, 0);
        assert_eq!(a.total(), Duration::from_millis(5));
        assert_eq!(a.alloc_total_bytes(), 200);
        assert_eq!(a.peak_live_bytes(), 64);
        assert_eq!(t.snapshot().len(), 2);
        t.reset();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn histogram_merge_is_order_insensitive() {
        let samples = [5u64, 1, 9, 3, 3];
        let mut one = HistogramStat::default();
        for s in samples {
            one.observe(s);
        }
        let mut forward = HistogramStat::default();
        let mut backward = HistogramStat::default();
        for s in samples {
            let mut h = HistogramStat::default();
            h.observe(s);
            forward.merge(&h);
        }
        for s in samples.iter().rev() {
            let mut h = HistogramStat::default();
            h.observe(*s);
            backward.merge(&h);
        }
        assert_eq!(one, forward);
        assert_eq!(one, backward);
        assert_eq!(one.count, 5);
        assert_eq!(one.sum, 21);
        assert_eq!((one.min, one.max), (1, 9));
        assert_eq!(one.mean(), Some(4.2));
    }

    #[test]
    fn registry_merge_is_deterministic_across_orders() {
        let build = |ops: &[(&str, u64)]| {
            let r = MetricsRegistry::new();
            for (name, v) in ops {
                match *name {
                    n if n.starts_with("c.") => r.add(n, *v),
                    n if n.starts_with("g.") => r.set_gauge(n, *v),
                    n => r.observe(n, *v),
                }
            }
            r
        };
        let a = build(&[("c.x", 2), ("g.y", 7), ("h.z", 10)]);
        let b = build(&[("c.x", 3), ("g.y", 5), ("h.z", 4)]);
        let ab = MetricsRegistry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = MetricsRegistry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("c.x"), 5);
        assert_eq!(ab.get("g.y"), Some(Metric::Gauge(7)));
        let h = ab.get("h.z").unwrap().as_histogram().unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
    }

    #[test]
    fn render_text_is_sorted_stable_and_covers_every_kind() {
        let r = MetricsRegistry::new();
        r.add("serve.requests", 7);
        r.set_gauge("serve.inflight", 2);
        r.observe("serve.bytes", 10);
        r.observe("serve.bytes", 4);
        let text = r.render_text();
        assert_eq!(
            text,
            "serve.bytes histogram count=2 sum=14 min=4 max=10\n\
             serve.inflight gauge 2\n\
             serve.requests counter 7\n"
        );
        // Same operations, different order — byte-identical exposition.
        let r2 = MetricsRegistry::new();
        r2.observe("serve.bytes", 4);
        r2.set_gauge("serve.inflight", 2);
        r2.observe("serve.bytes", 10);
        r2.add("serve.requests", 7);
        assert_eq!(r2.render_text(), text);
        assert_eq!(MetricsRegistry::new().render_text(), "");
    }

    #[test]
    fn collector_maps_events_onto_metric_names() {
        let c = MetricsCollector::fresh();
        c.event(&Event::OrderCompiled {
            rule: "R",
            dfa_states: Some(4),
            accepting_paths: 2,
            cache: CacheOutcome::Miss,
        });
        c.event(&Event::OrderCompiled {
            rule: "R",
            dfa_states: Some(4),
            accepting_paths: 2,
            cache: CacheOutcome::Hit,
        });
        c.event(&Event::PathSelected {
            rule: "R",
            enumerated: 2,
            chosen_len: 3,
            hoisted: 1,
        });
        c.event(&Event::ParamResolved {
            rule: "R",
            variable: "v",
            via: ResolutionKind::Constraint,
        });
        c.event(&Event::ParamHoisted {
            rule: "R",
            variable: "w",
        });
        c.event(&Event::BatchJob {
            worker: 1,
            index: 0,
        });
        c.span_exit(
            &Span {
                unit: "U",
                phase: Phase::Link,
            },
            Duration::ZERO,
            AllocDelta {
                allocated_bytes: 4096,
                freed_bytes: 1024,
                allocations: 7,
                peak_live_bytes: 2048,
            },
        );
        let r = c.registry();
        assert_eq!(r.counter("order_cache.misses"), 1);
        assert_eq!(r.counter("order_cache.hits"), 1);
        assert_eq!(r.counter("pathsel.selections"), 1);
        assert_eq!(r.counter("pathsel.hoisted_params"), 1);
        assert_eq!(r.counter("resolve.params"), 2);
        assert_eq!(r.counter("resolve.via.constraint"), 1);
        assert_eq!(r.counter("resolve.hoisted"), 1);
        assert_eq!(r.counter("engine.batch.worker.01.jobs"), 1);
        assert_eq!(r.counter("phase.link.spans"), 1);
        assert_eq!(r.counter("mem.phase.link.alloc_bytes"), 4096);
        let peak = r
            .get("mem.phase.link.peak_live_bytes")
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!((peak.count, peak.max), (1, 2048));
        let states = r.get("order.dfa_states").unwrap().as_histogram().unwrap();
        assert_eq!((states.count, states.sum), (2, 8));
    }

    #[test]
    fn trace_recorder_emits_paired_validated_chrome_events() {
        let rec = TraceRecorder::new();
        {
            let _t = SpanTimer::enter(
                &rec,
                Span {
                    unit: "U",
                    phase: Phase::Select,
                },
            );
            rec.event(&Event::OrderCompiled {
                rule: "Cipher",
                dfa_states: Some(5),
                accepting_paths: 2,
                cache: CacheOutcome::Miss,
            });
            rec.event(&Event::ParamResolved {
                rule: "Cipher",
                variable: "transformation",
                via: ResolutionKind::Constraint,
            });
        }
        assert_eq!(rec.len(), 4); // B, i, i, E
        let doc = rec.to_json();
        validate_trace(&doc).unwrap();

        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("select"));
        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            instant
                .get("args")
                .and_then(|a| a.get("cache"))
                .and_then(Json::as_str),
            Some("miss")
        );
        let exit = &events[3];
        assert_eq!(exit.get("ph").and_then(Json::as_str), Some("E"));
        assert!(exit
            .get("args")
            .and_then(|a| a.get("alloc_bytes"))
            .is_some());
        // The serialized document round-trips through the writer/parser.
        validate_trace(&Json::parse(&doc.to_string()).unwrap()).unwrap();

        rec.reset();
        assert!(rec.is_empty());
    }

    #[test]
    fn balanced_export_drops_exactly_the_boundary_truncated_events() {
        let rec = TraceRecorder::new();
        let span = |phase| Span { unit: "U", phase };
        // Orphan E: its B fell before the capture window opened.
        rec.span_exit(
            &span(Phase::Select),
            Duration::from_micros(3),
            AllocDelta::default(),
        );
        // A complete pair with an instant inside survives untouched.
        rec.span_enter(&span(Phase::Resolve));
        rec.event(&Event::ParamResolved {
            rule: "Cipher",
            variable: "transformation",
            via: ResolutionKind::Constraint,
        });
        rec.span_exit(
            &span(Phase::Resolve),
            Duration::from_micros(7),
            AllocDelta::default(),
        );
        // Dangling B: its E falls after the capture window closed.
        rec.span_enter(&span(Phase::Assemble));

        // The raw stream is truncated at both ends and fails validation.
        assert!(validate_trace(&rec.to_json()).is_err());

        // The balanced export passes and keeps the complete interior.
        let doc = rec.to_balanced_json();
        validate_trace(&doc).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phases, ["B", "i", "E"]);
        assert_eq!(
            events[0].get("name").and_then(Json::as_str),
            Some("resolve")
        );
        assert_eq!(
            events[2].get("name").and_then(Json::as_str),
            Some("resolve")
        );
    }

    #[test]
    fn validate_trace_rejects_malformed_streams() {
        let ev = |ph: &str, name: &str, tid: f64, ts: f64| {
            Json::Obj(vec![
                ("name".to_owned(), Json::Str(name.to_owned())),
                ("ph".to_owned(), Json::Str(ph.to_owned())),
                ("ts".to_owned(), Json::Num(ts)),
                ("tid".to_owned(), Json::Num(tid)),
            ])
        };
        let doc =
            |events: Vec<Json>| Json::Obj(vec![("traceEvents".to_owned(), Json::Arr(events))]);

        assert!(validate_trace(&Json::Obj(vec![])).is_err());
        // Unclosed span.
        assert!(validate_trace(&doc(vec![ev("B", "select", 0.0, 1.0)]))
            .unwrap_err()
            .contains("left open"));
        // E without B.
        assert!(validate_trace(&doc(vec![ev("E", "select", 0.0, 1.0)])).is_err());
        // Name mismatch on close.
        assert!(validate_trace(&doc(vec![
            ev("B", "select", 0.0, 1.0),
            ev("E", "resolve", 0.0, 2.0),
        ]))
        .is_err());
        // Timestamp going backwards on one tid.
        assert!(validate_trace(&doc(vec![
            ev("B", "select", 0.0, 5.0),
            ev("E", "select", 0.0, 3.0),
        ]))
        .unwrap_err()
        .contains("backwards"));
        // Interleaved tids are independent stacks and clocks.
        validate_trace(&doc(vec![
            ev("B", "select", 0.0, 5.0),
            ev("B", "resolve", 1.0, 1.0),
            ev("E", "select", 0.0, 6.0),
            ev("i", "order_compiled", 1.0, 2.0),
            ev("E", "resolve", 1.0, 2.0),
        ]))
        .unwrap();
        // Unsupported phase type.
        assert!(validate_trace(&doc(vec![ev("X", "select", 0.0, 1.0)])).is_err());
    }

    #[test]
    fn kind_mismatch_is_ignored_not_corrupting() {
        // In release builds a mismatched operation must leave the
        // original metric intact. (Debug builds assert instead.)
        let r = MetricsRegistry::new();
        r.add("x", 1);
        if cfg!(not(debug_assertions)) {
            r.observe("x", 5);
            assert_eq!(r.get("x"), Some(Metric::Counter(1)));
        }
        assert_eq!(r.counter("x"), 1);
    }

    #[test]
    fn tee_and_fanout_forward_to_all_targets() {
        #[derive(Default)]
        struct Count(Mutex<u32>);
        impl GenObserver for Count {
            fn event(&self, _e: &Event<'_>) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let a = Count::default();
        let b = Count::default();
        Tee(&a, &b).event(&Event::BatchJob {
            worker: 0,
            index: 0,
        });
        assert_eq!(*a.0.lock().unwrap(), 1);
        assert_eq!(*b.0.lock().unwrap(), 1);

        let x: Arc<Count> = Arc::new(Count::default());
        let fan = Fanout::new().with(x.clone()).with(Arc::new(NoopObserver));
        fan.event(&Event::BatchJob {
            worker: 0,
            index: 1,
        });
        fan.event(&Event::BatchJob {
            worker: 0,
            index: 2,
        });
        assert_eq!(*x.0.lock().unwrap(), 2);
    }
}
