//! Pipeline telemetry: the `GenObserver` hook API, per-phase timings and
//! a metrics registry.
//!
//! The paper's evaluation (Table 1, RQ2/RQ3) reports *per-use-case*
//! runtime and memory for the five-phase pipeline, and the CrySL line of
//! work stresses rule-level diagnostics over opaque totals. This module
//! is the observability layer that makes both visible without changing
//! what the pipeline emits:
//!
//! * [`GenObserver`] — the hook trait. The generator opens one span per
//!   [`Phase`] per template (enter/exit with the measured wall time) and
//!   reports fine-grained [`Event`]s from inside the phases: ORDER-cache
//!   hits and misses, DFA state counts, enumerated accepting paths,
//!   per-parameter resolution outcomes, batch-worker job placement.
//! * [`PhaseTimings`] — an observer that accumulates monotonic per-phase
//!   wall time per template unit, matching Table 1's runtime column.
//! * [`MetricsRegistry`] — named counters, gauges and histograms with a
//!   deterministic [`MetricsRegistry::merge_from`], so per-worker
//!   registries collected by a batch can be folded in input order into
//!   one aggregate regardless of scheduling.
//! * [`MetricsCollector`] — the observer that maps spans and events onto
//!   a registry (see the module constants for the metric names).
//!
//! Everything here is `std`-only and allocation-light; the
//! [`NoopObserver`] path adds no measurable work, and the differential
//! suite proves telemetry-on output byte-identical to telemetry-off.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The five pipeline phases of the paper's Figure 6, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Gather rules and template parameters from each call chain.
    Collect,
    /// Connect rules through ENSURES/REQUIRES predicates.
    Link,
    /// Select a method sequence per rule from its state machine.
    Select,
    /// Find a value for every method parameter.
    Resolve,
    /// Emit the Java code, the showcase class, and the type check.
    Assemble,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Collect,
        Phase::Link,
        Phase::Select,
        Phase::Resolve,
        Phase::Assemble,
    ];

    /// Stable lowercase name, used in metric keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Collect => "collect",
            Phase::Link => "link",
            Phase::Select => "select",
            Phase::Resolve => "resolve",
            Phase::Assemble => "assemble",
        }
    }

    /// Position in [`Phase::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One phase execution for one template: the unit label is the template
/// class name, which is what Table 1 keys its rows by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span<'a> {
    /// Template class name (the per-use-case label).
    pub unit: &'a str,
    /// The pipeline phase this span covers.
    pub phase: Phase,
}

/// How a compiled-ORDER lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Compiled on this lookup and inserted.
    Miss,
    /// No cache in play — the cold enumeration path.
    Uncached,
}

/// How a rule parameter obtained its value (the discriminant of
/// [`crate::resolve::Resolution`], without payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionKind {
    /// Bound to a template variable by `addParameter`.
    Template,
    /// Supplied by a predicate link from an earlier rule.
    Linked,
    /// Bound by an earlier event of the same rule.
    OwnReturn,
    /// The rule's own instance.
    This,
    /// A literal derived from CONSTRAINTS.
    Constraint,
    /// Unresolvable — hoisted into the wrapper signature.
    Hoist,
}

impl ResolutionKind {
    /// Stable lowercase name, used in metric keys.
    pub fn name(self) -> &'static str {
        match self {
            ResolutionKind::Template => "template",
            ResolutionKind::Linked => "linked",
            ResolutionKind::OwnReturn => "own_return",
            ResolutionKind::This => "this",
            ResolutionKind::Constraint => "constraint",
            ResolutionKind::Hoist => "hoist",
        }
    }
}

/// A fine-grained pipeline event, reported from inside a phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// A rule's compiled-ORDER artefact was obtained during selection.
    /// `dfa_states` is `None` on the cold path, which enumerates paths
    /// without building the minimized DFA.
    OrderCompiled {
        /// Rule class name.
        rule: &'a str,
        /// States of the minimized DFA, when compiled.
        dfa_states: Option<usize>,
        /// Enumerated accepting call sequences.
        accepting_paths: usize,
        /// How the artefact was served.
        cache: CacheOutcome,
    },
    /// Path selection finished for one rule.
    PathSelected {
        /// Rule class name.
        rule: &'a str,
        /// Paths the selector considered (the enumerated set).
        enumerated: usize,
        /// Call count of the chosen path.
        chosen_len: usize,
        /// Parameters the chosen path leaves to the hoisting fallback.
        hoisted: usize,
    },
    /// A method parameter of a selected path was resolved.
    ParamResolved {
        /// Rule class name.
        rule: &'a str,
        /// The CrySL variable.
        variable: &'a str,
        /// Which resolution rule supplied the value.
        via: ResolutionKind,
    },
    /// A method parameter fell through to the hoisting fallback.
    ParamHoisted {
        /// Rule class name.
        rule: &'a str,
        /// The CrySL variable.
        variable: &'a str,
    },
    /// A batch job completed on an engine worker. Reported *after* the
    /// fan-out joins, in input order; the worker assignment itself is
    /// scheduling-dependent.
    BatchJob {
        /// Worker ordinal within the batch pool.
        worker: usize,
        /// Index of the job in the batch input.
        index: usize,
    },
}

/// Observer hooks for the generation pipeline.
///
/// All methods have empty defaults, so an implementation only overrides
/// what it cares about. Implementations must be `Send + Sync`: the
/// engine shares one observer across batch workers. Hook invariants the
/// generator guarantees (and the test suite enforces):
///
/// * spans never nest and arrive in [`Phase::ALL`] order — exactly one
///   `span_enter`/`span_exit` pair per phase per generated template;
/// * `span_exit` receives the monotonic wall time of the span and is
///   called even when the phase fails (the error still propagates);
/// * events are reported between the enter and exit of the phase they
///   belong to, except [`Event::BatchJob`], which the engine reports
///   after the batch joins.
pub trait GenObserver: Send + Sync {
    /// A pipeline phase is starting for `span.unit`.
    fn span_enter(&self, span: &Span<'_>) {
        let _ = span;
    }

    /// A pipeline phase finished after `elapsed` of monotonic wall time.
    fn span_exit(&self, span: &Span<'_>, elapsed: Duration) {
        let _ = (span, elapsed);
    }

    /// A fine-grained pipeline event occurred.
    fn event(&self, event: &Event<'_>) {
        let _ = event;
    }
}

/// The do-nothing observer: the default everywhere, and the reference
/// point of the telemetry-off differential tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl GenObserver for NoopObserver {}

/// A `&'static` no-op observer for default parameters.
pub fn noop() -> &'static NoopObserver {
    static NOOP: NoopObserver = NoopObserver;
    &NOOP
}

/// Forwards every hook to both targets, in order. Lets the engine run
/// its own metrics collector alongside a user-supplied observer without
/// allocating.
#[derive(Clone, Copy)]
pub struct Tee<'a>(pub &'a dyn GenObserver, pub &'a dyn GenObserver);

impl GenObserver for Tee<'_> {
    fn span_enter(&self, span: &Span<'_>) {
        self.0.span_enter(span);
        self.1.span_enter(span);
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration) {
        self.0.span_exit(span, elapsed);
        self.1.span_exit(span, elapsed);
    }

    fn event(&self, event: &Event<'_>) {
        self.0.event(event);
        self.1.event(event);
    }
}

/// Forwards every hook to a list of shared observers, in order.
#[derive(Default, Clone)]
pub struct Fanout {
    targets: Vec<Arc<dyn GenObserver>>,
}

impl Fanout {
    /// An empty fan-out (equivalent to [`NoopObserver`]).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a target observer.
    pub fn with(mut self, target: Arc<dyn GenObserver>) -> Self {
        self.targets.push(target);
        self
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fanout({} targets)", self.targets.len())
    }
}

impl GenObserver for Fanout {
    fn span_enter(&self, span: &Span<'_>) {
        for t in &self.targets {
            t.span_enter(span);
        }
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration) {
        for t in &self.targets {
            t.span_exit(span, elapsed);
        }
    }

    fn event(&self, event: &Event<'_>) {
        for t in &self.targets {
            t.event(event);
        }
    }
}

/// RAII span: `span_enter` on construction, `span_exit` with the
/// measured monotonic time on drop — so a phase that errors out still
/// closes its span and the enter/exit pairing invariant holds.
pub struct SpanTimer<'o, 'u> {
    observer: &'o dyn GenObserver,
    span: Span<'u>,
    start: Instant,
}

impl<'o, 'u> SpanTimer<'o, 'u> {
    /// Opens the span and starts the clock.
    pub fn enter(observer: &'o dyn GenObserver, span: Span<'u>) -> Self {
        observer.span_enter(&span);
        SpanTimer {
            observer,
            span,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_, '_> {
    fn drop(&mut self) {
        self.observer.span_exit(&self.span, self.start.elapsed());
    }
}

// ---------------------------------------------------------------------
// PhaseTimings
// ---------------------------------------------------------------------

/// Accumulated wall time and span count for one phase of one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Completed spans.
    pub spans: u64,
    /// Total monotonic wall time across those spans.
    pub total: Duration,
}

/// Per-phase timings of one template unit (one Table-1 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitTimings {
    /// Template class name.
    pub unit: String,
    /// One slot per [`Phase::ALL`] entry, in phase order.
    pub phases: [PhaseStat; 5],
}

impl UnitTimings {
    /// The stat for one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStat {
        self.phases[phase.index()]
    }

    /// Wall time summed over all five phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.total).sum()
    }
}

/// An observer that collects monotonic per-phase wall time per unit —
/// the Table-1 runtime column, split by pipeline phase.
///
/// Thread-safe; share it via [`Arc`] between the engine observer slot
/// and the reporting code that reads the snapshot afterwards.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    inner: Mutex<BTreeMap<String, [PhaseStat; 5]>>,
}

impl PhaseTimings {
    /// An empty collector.
    pub fn new() -> Self {
        PhaseTimings::default()
    }

    /// The timings recorded for `unit`, if any span completed for it.
    pub fn unit(&self, unit: &str) -> Option<UnitTimings> {
        self.lock().get(unit).map(|phases| UnitTimings {
            unit: unit.to_owned(),
            phases: *phases,
        })
    }

    /// All recorded units, sorted by unit name.
    pub fn snapshot(&self) -> Vec<UnitTimings> {
        self.lock()
            .iter()
            .map(|(unit, phases)| UnitTimings {
                unit: unit.clone(),
                phases: *phases,
            })
            .collect()
    }

    /// Drops all recorded timings.
    pub fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, [PhaseStat; 5]>> {
        match self.inner.lock() {
            Ok(g) => g,
            // Writers only do field arithmetic; the map is never left
            // mid-mutation, so continuing after a poisoned lock is sound.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl GenObserver for PhaseTimings {
    fn span_exit(&self, span: &Span<'_>, elapsed: Duration) {
        let mut map = self.lock();
        let slot = &mut map.entry(span.unit.to_owned()).or_default()[span.phase.index()];
        slot.spans += 1;
        slot.total += elapsed;
    }
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

/// Order-insensitive histogram summary: merging two summaries gives the
/// same result whatever the merge order, which is what makes batch
/// metrics deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStat {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramStat {
    /// Folds one sample in.
    pub fn observe(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Folds another summary in (commutative and associative).
    pub fn merge(&mut self, other: &HistogramStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Arithmetic mean of the samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One named metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic count; merges by addition.
    Counter(u64),
    /// Last-set value; merges by maximum (the only order-insensitive
    /// choice that keeps batch aggregation deterministic).
    Gauge(u64),
    /// Sample summary; merges per [`HistogramStat::merge`].
    Histogram(HistogramStat),
}

impl Metric {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Metric::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// The histogram summary, if this is a histogram.
    pub fn as_histogram(&self) -> Option<HistogramStat> {
        match self {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        }
    }
}

/// A thread-safe registry of named counters, gauges and histograms.
///
/// Keys are sorted (`BTreeMap`), every merge operation is commutative
/// and associative, and histograms store order-insensitive summaries —
/// so two registries that saw the same multiset of operations are equal,
/// and folding per-worker registries in input order after a batch yields
/// the same aggregate at any thread count.
///
/// A name is bound to the kind of its first write; operations of a
/// different kind on the same name are ignored (and flagged in debug
/// builds) rather than corrupting the entry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, n: u64) {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "`{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(g) => *g = value,
            other => debug_assert!(false, "`{name}` is not a gauge: {other:?}"),
        }
    }

    /// Folds `sample` into the histogram `name`.
    pub fn observe(&self, name: &str, sample: u64) {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert(Metric::Histogram(HistogramStat::default()))
        {
            Metric::Histogram(h) => h.observe(sample),
            other => debug_assert!(false, "`{name}` is not a histogram: {other:?}"),
        }
    }

    /// The metric registered under `name`.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.lock().get(name).copied()
    }

    /// The counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).and_then(|m| m.as_counter()).unwrap_or(0)
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// gauges take the maximum, histograms merge their summaries. The
    /// result is independent of merge order.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot();
        let mut map = self.lock();
        for (name, metric) in theirs {
            match (map.entry(name).or_insert(match metric {
                Metric::Counter(_) => Metric::Counter(0),
                Metric::Gauge(_) => Metric::Gauge(0),
                Metric::Histogram(_) => Metric::Histogram(HistogramStat::default()),
            }), metric) {
                (Metric::Counter(mine), Metric::Counter(n)) => *mine += n,
                (Metric::Gauge(mine), Metric::Gauge(g)) => *mine = (*mine).max(g),
                (Metric::Histogram(mine), Metric::Histogram(h)) => mine.merge(&h),
                (mine, theirs) => {
                    debug_assert!(false, "metric kind mismatch: {mine:?} vs {theirs:?}");
                }
            }
        }
    }

    /// All metrics, keyed and sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.lock().clone()
    }

    /// Whether no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

// ---------------------------------------------------------------------
// MetricsCollector
// ---------------------------------------------------------------------

/// The observer that maps pipeline spans and events onto a
/// [`MetricsRegistry`].
///
/// Metric names it writes:
///
/// * `phase.<phase>.spans` — completed spans per phase (counter);
/// * `order_cache.hits` / `order_cache.misses` / `order_cache.uncached`
///   — compiled-ORDER lookups by outcome (counters);
/// * `order.dfa_states`, `order.accepting_paths` — per-rule artefact
///   sizes (histograms);
/// * `pathsel.selections` (counter), `pathsel.candidates` (histogram),
///   `pathsel.hoisted_params` (counter);
/// * `resolve.params`, `resolve.hoisted` and `resolve.via.<kind>` —
///   parameter resolution outcomes (counters);
/// * `engine.batch.worker.<NN>.jobs` — jobs per batch worker (counter;
///   inherently scheduling-dependent, excluded from the determinism
///   guarantees).
///
/// Durations are deliberately *not* recorded here — wall time varies
/// across runs and would break the registry's determinism. Use
/// [`PhaseTimings`] for time.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    registry: Arc<MetricsRegistry>,
}

impl MetricsCollector {
    /// A collector writing into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsCollector { registry }
    }

    /// A collector over a fresh private registry.
    pub fn fresh() -> Self {
        MetricsCollector::new(Arc::new(MetricsRegistry::new()))
    }

    /// The registry this collector writes into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl GenObserver for MetricsCollector {
    fn span_exit(&self, span: &Span<'_>, _elapsed: Duration) {
        self.registry
            .add(&format!("phase.{}.spans", span.phase.name()), 1);
    }

    fn event(&self, event: &Event<'_>) {
        let r = &*self.registry;
        match event {
            Event::OrderCompiled {
                dfa_states,
                accepting_paths,
                cache,
                ..
            } => {
                let outcome = match cache {
                    CacheOutcome::Hit => "order_cache.hits",
                    CacheOutcome::Miss => "order_cache.misses",
                    CacheOutcome::Uncached => "order_cache.uncached",
                };
                r.add(outcome, 1);
                if let Some(states) = dfa_states {
                    r.observe("order.dfa_states", *states as u64);
                }
                r.observe("order.accepting_paths", *accepting_paths as u64);
            }
            Event::PathSelected {
                enumerated,
                hoisted,
                ..
            } => {
                r.add("pathsel.selections", 1);
                r.observe("pathsel.candidates", *enumerated as u64);
                r.add("pathsel.hoisted_params", *hoisted as u64);
            }
            Event::ParamResolved { via, .. } => {
                r.add("resolve.params", 1);
                r.add(&format!("resolve.via.{}", via.name()), 1);
            }
            Event::ParamHoisted { .. } => {
                r.add("resolve.params", 1);
                r.add("resolve.hoisted", 1);
            }
            Event::BatchJob { worker, .. } => {
                r.add(&format!("engine.batch.worker.{worker:02}.jobs"), 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_named() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["collect", "link", "select", "resolve", "assemble"]);
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn span_timer_pairs_enter_and_exit_even_on_early_exit() {
        #[derive(Default)]
        struct Log(Mutex<Vec<(Phase, bool)>>);
        impl GenObserver for Log {
            fn span_enter(&self, span: &Span<'_>) {
                self.0.lock().unwrap().push((span.phase, true));
            }
            fn span_exit(&self, span: &Span<'_>, _e: Duration) {
                self.0.lock().unwrap().push((span.phase, false));
            }
        }
        let log = Log::default();
        let run = |fail: bool| -> Result<(), ()> {
            let _span = SpanTimer::enter(&log, Span { unit: "U", phase: Phase::Select });
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(false).unwrap();
        run(true).unwrap_err();
        let seq = log.0.lock().unwrap().clone();
        assert_eq!(
            seq,
            vec![
                (Phase::Select, true),
                (Phase::Select, false),
                (Phase::Select, true),
                (Phase::Select, false),
            ]
        );
    }

    #[test]
    fn phase_timings_accumulate_per_unit() {
        let t = PhaseTimings::new();
        let span = Span { unit: "A", phase: Phase::Collect };
        t.span_exit(&span, Duration::from_millis(2));
        t.span_exit(&span, Duration::from_millis(3));
        t.span_exit(&Span { unit: "B", phase: Phase::Assemble }, Duration::from_millis(1));
        let a = t.unit("A").unwrap();
        assert_eq!(a.phase(Phase::Collect).spans, 2);
        assert_eq!(a.phase(Phase::Collect).total, Duration::from_millis(5));
        assert_eq!(a.phase(Phase::Link).spans, 0);
        assert_eq!(a.total(), Duration::from_millis(5));
        assert_eq!(t.snapshot().len(), 2);
        t.reset();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn histogram_merge_is_order_insensitive() {
        let samples = [5u64, 1, 9, 3, 3];
        let mut one = HistogramStat::default();
        for s in samples {
            one.observe(s);
        }
        let mut forward = HistogramStat::default();
        let mut backward = HistogramStat::default();
        for s in samples {
            let mut h = HistogramStat::default();
            h.observe(s);
            forward.merge(&h);
        }
        for s in samples.iter().rev() {
            let mut h = HistogramStat::default();
            h.observe(*s);
            backward.merge(&h);
        }
        assert_eq!(one, forward);
        assert_eq!(one, backward);
        assert_eq!(one.count, 5);
        assert_eq!(one.sum, 21);
        assert_eq!((one.min, one.max), (1, 9));
        assert_eq!(one.mean(), Some(4.2));
    }

    #[test]
    fn registry_merge_is_deterministic_across_orders() {
        let build = |ops: &[(&str, u64)]| {
            let r = MetricsRegistry::new();
            for (name, v) in ops {
                match *name {
                    n if n.starts_with("c.") => r.add(n, *v),
                    n if n.starts_with("g.") => r.set_gauge(n, *v),
                    n => r.observe(n, *v),
                }
            }
            r
        };
        let a = build(&[("c.x", 2), ("g.y", 7), ("h.z", 10)]);
        let b = build(&[("c.x", 3), ("g.y", 5), ("h.z", 4)]);
        let ab = MetricsRegistry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = MetricsRegistry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("c.x"), 5);
        assert_eq!(ab.get("g.y"), Some(Metric::Gauge(7)));
        let h = ab.get("h.z").unwrap().as_histogram().unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
    }

    #[test]
    fn collector_maps_events_onto_metric_names() {
        let c = MetricsCollector::fresh();
        c.event(&Event::OrderCompiled {
            rule: "R",
            dfa_states: Some(4),
            accepting_paths: 2,
            cache: CacheOutcome::Miss,
        });
        c.event(&Event::OrderCompiled {
            rule: "R",
            dfa_states: Some(4),
            accepting_paths: 2,
            cache: CacheOutcome::Hit,
        });
        c.event(&Event::PathSelected { rule: "R", enumerated: 2, chosen_len: 3, hoisted: 1 });
        c.event(&Event::ParamResolved { rule: "R", variable: "v", via: ResolutionKind::Constraint });
        c.event(&Event::ParamHoisted { rule: "R", variable: "w" });
        c.event(&Event::BatchJob { worker: 1, index: 0 });
        c.span_exit(&Span { unit: "U", phase: Phase::Link }, Duration::ZERO);
        let r = c.registry();
        assert_eq!(r.counter("order_cache.misses"), 1);
        assert_eq!(r.counter("order_cache.hits"), 1);
        assert_eq!(r.counter("pathsel.selections"), 1);
        assert_eq!(r.counter("pathsel.hoisted_params"), 1);
        assert_eq!(r.counter("resolve.params"), 2);
        assert_eq!(r.counter("resolve.via.constraint"), 1);
        assert_eq!(r.counter("resolve.hoisted"), 1);
        assert_eq!(r.counter("engine.batch.worker.01.jobs"), 1);
        assert_eq!(r.counter("phase.link.spans"), 1);
        let states = r.get("order.dfa_states").unwrap().as_histogram().unwrap();
        assert_eq!((states.count, states.sum), (2, 8));
    }

    #[test]
    fn kind_mismatch_is_ignored_not_corrupting() {
        // In release builds a mismatched operation must leave the
        // original metric intact. (Debug builds assert instead.)
        let r = MetricsRegistry::new();
        r.add("x", 1);
        if cfg!(not(debug_assertions)) {
            r.observe("x", 5);
            assert_eq!(r.get("x"), Some(Metric::Counter(1)));
        }
        assert_eq!(r.counter("x"), 1);
    }

    #[test]
    fn tee_and_fanout_forward_to_all_targets() {
        #[derive(Default)]
        struct Count(Mutex<u32>);
        impl GenObserver for Count {
            fn event(&self, _e: &Event<'_>) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let a = Count::default();
        let b = Count::default();
        Tee(&a, &b).event(&Event::BatchJob { worker: 0, index: 0 });
        assert_eq!(*a.0.lock().unwrap(), 1);
        assert_eq!(*b.0.lock().unwrap(), 1);

        let x: Arc<Count> = Arc::new(Count::default());
        let fan = Fanout::new().with(x.clone()).with(Arc::new(NoopObserver));
        fan.event(&Event::BatchJob { worker: 0, index: 1 });
        fan.event(&Event::BatchJob { worker: 0, index: 2 });
        assert_eq!(*x.0.lock().unwrap(), 2);
    }
}
