//! CogniCryptGEN — generating code for the secure usage of crypto APIs.
//!
//! This crate reproduces the paper's contribution: a code generator that
//! combines minimal Java code templates with CrySL rules and emits a
//! complete, compilable, rule-compliant implementation of a cryptographic
//! use case. The pipeline follows the paper's Figure 6:
//!
//! 1. [`collect`] — gather the rules and template parameters from each
//!    fluent-API call chain,
//! 2. [`link`] — connect rules through ENSURES/REQUIRES predicates,
//! 3. [`pathsel`] — select method sequences from each rule's finite state
//!    machine, filtering by template objects and predicate compatibility,
//! 4. [`resolve`] — find values for every method parameter (template
//!    bindings, predicate-matched objects, constraint literals, fallback
//!    hoisting),
//! 5. [`assemble`] — emit the Java code plus the showcase
//!    `templateUsage()` method.
//!
//! The entry point is [`generate`] (or [`Generator`] for configured
//! runs). For repeated or concurrent generation, [`engine::GenEngine`]
//! shares the parsed rules, the type table and a compiled-ORDER cache
//! across calls and fans batches out over worker threads; `generate`
//! itself reuses the same compiled artefacts through a process-wide
//! shared cache.
//!
//! # Example
//!
//! ```
//! use cognicrypt_core::template::{CrySlCodeGenerator, Template, TemplateMethod};
//! use cognicrypt_core::generate;
//! use javamodel::ast::{Expr, JavaType, Stmt};
//! use javamodel::jca::jca_type_table;
//!
//! let chain = CrySlCodeGenerator::get_instance()
//!     .consider_crysl_rule("java.security.MessageDigest")
//!     .add_parameter("data", "input")
//!     .add_return_object("hash")
//!     .build();
//! let method = TemplateMethod::new("hash", JavaType::byte_array())
//!     .param(JavaType::byte_array(), "data")
//!     .pre(Stmt::decl_init(JavaType::byte_array(), "hash", Expr::null()))
//!     .chain(chain)
//!     .post(Stmt::Return(Some(Expr::var("hash"))));
//! let template = Template::new("de.crypto.cognicrypt", "Hasher").method(method);
//! let pack = rules::open(rules::PackSource::Embedded)?;
//! let generated = generate(&template, &pack.rules, &jca_type_table())?;
//! assert!(generated.java_source.contains("MessageDigest.getInstance(\"SHA-256\")"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Observability: the [`telemetry`] module defines the
//! [`telemetry::GenObserver`] hook API. The pipeline opens one span per
//! phase per template and reports fine-grained events (cache traffic,
//! DFA sizes, path selection, parameter resolution) from inside the
//! phases; [`telemetry::PhaseTimings`] and
//! [`telemetry::MetricsRegistry`] are ready-made collectors.

pub mod assemble;
pub mod collect;
pub mod engine;
pub mod error;
pub mod generator;
pub mod link;
pub mod memtrack;
pub mod pathsel;
pub mod resolve;
pub mod telemetry;
pub mod template;

pub use engine::{EngineBuildError, EngineBuilder, EngineError, GenEngine, WarmStats, WorkerPanic};
pub use error::GenError;
pub use generator::{generate, Generated, Generator, GeneratorOptions};
pub use memtrack::{AllocDelta, AllocScope, ProcessStats, TrackingAlloc};
pub use telemetry::{
    validate_trace, GenObserver, MetricsRegistry, NoopObserver, Phase, PhaseTimings, TraceRecorder,
};
pub use template::{CrySlCodeGenerator, Template, TemplateMethod};
