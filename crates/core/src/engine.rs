//! `GenEngine`: a thread-safe, cached, parallel generation session.
//!
//! The paper's generator treats CrySL rules as stable artefacts, yet the
//! original pipeline recompiled every rule's ORDER pattern (NFA → DFA →
//! minimization → path enumeration) on every run. The engine holds the
//! compiled artefacts in a [`statemachine::OrderCache`] keyed by a
//! content hash of each rule's EVENTS + ORDER sections, so repeat
//! generations reuse them, and fans batches of templates out over scoped
//! worker threads with deterministic, input-ordered results.
//!
//! Three entry points, from low to high level:
//!
//! * [`scatter`] — the generic fan-out primitive: run one job per item
//!   on a fixed-size worker pool, catching worker panics so one poisoned
//!   job can neither deadlock the batch nor discard sibling results;
//! * [`GenEngine::generate`] — single-template generation against the
//!   engine's shared rule set, type table and warm cache;
//! * [`GenEngine::generate_batch`] — N templates, M worker threads,
//!   output `i` always corresponding to input `i` regardless of thread
//!   count or scheduling.
//!
//! The legacy free function [`crate::generate`] is re-expressed on top
//! of the same machinery via a process-wide shared cache
//! ([`shared_order_cache`]), so single-shot callers get the compiled
//! artefacts for free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crysl::RuleSet;
use javamodel::TypeTable;
use statemachine::{CacheLookup, CacheStats, OrderCache};

use crate::error::GenError;
use crate::generator::{Generated, Generator, GeneratorOptions};
use crate::telemetry::{Event, GenObserver, MetricsCollector, MetricsRegistry, NoopObserver, Tee};
use crate::template::Template;

/// The process-wide compiled-ORDER cache backing the legacy
/// [`crate::generate`] path. Keyed purely by content hash, so rule sets
/// from different callers can never observe each other's artefacts
/// except when the compilation inputs are byte-identical — in which
/// case the artefacts are too. Returned as an `Arc` so a long-lived
/// engine (the serve daemon) can adopt the same cache via
/// [`EngineBuilder::order_cache`] and share warm artefacts with
/// single-shot callers in the same process.
pub fn shared_order_cache() -> &'static Arc<OrderCache> {
    static CACHE: OnceLock<Arc<OrderCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(OrderCache::new()))
}

/// How an engine warm-up was served, reported by
/// [`GenEngine::warm_traced`]: rules whose ORDER artefact was already
/// in the cache (seeded from a precompiled pack or left warm by an
/// earlier engine) versus rules that had to compile now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Rules served from existing cache entries.
    pub hits: usize,
    /// Rules compiled during this warm-up.
    pub compiled: usize,
}

/// A worker thread panicked while running a batch job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the poisoned item in the input slice.
    pub index: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// A batch item's failure: either an ordinary generation error or a
/// panic the engine contained to that item.
#[derive(Debug)]
pub enum EngineError {
    /// The pipeline rejected the template.
    Gen(GenError),
    /// The worker running the template panicked.
    Worker(WorkerPanic),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Gen(e) => e.fmt(f),
            EngineError::Worker(p) => p.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gen(e) => Some(e),
            EngineError::Worker(p) => Some(p),
        }
    }
}

impl From<GenError> for EngineError {
    fn from(e: GenError) -> Self {
        EngineError::Gen(e)
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "<non-string panic payload>".to_owned()
}

/// Fans `items` out over at most `threads` scoped workers, running
/// `f(index, item)` once per item and returning the results in input
/// order.
///
/// Guarantees, independent of thread count and OS scheduling:
///
/// * result `i` is always `f(i, &items[i])` — deterministic ordering;
/// * a panicking job is reported as `Err(WorkerPanic)` in its own slot;
///   the worker survives and continues draining the queue, so sibling
///   results are never lost and the call always returns.
///
/// `threads` is a ceiling, not a demand: the pool is additionally capped
/// at the item count and at the machine's available parallelism, since
/// the jobs are CPU-bound and oversubscribed workers only add scheduling
/// overhead.
pub fn scatter<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    scatter_on_workers(items, threads, |_worker, i, item| f(i, item))
}

/// [`scatter`] whose job function also receives the ordinal of the
/// worker running it (`0..threads`). The worker assignment is whatever
/// the OS scheduler produced — callers must treat it as observational
/// (utilisation telemetry), never as data the results depend on.
pub fn scatter_on_workers<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = threads.clamp(1, n).min(cores.max(1));
    if threads == 1 {
        // One worker: run on the caller's thread — same per-job panic
        // containment, no spawn/join overhead.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(0, i, item))).map_err(|payload| WorkerPanic {
                    index: i,
                    message: panic_text(payload),
                })
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, WorkerPanic>>> = Vec::new();
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(worker, i, &items[i])))
                            .map_err(|payload| WorkerPanic {
                                index: i,
                                message: panic_text(payload),
                            });
                        produced.push((i, outcome));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // Workers never unwind: every job runs under catch_unwind.
            for (i, outcome) in handle.join().expect("batch worker survives job panics") {
                slots[i] = Some(outcome);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// The engine builder was given an unusable configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineBuildError {
    /// `.rules(…)` was never called.
    MissingRules,
    /// `.threads(0)` was requested — a pool of zero workers can run
    /// nothing, so the engine rejects it instead of silently clamping.
    ZeroThreads,
}

impl std::fmt::Display for EngineBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineBuildError::MissingRules => {
                write!(f, "GenEngine::builder() needs a rule set: call .rules(…)")
            }
            EngineBuildError::ZeroThreads => {
                write!(f, "thread count must be at least 1, got 0")
            }
        }
    }
}

impl std::error::Error for EngineBuildError {}

/// Configures and builds a [`GenEngine`]. Obtained from
/// [`GenEngine::builder`]; every knob except [`EngineBuilder::rules`]
/// has a default.
pub struct EngineBuilder {
    rules: Option<Arc<RuleSet>>,
    table: Option<Arc<TypeTable>>,
    options: GeneratorOptions,
    threads: usize,
    observer: Arc<dyn GenObserver>,
    cache: Option<Arc<OrderCache>>,
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("rules", &self.rules.as_ref().map(|_| "RuleSet"))
            .field("table", &self.table.as_ref().map(|_| "TypeTable"))
            .field("options", &self.options)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            rules: None,
            table: None,
            options: GeneratorOptions::default(),
            threads: GenEngine::DEFAULT_THREADS,
            observer: Arc::new(NoopObserver),
            cache: None,
        }
    }
}

impl EngineBuilder {
    /// The rule set the engine generates against. Required.
    pub fn rules(mut self, rules: impl Into<Arc<RuleSet>>) -> Self {
        self.rules = Some(rules.into());
        self
    }

    /// The Java type table. Defaults to the modelled JCA table
    /// ([`javamodel::jca::jca_type_table`]).
    pub fn type_table(mut self, table: impl Into<Arc<TypeTable>>) -> Self {
        self.table = Some(table.into());
        self
    }

    /// Generator options. Defaults to the paper-faithful defaults.
    pub fn options(mut self, options: GeneratorOptions) -> Self {
        self.options = options;
        self
    }

    /// Default worker-thread ceiling for [`GenEngine::batch`].
    /// Defaults to [`GenEngine::DEFAULT_THREADS`];
    /// [`GenEngine::generate_batch`] takes an explicit count and
    /// ignores this. Zero is rejected by [`EngineBuilder::build`] with
    /// [`EngineBuildError::ZeroThreads`] — a thread count must be
    /// validated wherever it enters, never silently repaired.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The compiled-ORDER cache the engine serves lookups from.
    /// Defaults to a fresh private cache. Supplying a shared
    /// [`Arc<OrderCache>`] lets a resident process keep artefacts warm
    /// across engine rebuilds (e.g. a rule-pack hot-reload): content-
    /// hash keying makes sharing safe — an entry can only ever be
    /// served to a rule whose compilation input is byte-identical to
    /// the one it was compiled from.
    pub fn order_cache(mut self, cache: Arc<OrderCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Telemetry observer for every generation this engine runs; it also
    /// receives the [`Event::BatchJob`] placements after each batch.
    /// Defaults to [`NoopObserver`]. The engine's own
    /// [`MetricsRegistry`] is always fed, independent of this hook.
    pub fn observer(mut self, observer: Arc<dyn GenObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// [`EngineBuildError::MissingRules`] when no rule set was
    /// supplied; [`EngineBuildError::ZeroThreads`] when `.threads(0)`
    /// was requested.
    pub fn build(self) -> Result<GenEngine, EngineBuildError> {
        let rules = self.rules.ok_or(EngineBuildError::MissingRules)?;
        if self.threads == 0 {
            return Err(EngineBuildError::ZeroThreads);
        }
        let table = self
            .table
            .unwrap_or_else(|| Arc::new(javamodel::jca::jca_type_table()));
        Ok(GenEngine {
            rules,
            table,
            options: self.options,
            threads: self.threads,
            observer: self.observer,
            metrics: Arc::new(MetricsRegistry::new()),
            cache: self.cache.unwrap_or_else(|| Arc::new(OrderCache::new())),
        })
    }
}

/// A thread-safe generation session: shared rules, type table, options,
/// telemetry and a compiled-ORDER cache that persists across calls.
///
/// Construction is cheap relative to what the engine amortizes: the
/// expensive state (parsed rules, compiled DFAs and path sets) is either
/// shared via [`Arc`] or built lazily on first use and reused after.
pub struct GenEngine {
    rules: Arc<RuleSet>,
    table: Arc<TypeTable>,
    options: GeneratorOptions,
    threads: usize,
    observer: Arc<dyn GenObserver>,
    metrics: Arc<MetricsRegistry>,
    cache: Arc<OrderCache>,
}

impl std::fmt::Debug for GenEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenEngine")
            .field("options", &self.options)
            .field("threads", &self.threads)
            .field("cache", &self.cache.stats())
            .finish_non_exhaustive()
    }
}

impl GenEngine {
    /// Default worker-thread ceiling used by [`GenEngine::batch`] when
    /// the builder did not override it.
    pub const DEFAULT_THREADS: usize = 4;

    /// Starts configuring an engine: `GenEngine::builder().rules(…)
    /// [.type_table(…)] [.threads(n)] [.observer(…)] .build()`.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The engine's rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The engine's type table.
    pub fn table(&self) -> &TypeTable {
        &self.table
    }

    /// The engine's accumulated metrics: ORDER-cache traffic, DFA and
    /// path-set sizes, parameter-resolution outcomes, batch-worker
    /// utilisation. Fed on every generation regardless of the configured
    /// observer; batch runs fold per-worker registries in here in input
    /// order after the fan-out joins.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Entry/hit/miss counters of the engine's compiled-ORDER cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine's compiled-ORDER cache. Handing the `Arc` to
    /// [`EngineBuilder::order_cache`] of a successor engine carries the
    /// warm artefacts across a rule-set swap.
    pub fn order_cache(&self) -> &Arc<OrderCache> {
        &self.cache
    }

    /// A successor engine over `rules` that shares everything else with
    /// this one — type table, options, thread ceiling, observer,
    /// metrics registry and the compiled-ORDER cache (all by `Arc`).
    /// This is the rule-pack hot-reload primitive for a resident
    /// process: in-flight requests keep generating against the engine
    /// they started on, new requests pick up the successor, unchanged
    /// rules still hit the warm cache, and accumulated metrics survive
    /// the swap. Call [`OrderCache::retain_fingerprints`] on the shared
    /// cache afterwards to drop artefacts the new set no longer
    /// produces.
    pub fn with_rule_set(&self, rules: impl Into<Arc<RuleSet>>) -> GenEngine {
        GenEngine {
            rules: rules.into(),
            table: self.table.clone(),
            options: self.options,
            threads: self.threads,
            observer: self.observer.clone(),
            metrics: self.metrics.clone(),
            cache: self.cache.clone(),
        }
    }

    /// Precompiles the ORDER artefact of every rule in the set, so the
    /// first generation after startup pays no compilation cost.
    ///
    /// # Errors
    ///
    /// The first [`GenError::StateMachine`] hit while compiling a rule.
    pub fn warm(&self) -> Result<(), GenError> {
        self.warm_traced().map(|_| ())
    }

    /// [`GenEngine::warm`] that also reports how many rules were served
    /// from already-cached artefacts versus compiled on the spot. An
    /// engine booted from a precompiled rule pack (whose artefacts were
    /// seeded into the cache via `OrderCache::seed`) must report
    /// `compiled == 0` — the assertion behind the pack subsystem's
    /// zero-compilation cold-start guarantee.
    ///
    /// # Errors
    ///
    /// See [`GenEngine::warm`].
    pub fn warm_traced(&self) -> Result<WarmStats, GenError> {
        let mut stats = WarmStats::default();
        for rule in self.rules.iter() {
            match self.cache.get_or_compile_traced(rule)? {
                (_, CacheLookup::Hit) => stats.hits += 1,
                (_, CacheLookup::Miss) => stats.compiled += 1,
            }
        }
        Ok(stats)
    }

    /// Generates code for one template against the engine's shared
    /// state, reusing (and extending) the compiled-ORDER cache. The
    /// engine's observer and metrics registry see the run.
    ///
    /// # Errors
    ///
    /// See [`Generator::generate`].
    pub fn generate(&self, template: &Template) -> Result<Generated, GenError> {
        let collector = MetricsCollector::new(self.metrics.clone());
        self.generate_into(template, &collector)
    }

    /// One generation whose metrics land in `sink` instead of directly
    /// in the engine registry; the configured observer still sees
    /// everything. Batch workers use this with per-job sinks so the
    /// engine registry can be updated deterministically afterwards.
    fn generate_into(
        &self,
        template: &Template,
        sink: &MetricsCollector,
    ) -> Result<Generated, GenError> {
        let observer = Tee(self.observer.as_ref(), sink);
        Generator::with_options(self.options).generate_with_cache_observed(
            template,
            &self.rules,
            &self.table,
            Some(&self.cache),
            &observer,
        )
    }

    /// [`GenEngine::generate_batch`] with the engine's configured
    /// default thread ceiling.
    pub fn batch(&self, templates: &[Template]) -> Vec<Result<Generated, EngineError>> {
        self.generate_batch(templates, self.threads)
    }

    /// Generates a batch of templates on up to `threads` worker threads.
    ///
    /// Result `i` always corresponds to `templates[i]`, whatever the
    /// thread count or scheduling. A template whose generation fails —
    /// or whose worker panics — yields an `Err` in its own slot without
    /// affecting siblings or deadlocking the batch.
    ///
    /// Telemetry: each job collects its metrics into a private registry;
    /// after the fan-out joins, the engine folds those registries into
    /// [`GenEngine::metrics`] *in input order* and reports one
    /// [`Event::BatchJob`] per completed job, also in input order. All
    /// pipeline metrics are therefore identical across thread counts and
    /// schedules; only the `engine.batch.worker.*` utilisation counters
    /// reflect actual scheduling.
    pub fn generate_batch(
        &self,
        templates: &[Template],
        threads: usize,
    ) -> Vec<Result<Generated, EngineError>> {
        let slots = scatter_on_workers(templates, threads, |worker, _, t| {
            let sink = MetricsCollector::fresh();
            let outcome = self.generate_into(t, &sink);
            (worker, sink, outcome)
        });
        let collector = MetricsCollector::new(self.metrics.clone());
        let observer = Tee(self.observer.as_ref(), &collector);
        slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Ok((worker, sink, outcome)) => {
                    self.metrics.merge_from(sink.registry());
                    observer.event(&Event::BatchJob { worker, index });
                    outcome.map_err(EngineError::Gen)
                }
                Err(panic) => Err(EngineError::Worker(panic)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{CrySlCodeGenerator, TemplateMethod};
    use javamodel::ast::{Expr, JavaType, Stmt};
    use javamodel::jca::jca_type_table;

    fn digest_rule_set() -> RuleSet {
        let mut set = RuleSet::new();
        set.add_source(
            "SPEC java.security.MessageDigest\nOBJECTS java.lang.String alg; byte[] input; byte[] output;\nEVENTS g1: getInstance(alg); u1: update(input); d1: output = digest(input);\nORDER g1, u1?, d1\nCONSTRAINTS alg in {\"SHA-256\"};",
        )
        .unwrap();
        set
    }

    fn hash_template() -> Template {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("java.security.MessageDigest")
            .add_parameter("data", "input")
            .add_return_object("hash")
            .build();
        let method = TemplateMethod::new("hash", JavaType::byte_array())
            .param(JavaType::byte_array(), "data")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "hash",
                Expr::null(),
            ))
            .chain(chain)
            .post(Stmt::Return(Some(Expr::var("hash"))));
        Template::new("p", "Hasher").method(method)
    }

    #[test]
    fn engine_generates_and_caches() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        let first = engine.generate(&hash_template()).unwrap();
        let second = engine.generate(&hash_template()).unwrap();
        assert_eq!(first.java_source, second.java_source);
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 1, "second run must hit the cache: {stats:?}");
    }

    #[test]
    fn warm_precompiles_every_rule() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        engine.warm().unwrap();
        assert_eq!(engine.cache_stats().entries, 1);
        engine.generate(&hash_template()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "generation after warm() never compiles");
    }

    #[test]
    fn batch_preserves_input_order() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        let templates: Vec<Template> = (0..6).map(|_| hash_template()).collect();
        for threads in [1, 2, 8] {
            let results = engine.generate_batch(&templates, threads);
            assert_eq!(results.len(), templates.len());
            for r in &results {
                assert!(r.is_ok());
            }
        }
    }

    #[test]
    fn batch_surfaces_generation_errors_per_slot() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        let bad = Template::new("p", "C").method(
            TemplateMethod::new("go", JavaType::Void).chain(
                CrySlCodeGenerator::get_instance()
                    .consider_crysl_rule("no.such.Rule")
                    .build(),
            ),
        );
        let templates = vec![hash_template(), bad, hash_template()];
        let results = engine.generate_batch(&templates, 2);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::Gen(GenError::UnknownRule(_)))
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn zero_threads_is_a_build_error_not_a_silent_clamp() {
        let err = GenEngine::builder()
            .rules(digest_rule_set())
            .threads(0)
            .build()
            .unwrap_err();
        assert_eq!(err, EngineBuildError::ZeroThreads);
        assert!(err.to_string().contains("got 0"));
    }

    #[test]
    fn with_rule_set_shares_cache_and_metrics_across_the_swap() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        let first = engine.generate(&hash_template()).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);
        let generations_before = engine.metrics().counter("phase.collect.spans");

        // Swap in a byte-identical rule set: the successor serves the
        // same artefact from the shared warm cache (a hit, no compile).
        let successor = engine.with_rule_set(digest_rule_set());
        assert!(Arc::ptr_eq(engine.order_cache(), successor.order_cache()));
        let misses_before = successor.cache_stats().misses;
        let second = successor.generate(&hash_template()).unwrap();
        assert_eq!(first.java_source, second.java_source);
        assert_eq!(successor.cache_stats().misses, misses_before);
        // Metrics accumulated before the swap survive it.
        assert!(successor.metrics().counter("phase.collect.spans") > generations_before);
    }

    #[test]
    fn shared_order_cache_prunes_to_the_new_rule_sets_fingerprints() {
        let engine = GenEngine::builder()
            .rules(digest_rule_set())
            .type_table(jca_type_table())
            .build()
            .unwrap();
        engine.warm().unwrap();
        assert_eq!(engine.cache_stats().entries, 1);

        // A "changed" rule set: same class, different ORDER.
        let mut changed = RuleSet::new();
        changed
            .add_source(
                "SPEC java.security.MessageDigest\nOBJECTS java.lang.String alg; byte[] input; byte[] output;\nEVENTS g1: getInstance(alg); u1: update(input); d1: output = digest(input);\nORDER g1, u1+, d1\nCONSTRAINTS alg in {\"SHA-256\"};",
            )
            .unwrap();
        let successor = engine.with_rule_set(changed);
        successor.warm().unwrap();
        // Old + new fingerprints both present until invalidation...
        assert_eq!(successor.cache_stats().entries, 2);
        // ...then retain exactly the successor's fingerprints.
        let keep: Vec<u64> = successor
            .rules()
            .iter()
            .map(statemachine::compile::order_fingerprint)
            .collect();
        let dropped = successor
            .order_cache()
            .retain_fingerprints(|fp| keep.contains(&fp));
        assert_eq!(dropped, 1);
        assert_eq!(successor.cache_stats().entries, 1);
        successor.generate(&hash_template()).unwrap();
    }

    #[test]
    fn scatter_contains_panics_to_their_slot() {
        let items: Vec<usize> = (0..10).collect();
        let results = scatter(&items, 4, |_, &v| {
            assert!(v != 5, "poisoned item");
            v * 2
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, 5);
                assert!(p.message.contains("poisoned item"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn scatter_handles_empty_and_oversized_thread_counts() {
        let empty: Vec<u8> = Vec::new();
        assert!(scatter(&empty, 8, |_, _| ()).is_empty());
        let one = [7u8];
        let r = scatter(&one, 64, |_, &v| v + 1);
        assert_eq!(r[0].as_ref().copied().unwrap(), 8);
    }
}
