//! Step 4 of the pipeline: resolving values for rule variables
//! (paper Fig. 6, step 4).
//!
//! For each method parameter the generator tries, in order:
//!
//! 1. a template binding (`addParameter`),
//! 2. an object generated earlier that carries the required predicate
//!    (a [`Link`]),
//! 3. a value produced by an earlier event of the same rule (a bound
//!    return variable),
//! 4. the rule's own instance (`this`),
//! 5. a secure value derived from the rule's CONSTRAINTS — the first
//!    literal of an `in {…}` set, or the boundary value of a comparison,
//! 6. otherwise the parameter is *hoisted* into the wrapper method's
//!    signature (the paper's compilability-over-completeness fallback).

use crysl::ast::{Atom, CmpOp, Constraint, Literal, TypeRef};
use javamodel::ast::JavaType;
use javamodel::TypeTable;

use crate::collect::CollectedRule;
use crate::link::{Carrier, Link, LinkSetExt};
use crate::telemetry::{Event, GenObserver, ResolutionKind};

/// How a rule variable obtains its value in the generated code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Bound to a template variable by `addParameter`.
    TemplateVar(String),
    /// Supplied by a predicate link from an earlier rule.
    Linked {
        /// Index of the producing rule.
        from_rule: usize,
        /// Carrier of the ensured predicate in the producing rule.
        from_carrier: Carrier,
    },
    /// Bound by an earlier event of the same rule (`key = generateSecret(..)`).
    OwnReturn,
    /// The rule's own instance.
    This,
    /// A literal derived from CONSTRAINTS.
    Value(Literal),
    /// Unresolvable — hoist into the wrapper signature.
    Hoist,
}

/// Converts a CrySL type reference into a modelled Java type.
pub fn java_type_of(ty: &TypeRef) -> JavaType {
    let base = match ty.name.as_str() {
        "int" => JavaType::Int,
        "long" => JavaType::Long,
        "boolean" => JavaType::Boolean,
        "char" => JavaType::Char,
        "byte" => JavaType::Byte,
        other => JavaType::Class(other.to_owned()),
    };
    (0..ty.array_dims).fold(base, |t, _| JavaType::Array(Box::new(t)))
}

/// The static Java type of rule variable `var` of rule `idx`, as far as the
/// generator can tell: template binding type, the producing rule's type for
/// linked variables, or the OBJECTS declaration.
pub fn static_type_of(
    idx: usize,
    var: &str,
    rules: &[CollectedRule<'_>],
    links: &[Link],
) -> Option<JavaType> {
    let cr = &rules[idx];
    if let Some(ty) = cr.bound_type(var) {
        return Some(ty.clone());
    }
    if let Some(link) = links.producer_for(idx, &Carrier::Var(var.to_owned())) {
        let producer = &rules[link.from_rule];
        return match &link.from_carrier {
            Carrier::This => Some(JavaType::class(producer.rule.class_name.as_str())),
            Carrier::Var(v) => producer.rule.object(v).map(|o| java_type_of(&o.ty)),
        };
    }
    cr.rule.object(var).map(|o| java_type_of(&o.ty))
}

/// Derives a secure literal for `var` from the rule's CONSTRAINTS section:
/// the first applicable constraint wins, with implications evaluated
/// against the statically known types (`instanceof`) or resolved literals.
pub fn constraint_value(
    idx: usize,
    var: &str,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
) -> Option<Literal> {
    let rule = rules[idx].rule;
    for c in &rule.constraints {
        if let Some(v) = constraint_value_in(c, idx, var, rules, links, table) {
            return Some(v);
        }
    }
    None
}

fn constraint_value_in(
    c: &Constraint,
    idx: usize,
    var: &str,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
) -> Option<Literal> {
    match c {
        Constraint::In { var: v, choices } if v == var => choices.first().cloned(),
        Constraint::Cmp { left, op, right } => cmp_value(left, *op, right, var),
        Constraint::Implies {
            antecedent,
            consequent,
        } => {
            if antecedent_holds(antecedent, idx, rules, links, table) {
                constraint_value_in(consequent, idx, var, rules, links, table)
            } else {
                None
            }
        }
        Constraint::And(a, b) => constraint_value_in(a, idx, var, rules, links, table)
            .or_else(|| constraint_value_in(b, idx, var, rules, links, table)),
        _ => None,
    }
}

/// The closest value satisfying `var op lit` (or `lit op var`), for
/// integer comparisons — the paper's "closest value that satisfies this
/// constraint" (10,000 for `iterationCount >= 10000`).
fn cmp_value(left: &Atom, op: CmpOp, right: &Atom, var: &str) -> Option<Literal> {
    let (is_var_left, lit) = match (left, right) {
        (Atom::Var(v), Atom::Lit(l)) if v == var => (true, l),
        (Atom::Lit(l), Atom::Var(v)) if v == var => (false, l),
        _ => return None,
    };
    match lit {
        Literal::Int(n) => {
            // Normalize `lit op var` to `var op' lit`.
            let op = if is_var_left { op } else { flip(op) };
            let value = match op {
                CmpOp::Ge | CmpOp::Le | CmpOp::Eq => *n,
                CmpOp::Gt => n + 1,
                CmpOp::Lt => n - 1,
                CmpOp::Ne => n + 1,
            };
            Some(Literal::Int(value))
        }
        other => match op {
            CmpOp::Eq => Some(other.clone()),
            _ => None,
        },
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Statically evaluates an implication guard. `instanceof` checks use the
/// modelled subtype graph; other constraints evaluate only when every
/// operand resolves to a literal. Unknown guards count as *not holding* —
/// the generator must never pick a value it cannot justify.
pub fn antecedent_holds(
    c: &Constraint,
    idx: usize,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
) -> bool {
    match c {
        Constraint::InstanceOf { var, java_type } => {
            let Some(ty) = static_type_of(idx, var, rules, links) else {
                return false;
            };
            match ty.class_name() {
                Some(cls) => table.is_subclass_of(cls, java_type.as_str()),
                None => false,
            }
        }
        Constraint::And(a, b) => {
            antecedent_holds(a, idx, rules, links, table)
                && antecedent_holds(b, idx, rules, links, table)
        }
        Constraint::Or(a, b) => {
            antecedent_holds(a, idx, rules, links, table)
                || antecedent_holds(b, idx, rules, links, table)
        }
        _ => false,
    }
}

/// Resolves rule variable `var` of rule `idx` for a path whose earlier
/// events bind the return variables in `own_returns`.
///
/// Never returns [`Resolution::Hoist`] for `this`; instance resolution is
/// handled separately by the assembler.
pub fn resolve_var(
    idx: usize,
    var: &str,
    own_returns: &[&str],
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
) -> Resolution {
    let cr = &rules[idx];
    if cr.bound_template_var(var).is_some() {
        return Resolution::TemplateVar(
            cr.bound_template_var(var).expect("just checked").to_owned(),
        );
    }
    if let Some(link) = links.producer_for(idx, &Carrier::Var(var.to_owned())) {
        return Resolution::Linked {
            from_rule: link.from_rule,
            from_carrier: link.from_carrier.clone(),
        };
    }
    if own_returns.contains(&var) {
        return Resolution::OwnReturn;
    }
    if let Some(lit) = constraint_value(idx, var, rules, links, table) {
        return Resolution::Value(lit);
    }
    Resolution::Hoist
}

impl Resolution {
    /// The telemetry discriminant of this resolution.
    pub fn kind(&self) -> ResolutionKind {
        match self {
            Resolution::TemplateVar(_) => ResolutionKind::Template,
            Resolution::Linked { .. } => ResolutionKind::Linked,
            Resolution::OwnReturn => ResolutionKind::OwnReturn,
            Resolution::This => ResolutionKind::This,
            Resolution::Value(_) => ResolutionKind::Constraint,
            Resolution::Hoist => ResolutionKind::Hoist,
        }
    }
}

/// Replays the resolution of every event parameter of rule `idx` along
/// `path` and reports the outcome of each as a telemetry event:
/// [`Event::ParamResolved`] for resolved parameters,
/// [`Event::ParamHoisted`] for fallback hoists. Pure reporting — the
/// assembler performs the authoritative resolution; this walk applies
/// the same rules in the same order, so the reported outcomes match
/// what the generated code does.
pub fn report_path_resolutions(
    idx: usize,
    path: &[String],
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
    observer: &dyn GenObserver,
) {
    let rule = rules[idx].rule;
    let mut own_returns: Vec<&str> = Vec::new();
    for label in path {
        let Some(m) = rule.method_event(label) else {
            continue;
        };
        for p in &m.params {
            if let crysl::ast::ParamPattern::Var(v) = p {
                let r = resolve_var(idx, v, &own_returns, rules, links, table);
                match r {
                    Resolution::Hoist => observer.event(&Event::ParamHoisted {
                        rule: rule.class_name.as_str(),
                        variable: v,
                    }),
                    resolved => observer.event(&Event::ParamResolved {
                        rule: rule.class_name.as_str(),
                        variable: v,
                        via: resolved.kind(),
                    }),
                }
            }
        }
        if let Some(rv) = &m.return_var {
            own_returns.push(rv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use crate::link::link;
    use crate::template::{CrySlCodeGenerator, GeneratorChain, TemplateMethod};
    use crysl::RuleSet;
    use javamodel::jca::jca_type_table;

    fn setup(
        srcs: &[&str],
        chain: GeneratorChain,
        method: &TemplateMethod,
    ) -> (RuleSet, GeneratorChain, TemplateMethod) {
        let mut set = RuleSet::new();
        for s in srcs {
            set.add_source(s).unwrap();
        }
        (set, chain, method.clone())
    }

    #[test]
    fn java_type_conversion() {
        assert_eq!(java_type_of(&TypeRef::scalar("int")), JavaType::Int);
        assert_eq!(
            java_type_of(&TypeRef::array("char")),
            JavaType::char_array()
        );
        assert_eq!(
            java_type_of(&TypeRef::scalar("java.lang.String")),
            JavaType::string()
        );
    }

    #[test]
    fn cmp_boundaries() {
        use crysl::ast::Literal::Int;
        let v = |op| cmp_value(&Atom::Var("x".into()), op, &Atom::Lit(Int(10)), "x");
        assert_eq!(v(CmpOp::Ge), Some(Int(10)));
        assert_eq!(v(CmpOp::Gt), Some(Int(11)));
        assert_eq!(v(CmpOp::Le), Some(Int(10)));
        assert_eq!(v(CmpOp::Lt), Some(Int(9)));
        assert_eq!(v(CmpOp::Eq), Some(Int(10)));
        // Flipped form: `10 <= x` means `x >= 10`.
        assert_eq!(
            cmp_value(&Atom::Lit(Int(10)), CmpOp::Le, &Atom::Var("x".into()), "x"),
            Some(Int(10))
        );
    }

    #[test]
    fn in_constraint_picks_first_choice() {
        let (set, chain, method) = setup(
            &["SPEC a.X\nOBJECTS java.lang.String alg;\nEVENTS g: getInstance(alg);\nCONSTRAINTS alg in {\"AES\", \"DES\"};"],
            CrySlCodeGenerator::get_instance().consider_crysl_rule("a.X").build(),
            &TemplateMethod::new("go", JavaType::Void),
        );
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        assert_eq!(
            constraint_value(0, "alg", &rules, &links, &jca_type_table()),
            Some(Literal::Str("AES".into()))
        );
    }

    #[test]
    fn instanceof_guard_selects_branch_by_linked_type() {
        // A produces a SecretKeySpec; B's `alg` choice is guarded by the
        // static type of `key`.
        let (set, chain, method) = setup(
            &[
                "SPEC javax.crypto.spec.SecretKeySpec\nEVENTS c: SecretKeySpec();\nENSURES generatedKey[this];",
                "SPEC a.B\nOBJECTS java.security.Key key; java.lang.String t;\nEVENTS i: init(key, t);\nCONSTRAINTS instanceof[key, javax.crypto.SecretKey] => t in {\"SYM\"}; instanceof[key, java.security.PublicKey] => t in {\"ASYM\"};\nREQUIRES generatedKey[key];",
            ],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("javax.crypto.spec.SecretKeySpec")
                .consider_crysl_rule("a.B")
                .build(),
            &TemplateMethod::new("go", JavaType::Void),
        );
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        assert_eq!(
            static_type_of(1, "key", &rules, &links),
            Some(JavaType::class("javax.crypto.spec.SecretKeySpec"))
        );
        assert_eq!(
            constraint_value(1, "t", &rules, &links, &jca_type_table()),
            Some(Literal::Str("SYM".into()))
        );
    }

    #[test]
    fn resolution_order_template_first() {
        let (set, chain, method) = setup(
            &[
                "SPEC a.P\nOBJECTS byte[] o;\nEVENTS e: f(o);\nENSURES p[o];",
                "SPEC a.C\nOBJECTS byte[] x;\nEVENTS e: g(x);\nCONSTRAINTS x == x;\nREQUIRES p[x];",
            ],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("a.P")
                .consider_crysl_rule("a.C")
                .add_parameter("data", "x")
                .build(),
            &TemplateMethod::new("go", JavaType::Void).param(JavaType::byte_array(), "data"),
        );
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        // Template binding beats the predicate link.
        assert_eq!(
            resolve_var(1, "x", &[], &rules, &links, &jca_type_table()),
            Resolution::TemplateVar("data".into())
        );
    }

    #[test]
    fn unresolvable_falls_back_to_hoist() {
        let (set, chain, method) = setup(
            &["SPEC a.X\nOBJECTS byte[] data;\nEVENTS e: use(data);"],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("a.X")
                .build(),
            &TemplateMethod::new("go", JavaType::Void),
        );
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        assert_eq!(
            resolve_var(0, "data", &[], &rules, &links, &jca_type_table()),
            Resolution::Hoist
        );
    }

    #[test]
    fn own_return_resolves() {
        let (set, chain, method) = setup(
            &["SPEC a.X\nOBJECTS byte[] out;\nEVENTS e1: out = make(); e2: use(out);\nORDER e1, e2"],
            CrySlCodeGenerator::get_instance().consider_crysl_rule("a.X").build(),
            &TemplateMethod::new("go", JavaType::Void),
        );
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        assert_eq!(
            resolve_var(0, "out", &["out"], &rules, &links, &jca_type_table()),
            Resolution::OwnReturn
        );
    }
}
