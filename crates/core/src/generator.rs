//! The generator façade: runs the five pipeline steps over a template and
//! type-checks the result.
//!
//! The pipeline is *phase-major*: each of the five phases (collect →
//! link → select → resolve → assemble) runs to completion over every
//! call chain of the template before the next phase starts. Besides
//! matching the paper's Figure 6 structure, this gives the telemetry
//! layer its core invariant — exactly one [`telemetry::Span`] enter/exit
//! pair per phase per generated template, with all fine-grained events
//! reported inside the phase they belong to.

use javamodel::ast::{ClassDecl, CompilationUnit, MethodDecl};
use javamodel::printer::print_unit;
use javamodel::typecheck::check_unit;
use javamodel::typetable::ClassDef;
use javamodel::TypeTable;

use statemachine::OrderCache;

use crate::assemble::{assemble, template_usage};
use crate::collect::{collect, CollectedRule};
use crate::engine::shared_order_cache;
use crate::error::GenError;
use crate::link::{link, Link};
use crate::pathsel::{select_path_traced, SelectedPath, SelectionOptions};
use crate::resolve::report_path_resolutions;
use crate::telemetry::{self, GenObserver, Phase, Span, SpanTimer};
use crate::template::{GeneratorChain, Template, TemplateMethod};

/// Options controlling a generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneratorOptions {
    /// Path-selection knobs (filters, tie-breaks, fallback hoisting).
    pub selection: SelectionOptions,
    /// Skip the final Java type check (used only by ablation benchmarks;
    /// the paper's guarantee depends on it staying on).
    pub skip_type_check: bool,
    /// Skip generating the `templateUsage` showcase class.
    pub skip_usage_class: bool,
}

/// The result of a generation run.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The full compilation unit: template class plus `OutputClass`.
    pub unit: CompilationUnit,
    /// Pretty-printed Java source of `unit`.
    pub java_source: String,
    /// Names of wrapper parameters hoisted by the fallback rule, per
    /// method — empty for all shipped use cases (mirroring the paper's
    /// observation that the fallback never fires in practice).
    pub hoisted: Vec<(String, Vec<String>)>,
}

/// A configured generator. [`generate`] is the convenience entry point
/// with default options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Generator {
    options: GeneratorOptions,
}

impl Generator {
    /// Creates a generator with default (paper-faithful) options.
    pub fn new() -> Self {
        Generator::default()
    }

    /// Creates a generator with explicit options.
    pub fn with_options(options: GeneratorOptions) -> Self {
        Generator { options }
    }

    /// Runs the pipeline on `template` against `rules` and `table`,
    /// reusing compiled ORDER artefacts from the process-wide shared
    /// cache ([`shared_order_cache`]) so repeat single-shot calls skip
    /// recompilation. Differential tests proved the cached path
    /// byte-identical to the cold path; use [`Generator::generate_uncached`]
    /// to force the cold path explicitly.
    ///
    /// # Errors
    ///
    /// Any [`GenError`] from the pipeline steps; see the variants for the
    /// failure modes. The returned code is guaranteed to pass the Java
    /// type checker unless `skip_type_check` was set.
    pub fn generate(
        &self,
        template: &Template,
        rules: &crysl::RuleSet,
        table: &TypeTable,
    ) -> Result<Generated, GenError> {
        self.generate_with_cache(template, rules, table, Some(shared_order_cache()))
    }

    /// [`Generator::generate`] without any compiled-artefact reuse: every
    /// rule's ORDER pattern is recompiled from scratch. This is the
    /// legacy cold path, kept as the reference implementation the
    /// differential suite compares the cache against.
    ///
    /// # Errors
    ///
    /// See [`Generator::generate`].
    pub fn generate_uncached(
        &self,
        template: &Template,
        rules: &crysl::RuleSet,
        table: &TypeTable,
    ) -> Result<Generated, GenError> {
        self.generate_with_cache(template, rules, table, None)
    }

    /// [`Generator::generate`] with telemetry: the observer receives one
    /// span enter/exit pair per pipeline phase for this template (unit
    /// label = the template class name) plus the fine-grained events
    /// reported inside each phase. Passing [`telemetry::NoopObserver`]
    /// is exactly [`Generator::generate`] — the differential suite
    /// proves the output byte-identical either way.
    ///
    /// # Errors
    ///
    /// See [`Generator::generate`].
    pub fn generate_observed(
        &self,
        template: &Template,
        rules: &crysl::RuleSet,
        table: &TypeTable,
        observer: &dyn GenObserver,
    ) -> Result<Generated, GenError> {
        self.generate_with_cache_observed(
            template,
            rules,
            table,
            Some(shared_order_cache()),
            observer,
        )
    }

    /// The pipeline with an explicit compiled-ORDER cache choice; the
    /// engine passes its own session cache here.
    pub(crate) fn generate_with_cache(
        &self,
        template: &Template,
        rules: &crysl::RuleSet,
        table: &TypeTable,
        cache: Option<&OrderCache>,
    ) -> Result<Generated, GenError> {
        self.generate_with_cache_observed(template, rules, table, cache, telemetry::noop())
    }

    /// The full pipeline: explicit cache choice *and* observer. Each
    /// phase runs over every call chain before the next phase starts, so
    /// the observer sees exactly one span pair per phase. A failing
    /// phase still closes its span (the error propagates; later phases
    /// never open).
    pub(crate) fn generate_with_cache_observed(
        &self,
        template: &Template,
        rules: &crysl::RuleSet,
        table: &TypeTable,
        cache: Option<&OrderCache>,
        observer: &dyn GenObserver,
    ) -> Result<Generated, GenError> {
        let unit = template.class_name.as_str();

        // Per-chain pipeline state, in template-method order (helper
        // methods carry no chain and join again at assembly).
        struct ChainWork<'r, 't> {
            tm: &'t TemplateMethod,
            chain: &'t GeneratorChain,
            collected: Vec<CollectedRule<'r>>,
            links: Vec<Link>,
            paths: Vec<SelectedPath>,
        }

        // Phase 1: collect — gather rules and template bindings.
        let mut works: Vec<ChainWork<'_, '_>> = Vec::new();
        {
            let _span = SpanTimer::enter(
                observer,
                Span {
                    unit,
                    phase: Phase::Collect,
                },
            );
            for tm in &template.methods {
                if let Some(chain) = &tm.chain {
                    let collected = collect(chain, tm, rules)?;
                    works.push(ChainWork {
                        tm,
                        chain,
                        collected,
                        links: Vec::new(),
                        paths: Vec::new(),
                    });
                }
            }
        }

        // Phase 2: link — connect rules through ENSURES/REQUIRES.
        {
            let _span = SpanTimer::enter(
                observer,
                Span {
                    unit,
                    phase: Phase::Link,
                },
            );
            for w in &mut works {
                w.links = link(&w.collected);
            }
        }

        // Phase 3: select — pick a method sequence per rule.
        {
            let _span = SpanTimer::enter(
                observer,
                Span {
                    unit,
                    phase: Phase::Select,
                },
            );
            for w in &mut works {
                let ret_ty = w
                    .chain
                    .return_object
                    .as_deref()
                    .and_then(|r| w.tm.var_type(r));
                for idx in 0..w.collected.len() {
                    // The last rule must be able to produce the
                    // nominated return object.
                    let expected = if idx + 1 == w.collected.len() {
                        ret_ty
                    } else {
                        None
                    };
                    w.paths.push(select_path_traced(
                        idx,
                        &w.collected,
                        &w.links,
                        table,
                        &self.options.selection,
                        expected,
                        cache,
                        observer,
                    )?);
                }
            }
        }

        // Phase 4: resolve — report how every parameter of the selected
        // paths obtains its value. The assembler re-derives the same
        // resolutions when emitting code; this pass is what makes them
        // observable per-parameter.
        {
            let _span = SpanTimer::enter(
                observer,
                Span {
                    unit,
                    phase: Phase::Resolve,
                },
            );
            for w in &works {
                for (idx, sp) in w.paths.iter().enumerate() {
                    report_path_resolutions(
                        idx,
                        &sp.labels,
                        &w.collected,
                        &w.links,
                        table,
                        observer,
                    );
                }
            }
        }

        // Phase 5: assemble — emit the Java code, the showcase class and
        // the type check.
        let _span = SpanTimer::enter(
            observer,
            Span {
                unit,
                phase: Phase::Assemble,
            },
        );
        let mut class = ClassDecl::new(template.class_name.clone());
        let mut hoisted_report = Vec::new();
        let mut chain_methods = Vec::new();
        let mut work_iter = works.iter();
        for tm in &template.methods {
            match &tm.chain {
                Some(chain) => {
                    let w = work_iter.next().expect("one ChainWork per chain method");
                    let assembled = assemble(
                        tm,
                        &w.collected,
                        &w.links,
                        &w.paths,
                        chain.return_object.as_deref(),
                        table,
                    )?;
                    if !assembled.hoisted_params.is_empty() {
                        hoisted_report.push((
                            tm.name.clone(),
                            assembled
                                .hoisted_params
                                .iter()
                                .map(|p| p.name.clone())
                                .collect(),
                        ));
                    }
                    chain_methods.push(tm.name.clone());
                    class.methods.push(assembled.method);
                }
                None => {
                    // Plain helper method: glue code only.
                    let mut m = MethodDecl::new(tm.name.clone(), tm.return_type.clone());
                    m.params = tm.params.clone();
                    m.body = tm.pre_statements.clone();
                    m.body.extend(tm.post_statements.clone());
                    class.methods.push(m);
                }
            }
        }

        let mut unit = CompilationUnit::new(template.package.clone());
        if !self.options.skip_usage_class {
            let usage = template_usage(&class, &chain_methods, table);
            unit.classes.push(class);
            unit.classes.push(usage);
        } else {
            unit.classes.push(class);
        }

        if !self.options.skip_type_check {
            // The template class itself must be constructible inside the
            // unit (templateUsage instantiates it with the default ctor).
            let mut check_table = table.clone();
            check_table.add(ClassDef::new(template.class_name.clone()).ctor(vec![]));
            check_unit(&unit, &check_table).map_err(|e| GenError::TypeCheck(e.to_string()))?;
        }

        let java_source = print_unit(&unit);
        Ok(Generated {
            unit,
            java_source,
            hoisted: hoisted_report,
        })
    }
}

/// Generates code for `template` with default options.
///
/// # Errors
///
/// See [`Generator::generate`].
pub fn generate(
    template: &Template,
    rules: &crysl::RuleSet,
    table: &TypeTable,
) -> Result<Generated, GenError> {
    Generator::new().generate(template, rules, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{CrySlCodeGenerator, TemplateMethod};
    use javamodel::ast::{Expr, JavaType, Stmt};
    use javamodel::jca::jca_type_table;

    /// The paper's running example: Figure 4 in, Figure 5 out.
    fn pbe_template() -> Template {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("java.security.SecureRandom")
            .add_parameter("salt", "out")
            .consider_crysl_rule("javax.crypto.spec.PBEKeySpec")
            .add_parameter("pwd", "password")
            .consider_crysl_rule("javax.crypto.SecretKeyFactory")
            .consider_crysl_rule("javax.crypto.SecretKey")
            .consider_crysl_rule("javax.crypto.spec.SecretKeySpec")
            .add_return_object("encryptionKey")
            .build();
        let method = TemplateMethod::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .param(JavaType::char_array(), "pwd")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(JavaType::Byte, Expr::int(32)),
            ))
            .pre(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKey"),
                "encryptionKey",
                Expr::null(),
            ))
            .chain(chain)
            .post(Stmt::Return(Some(Expr::var("encryptionKey"))));
        Template::new("de.crypto.cognicrypt", "TemplateClass").method(method)
    }

    #[test]
    fn generates_paper_figure_5() {
        let generated = generate(
            &pbe_template(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        // The structure of Figure 5:
        assert!(
            src.contains("SecureRandom secureRandom = SecureRandom.getInstance(\"SHA1PRNG\");"),
            "{src}"
        );
        assert!(src.contains("secureRandom.nextBytes(salt);"), "{src}");
        assert!(
            src.contains("new PBEKeySpec(pwd, salt, 10000, 128)"),
            "{src}"
        );
        assert!(
            src.contains("SecretKeyFactory.getInstance(\"PBKDF2WithHmacSHA256\")"),
            "{src}"
        );
        assert!(src.contains(".generateSecret(pBEKeySpec)"), "{src}");
        assert!(src.contains(".getEncoded()"), "{src}");
        assert!(
            src.contains("new SecretKeySpec(keyMaterial, \"AES\")"),
            "{src}"
        );
        // clearPassword is deferred to just before the return.
        let clear_pos = src
            .find("pBEKeySpec.clearPassword();")
            .expect("clearPassword present");
        let spec_pos = src
            .find("new SecretKeySpec")
            .expect("SecretKeySpec present");
        assert!(clear_pos > spec_pos, "clearPassword must come last:\n{src}");
        // templateUsage showcase exists and hoists the password parameter.
        assert!(src.contains("public class OutputClass"), "{src}");
        assert!(src.contains("templateUsage(char[] pwd)"), "{src}");
        // Nothing needed the fallback.
        assert!(generated.hoisted.is_empty());
    }

    #[test]
    fn generated_code_type_checks_by_construction() {
        // generate() ran check_unit internally; re-run explicitly.
        let generated = generate(
            &pbe_template(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut table = jca_type_table();
        table.add(ClassDef::new("TemplateClass").ctor(vec![]));
        javamodel::typecheck::check_unit(&generated.unit, &table).unwrap();
    }

    #[test]
    fn unknown_rule_surfaces() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("javax.crypto.NoSuchRule")
            .build();
        let t =
            Template::new("p", "C").method(TemplateMethod::new("go", JavaType::Void).chain(chain));
        assert!(matches!(
            generate(
                &t,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table()
            ),
            Err(GenError::UnknownRule(_))
        ));
    }

    #[test]
    fn helper_methods_pass_through() {
        let t = Template::new("p", "C").method(
            TemplateMethod::new("helper", JavaType::Int).post(Stmt::Return(Some(Expr::int(7)))),
        );
        let generated = generate(
            &t,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        assert!(generated.java_source.contains("public int helper() {"));
        // Helper methods are not called from templateUsage.
        assert!(!generated.java_source.contains(".helper("));
    }
}
