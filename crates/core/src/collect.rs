//! Step 1 of the pipeline: collect rules and template parameters from a
//! fluent-API call chain (paper Fig. 6, step 1).

use std::collections::BTreeSet;

use crysl::ast::Rule;
use crysl::RuleSet;
use javamodel::ast::JavaType;

use crate::error::GenError;
use crate::template::{Binding, GeneratorChain, TemplateMethod};

/// A rule included in the generation, together with its template bindings
/// and the Java types of the bound template variables.
#[derive(Debug, Clone)]
pub struct CollectedRule<'r> {
    /// The CrySL rule.
    pub rule: &'r Rule,
    /// Bindings from `addParameter`, validated against the rule's OBJECTS.
    pub bindings: Vec<Binding>,
    /// `(template_var, java_type)` for every binding, in binding order.
    pub binding_types: Vec<(String, JavaType)>,
}

impl CollectedRule<'_> {
    /// The template variable bound to `rule_var`, if any.
    pub fn bound_template_var(&self, rule_var: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|b| b.rule_var == rule_var)
            .map(|b| b.template_var.as_str())
    }

    /// The Java type of the template variable bound to `rule_var`.
    pub fn bound_type(&self, rule_var: &str) -> Option<&JavaType> {
        let tv = self.bound_template_var(rule_var)?;
        self.binding_types
            .iter()
            .find(|(v, _)| v == tv)
            .map(|(_, t)| t)
    }
}

/// Resolves every `considerCrySLRule` entry of `chain` against `rules` and
/// validates the `addParameter` bindings against both sides: the rule must
/// declare the rule variable, and the template method must declare the
/// template variable.
///
/// # Errors
///
/// [`GenError::UnknownRule`], [`GenError::UnknownRuleVariable`] or
/// [`GenError::UnknownTemplateVariable`] describing the first violation.
pub fn collect<'r>(
    chain: &GeneratorChain,
    method: &TemplateMethod,
    rules: &'r RuleSet,
) -> Result<Vec<CollectedRule<'r>>, GenError> {
    let mut out = Vec::with_capacity(chain.entries.len());
    let mut seen = BTreeSet::new();
    for entry in &chain.entries {
        let rule = rules
            .by_name(&entry.rule)
            .ok_or_else(|| GenError::UnknownRule(entry.rule.clone()))?;
        // A repeated rule would re-emit its call sequence on the same
        // object, which the rule's own usage pattern forbids.
        if !seen.insert(&rule.class_name) {
            return Err(GenError::DuplicateRule(entry.rule.clone()));
        }
        let mut binding_types = Vec::new();
        for b in &entry.bindings {
            if rule.object(&b.rule_var).is_none() {
                return Err(GenError::UnknownRuleVariable {
                    rule: rule.class_name.to_string(),
                    variable: b.rule_var.clone(),
                });
            }
            let ty = method
                .var_type(&b.template_var)
                .ok_or_else(|| GenError::UnknownTemplateVariable(b.template_var.clone()))?;
            binding_types.push((b.template_var.clone(), ty.clone()));
        }
        out.push(CollectedRule {
            rule,
            bindings: entry.bindings.clone(),
            binding_types,
        });
    }
    if let Some(ret) = &chain.return_object {
        if method.var_type(ret).is_none() {
            return Err(GenError::UnknownTemplateVariable(ret.clone()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::CrySlCodeGenerator;
    use javamodel::ast::{Expr, Stmt};

    fn ruleset() -> RuleSet {
        let mut set = RuleSet::new();
        set.add_source(
            "SPEC java.security.SecureRandom\nOBJECTS byte[] out;\nEVENTS n: nextBytes(out);\nENSURES randomized[out];",
        )
        .unwrap();
        set
    }

    fn method() -> TemplateMethod {
        TemplateMethod::new("go", JavaType::Void).pre(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::new_array(JavaType::Byte, Expr::int(32)),
        ))
    }

    #[test]
    fn collects_and_types_bindings() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("SecureRandom")
            .add_parameter("salt", "out")
            .build();
        let set = ruleset();
        let collected = collect(&chain, &method(), &set).unwrap();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].bound_template_var("out"), Some("salt"));
        assert_eq!(
            collected[0].bound_type("out"),
            Some(&JavaType::byte_array())
        );
    }

    #[test]
    fn unknown_rule_is_reported() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("javax.crypto.Nonexistent")
            .build();
        assert_eq!(
            collect(&chain, &method(), &ruleset()).unwrap_err(),
            GenError::UnknownRule("javax.crypto.Nonexistent".into())
        );
    }

    #[test]
    fn unknown_rule_variable_is_reported() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("SecureRandom")
            .add_parameter("salt", "wrongVar")
            .build();
        assert!(matches!(
            collect(&chain, &method(), &ruleset()).unwrap_err(),
            GenError::UnknownRuleVariable { .. }
        ));
    }

    #[test]
    fn unknown_template_variable_is_reported() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("SecureRandom")
            .add_parameter("ghost", "out")
            .build();
        assert_eq!(
            collect(&chain, &method(), &ruleset()).unwrap_err(),
            GenError::UnknownTemplateVariable("ghost".into())
        );
    }

    #[test]
    fn unknown_return_object_is_reported() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("SecureRandom")
            .add_return_object("ghost")
            .build();
        assert!(collect(&chain, &method(), &ruleset()).is_err());
    }
}
