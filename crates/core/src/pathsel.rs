//! Step 3 of the pipeline: selecting a method sequence per rule
//! (paper Fig. 6, step 3).
//!
//! Each rule's `ORDER` pattern is compiled into a state machine and its
//! accepting paths enumerated ([`statemachine::paths`]). The paper's
//! filters then apply:
//!
//! * paths that do not use every template-bound object are eliminated,
//! * paths that cannot grant the predicates other considered rules rely on
//!   are eliminated,
//! * paths with unresolvable parameters are eliminated (unless *every*
//!   path has unresolvable parameters, in which case the best path wins
//!   and the leftovers are hoisted into the wrapper signature).
//!
//! Of the survivors, the shortest path — fewest calls, then fewest
//! parameters — is selected.

use crysl::ast::{MethodEvent, Rule};
use statemachine::paths::{enumerate, PathLimit};
use statemachine::{CacheLookup, OrderCache};

use crate::collect::CollectedRule;
use crate::error::GenError;
use crate::link::{Carrier, Link, LinkSetExt};
use crate::resolve::{resolve_var, Resolution};
use crate::telemetry::{self, CacheOutcome, Event, GenObserver};
use javamodel::TypeTable;

/// Where a rule's instance object comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceSource {
    /// A constructor call in the selected path creates it.
    Constructed,
    /// A static factory call in the selected path creates it
    /// (`getInstance`).
    Factory,
    /// A predicate link supplies it from an earlier rule.
    Linked {
        /// Index of the producing rule.
        from_rule: usize,
        /// Carrier in the producing rule.
        from_carrier: Carrier,
    },
}

/// A candidate path with its unresolved (to-hoist) parameters.
type Candidate = (Vec<String>, Vec<(String, String)>);

/// The outcome of path selection for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedPath {
    /// Event labels in call order.
    pub labels: Vec<String>,
    /// `(event_label, rule_var)` pairs that could not be resolved and must
    /// be hoisted into the wrapper signature (normally empty).
    pub hoisted: Vec<(String, String)>,
    /// How the instance object is obtained.
    pub instance: InstanceSource,
}

/// Tuning knobs for path selection; the defaults reproduce the paper, the
/// alternatives exist for the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct SelectionOptions {
    /// Eliminate paths missing template-bound objects (paper filter).
    pub filter_template_bindings: bool,
    /// Eliminate paths that cannot grant required predicates (paper filter).
    pub filter_predicates: bool,
    /// Pick the shortest surviving path (paper tie-break); otherwise the
    /// longest survivor is taken.
    pub prefer_shortest: bool,
    /// Allow hoisting unresolvable parameters instead of failing.
    pub fallback_hoisting: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            filter_template_bindings: true,
            filter_predicates: true,
            prefer_shortest: true,
            fallback_hoisting: true,
        }
    }
}

/// Selects the call sequence for rule `idx`.
///
/// When `cache` is provided, the rule's enumerated paths come from the
/// compiled-ORDER cache (compiled on first sight) instead of a fresh
/// NFA → DFA → enumeration run.
///
/// # Errors
///
/// [`GenError::NoViablePath`] when every enumerated path fails a hard
/// filter, [`GenError::UnresolvedInstance`] when the rule's instance has no
/// producer, [`GenError::UnresolvedParameter`] when hoisting is disabled
/// and a parameter stays unresolved, and [`GenError::StateMachine`] for
/// enumeration failures.
pub fn select_path(
    idx: usize,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
    options: &SelectionOptions,
    cache: Option<&OrderCache>,
) -> Result<SelectedPath, GenError> {
    select_path_for_return(idx, rules, links, table, options, None, cache)
}

/// [`select_path`] with an additional requirement: the path must be able
/// to produce a value assignable to `return_type` (used for the last rule
/// of a chain with an `addReturnObject` nomination).
pub fn select_path_for_return(
    idx: usize,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
    options: &SelectionOptions,
    return_type: Option<&javamodel::ast::JavaType>,
    cache: Option<&OrderCache>,
) -> Result<SelectedPath, GenError> {
    select_path_traced(
        idx,
        rules,
        links,
        table,
        options,
        return_type,
        cache,
        telemetry::noop(),
    )
}

/// [`select_path_for_return`] with telemetry: reports how the rule's
/// compiled-ORDER artefact was obtained ([`Event::OrderCompiled`]) and
/// the outcome of the selection ([`Event::PathSelected`]).
#[allow(clippy::too_many_arguments)]
pub fn select_path_traced(
    idx: usize,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
    options: &SelectionOptions,
    return_type: Option<&javamodel::ast::JavaType>,
    cache: Option<&OrderCache>,
    observer: &dyn GenObserver,
) -> Result<SelectedPath, GenError> {
    let cr = &rules[idx];
    let rule = cr.rule;
    let compiled;
    let enumerated;
    let paths: &[Vec<String>] = match cache {
        Some(c) => {
            let (artefact, lookup) = c.get_or_compile_traced(rule)?;
            compiled = artefact;
            observer.event(&Event::OrderCompiled {
                rule: rule.class_name.as_str(),
                dfa_states: Some(compiled.dfa.state_count()),
                accepting_paths: compiled.paths.len(),
                cache: match lookup {
                    CacheLookup::Hit => CacheOutcome::Hit,
                    CacheLookup::Miss => CacheOutcome::Miss,
                },
            });
            &compiled.paths
        }
        None => {
            enumerated = enumerate(rule, PathLimit::default())?;
            observer.event(&Event::OrderCompiled {
                rule: rule.class_name.as_str(),
                dfa_states: None,
                accepting_paths: enumerated.len(),
                cache: CacheOutcome::Uncached,
            });
            &enumerated
        }
    };
    let enumerated_count = paths.len();

    let mut survivors: Vec<Candidate> = Vec::new();
    let mut with_hoists: Vec<Candidate> = Vec::new();
    let mut last_reason = String::from("ORDER pattern has no accepting path");

    for path in paths {
        if options.filter_template_bindings {
            if let Some(missing) = missing_binding(cr, path) {
                last_reason = format!("path omits template-bound object `{missing}`");
                continue;
            }
            if let Some(expected) = return_type {
                if !can_produce(rule, path, expected, table) {
                    last_reason = format!(
                        "path produces no value assignable to the return object (`{expected}`)"
                    );
                    continue;
                }
            }
        }
        if options.filter_predicates {
            if let Some(reason) = predicate_gap(idx, rule, path, links) {
                last_reason = reason;
                continue;
            }
            if let Some(reason) = incoming_gap(idx, rule, path, links) {
                last_reason = reason;
                continue;
            }
        }
        let hoists = unresolved_params(idx, rule, path, rules, links, table);
        if hoists.is_empty() {
            survivors.push((path.clone(), hoists));
        } else {
            with_hoists.push((path.clone(), hoists));
        }
    }

    let pick = |mut candidates: Vec<Candidate>| {
        // `enumerate` returns shortest-first; refine by parameter count.
        candidates.sort_by_key(|(p, _)| (p.len(), param_count(rule, p)));
        if options.prefer_shortest {
            candidates.into_iter().next()
        } else {
            candidates.into_iter().last()
        }
    };

    let chosen = if let Some(best) = pick(survivors) {
        best
    } else if options.fallback_hoisting {
        // Prefer the path with the fewest hoisted parameters.
        let mut cands = with_hoists;
        cands.sort_by_key(|(p, h)| (h.len(), p.len(), param_count(rule, p)));
        cands
            .into_iter()
            .next()
            .ok_or_else(|| GenError::NoViablePath {
                rule: rule.class_name.to_string(),
                reason: last_reason.clone(),
            })?
    } else if let Some((_, hoists)) = with_hoists.first() {
        let (_, var) = hoists.first().expect("non-empty hoist list");
        return Err(GenError::UnresolvedParameter {
            rule: rule.class_name.to_string(),
            variable: var.clone(),
        });
    } else {
        return Err(GenError::NoViablePath {
            rule: rule.class_name.to_string(),
            reason: last_reason,
        });
    };

    let instance = instance_source(idx, rule, &chosen.0, links, table)?;
    observer.event(&Event::PathSelected {
        rule: rule.class_name.as_str(),
        enumerated: enumerated_count,
        chosen_len: chosen.0.len(),
        hoisted: chosen.1.len(),
    });
    Ok(SelectedPath {
        labels: chosen.0,
        hoisted: chosen.1,
        instance,
    })
}

/// Total number of parameters across the path's events.
fn param_count(rule: &Rule, path: &[String]) -> usize {
    path.iter()
        .filter_map(|l| rule.method_event(l))
        .map(|m| m.params.len())
        .sum()
}

/// A template-bound rule variable that the path never touches, if any.
fn missing_binding(cr: &CollectedRule<'_>, path: &[String]) -> Option<String> {
    for b in &cr.bindings {
        let used = path.iter().any(|label| {
            cr.rule
                .method_event(label)
                .is_some_and(|m| event_uses_var(m, &b.rule_var))
        });
        if !used {
            return Some(b.rule_var.clone());
        }
    }
    None
}

fn event_uses_var(m: &MethodEvent, var: &str) -> bool {
    m.return_var.as_deref() == Some(var)
        || m.params
            .iter()
            .any(|p| matches!(p, crysl::ast::ParamPattern::Var(v) if v == var))
}

/// Checks the outgoing predicate obligations of rule `idx` against `path`:
/// each link consumed by a later rule needs its `after` anchor in the path
/// and its carrier value produced by the path. Returns a reason when the
/// path cannot grant some predicate.
fn predicate_gap(idx: usize, rule: &Rule, path: &[String], links: &[Link]) -> Option<String> {
    for l in links.outgoing(idx) {
        if let Some(after) = &l.from_after {
            let anchors: Vec<&str> = rule
                .resolve_label(after)
                .iter()
                .map(|m| m.label.as_str())
                .collect();
            let hit = path.iter().any(|p| anchors.contains(&p.as_str()));
            if !hit {
                return Some(format!(
                    "path cannot grant `{}` (missing event `{after}`)",
                    l.predicate
                ));
            }
        }
        if let Carrier::Var(v) = &l.from_carrier {
            let produced = path.iter().any(|label| {
                rule.method_event(label)
                    .is_some_and(|m| event_uses_var(m, v))
            });
            if !produced {
                return Some(format!(
                    "path never produces `{v}`, carrier of `{}`",
                    l.predicate
                ));
            }
        }
    }
    None
}

/// Whether a path can produce a value assignable to `expected`: a return
/// variable of one of its events, or the rule's instance.
fn can_produce(
    rule: &Rule,
    path: &[String],
    expected: &javamodel::ast::JavaType,
    table: &TypeTable,
) -> bool {
    let instance_ty = javamodel::ast::JavaType::class(rule.class_name.as_str());
    if table.is_assignable(&instance_ty, expected) {
        return true;
    }
    path.iter()
        .filter_map(|l| rule.method_event(l))
        .filter_map(|m| m.return_var.as_ref())
        .filter_map(|rv| rule.object(rv))
        .any(|o| table.is_assignable(&crate::resolve::java_type_of(&o.ty), expected))
}

/// Checks the *incoming* predicate obligations: "for the class that
/// requires the predicate, CogniCryptGEN picks method sequences that make
/// use of the predicate" (paper §3.3). A path that never touches the
/// linked object cannot be the intended use — e.g. when an
/// `IvParameterSpec` rule is considered, `Cipher` must select the `init`
/// overload that consumes it.
fn incoming_gap(idx: usize, rule: &Rule, path: &[String], links: &[Link]) -> Option<String> {
    for l in links.incoming(idx) {
        if let Carrier::Var(v) = &l.to_carrier {
            let used = path.iter().any(|label| {
                rule.method_event(label)
                    .is_some_and(|m| event_uses_var(m, v))
            });
            if !used {
                return Some(format!(
                    "path ignores `{v}`, which carries linked predicate `{}`",
                    l.predicate
                ));
            }
        }
    }
    None
}

/// Parameters of the path's events that no resolution rule covers.
fn unresolved_params(
    idx: usize,
    rule: &Rule,
    path: &[String],
    rules: &[CollectedRule<'_>],
    links: &[Link],
    table: &TypeTable,
) -> Vec<(String, String)> {
    let mut own_returns: Vec<&str> = Vec::new();
    let mut out = Vec::new();
    for label in path {
        let Some(m) = rule.method_event(label) else {
            continue;
        };
        for p in &m.params {
            if let crysl::ast::ParamPattern::Var(v) = p {
                let r = resolve_var(idx, v, &own_returns, rules, links, table);
                if r == Resolution::Hoist && !out.iter().any(|(_, ov)| ov == v) {
                    out.push((label.clone(), v.clone()));
                }
            }
        }
        if let Some(rv) = &m.return_var {
            own_returns.push(rv);
        }
    }
    out
}

/// Determines where the rule's instance comes from.
fn instance_source(
    idx: usize,
    rule: &Rule,
    path: &[String],
    links: &[Link],
    table: &TypeTable,
) -> Result<InstanceSource, GenError> {
    let simple = rule.class_name.simple_name();
    let class = table
        .class(rule.class_name.as_str())
        .ok_or_else(|| GenError::UnknownClass(rule.class_name.to_string()))?;
    for label in path {
        let Some(m) = rule.method_event(label) else {
            continue;
        };
        if m.is_constructor_of(simple) {
            return Ok(InstanceSource::Constructed);
        }
        let is_factory = class
            .methods
            .iter()
            .any(|sig| sig.name == m.method_name && sig.is_static);
        if is_factory {
            return Ok(InstanceSource::Factory);
        }
    }
    if let Some(link) = links.producer_for(idx, &Carrier::This) {
        return Ok(InstanceSource::Linked {
            from_rule: link.from_rule,
            from_carrier: link.from_carrier.clone(),
        });
    }
    Err(GenError::UnresolvedInstance {
        rule: rule.class_name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use crate::link::link;
    use crate::template::{CrySlCodeGenerator, TemplateMethod};
    use crysl::RuleSet;
    use javamodel::ast::JavaType;
    use javamodel::jca::jca_type_table;

    fn select_for(
        srcs: &[&str],
        chain: crate::template::GeneratorChain,
        method: TemplateMethod,
        idx: usize,
    ) -> Result<SelectedPath, GenError> {
        let mut set = RuleSet::new();
        for s in srcs {
            set.add_source(s).unwrap();
        }
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        let uncached = select_path(
            idx,
            &rules,
            &links,
            &jca_type_table(),
            &SelectionOptions::default(),
            None,
        );
        // The cached path must be observably identical to the cold path.
        let cache = OrderCache::new();
        let cached = select_path(
            idx,
            &rules,
            &links,
            &jca_type_table(),
            &SelectionOptions::default(),
            Some(&cache),
        );
        match (&uncached, &cached) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "cache changed path selection"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("cache changed the outcome: {a:?} vs {b:?}"),
        }
        uncached
    }

    #[test]
    fn pbekeyspec_selects_the_single_paper_path() {
        let path = select_for(
            &[rules_pbe().as_str()],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("javax.crypto.spec.PBEKeySpec")
                .add_parameter("pwd", "password")
                .add_parameter("saltBytes", "salt")
                .build(),
            TemplateMethod::new("go", JavaType::Void)
                .param(JavaType::char_array(), "pwd")
                .param(JavaType::byte_array(), "saltBytes"),
            0,
        )
        .unwrap();
        assert_eq!(path.labels, vec!["c1", "cP"]);
        assert!(path.hoisted.is_empty());
        assert_eq!(path.instance, InstanceSource::Constructed);
    }

    fn rules_pbe() -> String {
        "SPEC javax.crypto.spec.PBEKeySpec\nOBJECTS char[] password; byte[] salt; int iterationCount; int keylength;\nEVENTS c1: PBEKeySpec(password, salt, iterationCount, keylength); cP: clearPassword();\nORDER c1, cP\nCONSTRAINTS iterationCount >= 10000; keylength in {128, 256};".to_owned()
    }

    #[test]
    fn signature_sign_path_chosen_by_binding_filter() {
        // The `signature` return object binding eliminates the verify path.
        let sig_rule = "SPEC java.security.Signature\nOBJECTS java.lang.String alg; byte[] input; byte[] signature; boolean result;\nEVENTS g1: getInstance(alg); s1: signature = sign(); v1: result = verify(signature); u1: update(input);\nORDER g1, ((u1, s1) | (u1, v1))\nCONSTRAINTS alg in {\"SHA256withRSA\"};";
        let path = select_for(
            &[sig_rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("java.security.Signature")
                .add_parameter("data", "input")
                .add_parameter("sig", "signature")
                .build(),
            TemplateMethod::new("go", JavaType::Void)
                .param(JavaType::byte_array(), "data")
                .param(JavaType::byte_array(), "sig"),
            0,
        )
        .unwrap();
        // Both paths mention `signature`; with the binding on `result`
        // instead, only the verify path survives:
        assert!(path.labels.contains(&"s1".to_owned()) || path.labels.contains(&"v1".to_owned()));

        let verify_path = select_for(
            &[sig_rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("java.security.Signature")
                .add_parameter("data", "input")
                .add_parameter("ok", "result")
                .build(),
            TemplateMethod::new("go", JavaType::Void)
                .param(JavaType::byte_array(), "data")
                .param(JavaType::Boolean, "ok"),
            0,
        )
        .unwrap();
        assert_eq!(verify_path.labels, vec!["g1", "u1", "v1"]);
    }

    #[test]
    fn shortest_path_preferred_among_survivors() {
        let rule = "SPEC java.security.MessageDigest\nOBJECTS java.lang.String alg; byte[] input; byte[] output;\nEVENTS g1: getInstance(alg); u1: update(input); d1: output = digest(input);\nORDER g1, u1?, d1\nCONSTRAINTS alg in {\"SHA-256\"};";
        let path = select_for(
            &[rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("java.security.MessageDigest")
                .add_parameter("data", "input")
                .build(),
            TemplateMethod::new("go", JavaType::Void).param(JavaType::byte_array(), "data"),
            0,
        )
        .unwrap();
        assert_eq!(path.labels, vec!["g1", "d1"]);
        assert_eq!(path.instance, InstanceSource::Factory);
    }

    #[test]
    fn unresolvable_param_hoists_when_no_path_is_clean() {
        let rule = "SPEC java.security.MessageDigest\nOBJECTS java.lang.String alg; byte[] input; byte[] output;\nEVENTS g1: getInstance(alg); d1: output = digest(input);\nORDER g1, d1\nCONSTRAINTS alg in {\"SHA-256\"};";
        let path = select_for(
            &[rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("java.security.MessageDigest")
                .build(),
            TemplateMethod::new("go", JavaType::Void),
            0,
        )
        .unwrap();
        assert_eq!(path.hoisted, vec![("d1".to_owned(), "input".to_owned())]);
    }

    #[test]
    fn missing_instance_is_an_error() {
        // Instance method only, no link, class known: no instance source.
        let rule = "SPEC javax.crypto.SecretKey\nOBJECTS byte[] raw;\nEVENTS e: raw = getEncoded();\nORDER e";
        let err = select_for(
            &[rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("javax.crypto.SecretKey")
                .build(),
            TemplateMethod::new("go", JavaType::Void),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, GenError::UnresolvedInstance { .. }));
    }

    #[test]
    fn unknown_class_is_an_error() {
        let rule = "SPEC not.Modelled\nEVENTS e: go();\nORDER e";
        let err = select_for(
            &[rule],
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("not.Modelled")
                .build(),
            TemplateMethod::new("go", JavaType::Void),
            0,
        )
        .unwrap_err();
        assert_eq!(err, GenError::UnknownClass("not.Modelled".into()));
    }
}
