//! Step 5 of the pipeline: assembling Java code (paper Fig. 6, step 5).
//!
//! The assembler walks the selected path of each rule in chain order and
//! emits the corresponding Java statements into the template method:
//! constructor calls, static factory calls and instance calls, with every
//! parameter filled in by the [`crate::resolve`] rules. Predicate-
//! invalidating calls (e.g. `clearPassword()`) are deferred to the end of
//! the method, the nominated return object receives the final value, and
//! unresolvable parameters are hoisted into the wrapper signature.
//! Finally, [`template_usage`] produces the showcase method the paper
//! generates alongside every template.

use std::collections::{HashMap, HashSet};

use crysl::ast::{Literal, MethodEvent, ParamPattern, Rule};
use javamodel::ast::{ClassDecl, Expr, JavaType, MethodDecl, Param, Stmt};
use javamodel::TypeTable;

use crate::collect::CollectedRule;
use crate::error::GenError;
use crate::link::{Carrier, Link};
use crate::pathsel::{InstanceSource, SelectedPath};
use crate::resolve::{java_type_of, resolve_var, Resolution};
use crate::template::TemplateMethod;

/// The code generated for one template method.
#[derive(Debug, Clone)]
pub struct AssembledMethod {
    /// The complete wrapper method (glue + generated + deferred + glue).
    pub method: MethodDecl,
    /// Parameters hoisted into the signature by the fallback rule.
    pub hoisted_params: Vec<Param>,
}

/// Assembles the generated block for `method` from the selected paths.
///
/// # Errors
///
/// Propagates [`GenError`] for producer values the paths failed to
/// materialize (a pipeline invariant violation surfaced as
/// [`GenError::UnresolvedInstance`] / [`GenError::UnresolvedParameter`]).
pub fn assemble(
    method: &TemplateMethod,
    rules: &[CollectedRule<'_>],
    links: &[Link],
    paths: &[SelectedPath],
    return_object: Option<&str>,
    table: &TypeTable,
) -> Result<AssembledMethod, GenError> {
    let mut asm = Assembler {
        rules,
        links,
        table,
        taken: method
            .params
            .iter()
            .map(|p| p.name.clone())
            .chain(declared_locals(&method.pre_statements))
            .collect(),
        values: HashMap::new(),
        stmts: Vec::new(),
        deferred: Vec::new(),
        hoisted: Vec::new(),
    };

    // Template bindings register their variables as available values.
    for (idx, cr) in rules.iter().enumerate() {
        for b in &cr.bindings {
            asm.values.insert(
                (idx, Carrier::Var(b.rule_var.clone())),
                b.template_var.clone(),
            );
        }
    }

    for (idx, path) in paths.iter().enumerate() {
        asm.emit_rule(idx, path)?;
    }

    // Assign the final value to the nominated return object.
    if let Some(ret) = return_object {
        if let Some(last) = paths.len().checked_sub(1) {
            let ret_ty = method.var_type(ret);
            let value = asm.final_value(last, &paths[last], ret_ty)?;
            asm.stmts.push(Stmt::assign(ret, Expr::var(value)));
        }
    }

    let mut body = method.pre_statements.clone();
    body.extend(asm.stmts);
    body.extend(asm.deferred);
    body.extend(method.post_statements.clone());

    let mut m = MethodDecl::new(method.name.clone(), method.return_type.clone());
    m.params = method.params.clone();
    m.params.extend(asm.hoisted.iter().cloned());
    m.body = body;
    Ok(AssembledMethod {
        method: m,
        hoisted_params: asm.hoisted,
    })
}

fn declared_locals(stmts: &[Stmt]) -> Vec<String> {
    stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::Decl { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

struct Assembler<'a> {
    rules: &'a [CollectedRule<'a>],
    links: &'a [Link],
    table: &'a TypeTable,
    taken: HashSet<String>,
    /// (rule index, carrier) → Java local/parameter name holding the value.
    values: HashMap<(usize, Carrier), String>,
    stmts: Vec<Stmt>,
    deferred: Vec<Stmt>,
    hoisted: Vec<Param>,
}

impl Assembler<'_> {
    fn fresh_name(&mut self, base: &str) -> String {
        let mut name = base.to_owned();
        let mut n = 1;
        while self.taken.contains(&name) {
            n += 1;
            name = format!("{base}{n}");
        }
        self.taken.insert(name.clone());
        name
    }

    fn emit_rule(&mut self, idx: usize, path: &SelectedPath) -> Result<(), GenError> {
        let cr = &self.rules[idx];
        let rule = cr.rule;
        let class_name = rule.class_name.as_str();
        let simple = rule.class_name.simple_name();

        // Hoisted parameters become wrapper parameters up front so their
        // names are available to argument emission.
        for (_, var) in &path.hoisted {
            if self.values.contains_key(&(idx, Carrier::Var(var.clone()))) {
                continue;
            }
            let ty = rule
                .object(var)
                .map(|o| java_type_of(&o.ty))
                .unwrap_or(JavaType::class("java.lang.Object"));
            let name = self.fresh_name(var);
            self.hoisted.push(Param {
                ty,
                name: name.clone(),
            });
            self.values.insert((idx, Carrier::Var(var.clone())), name);
        }

        // The instance: linked instances exist already, constructed ones
        // get their name now and their declaration at the producing event.
        let instance_name = match &path.instance {
            InstanceSource::Linked {
                from_rule,
                from_carrier,
            } => self
                .values
                .get(&(*from_rule, from_carrier.clone()))
                .cloned()
                .ok_or(GenError::UnresolvedInstance {
                    rule: class_name.to_owned(),
                })?,
            InstanceSource::Constructed | InstanceSource::Factory => {
                self.fresh_name(&lower_camel(simple))
            }
        };
        self.values
            .insert((idx, Carrier::This), instance_name.clone());

        let invalidating = invalidating_events(rule, &path.labels);
        let mut own_returns: Vec<String> = Vec::new();

        for label in &path.labels {
            let Some(event) = rule.method_event(label) else {
                continue;
            };
            let own_ref: Vec<&str> = own_returns.iter().map(String::as_str).collect();
            let args = self.arg_exprs(idx, event, &own_ref)?;
            let stmt = self.emit_event(idx, event, args, &instance_name, simple, class_name)?;
            if invalidating.contains(label.as_str()) {
                self.deferred.push(stmt);
            } else {
                self.stmts.push(stmt);
            }
            if let Some(rv) = &event.return_var {
                own_returns.push(rv.clone());
            }
        }
        Ok(())
    }

    fn arg_exprs(
        &mut self,
        idx: usize,
        event: &MethodEvent,
        own_returns: &[&str],
    ) -> Result<Vec<Expr>, GenError> {
        let mut args = Vec::with_capacity(event.params.len());
        for (i, p) in event.params.iter().enumerate() {
            let expr = match p {
                ParamPattern::This => Expr::var(
                    self.values
                        .get(&(idx, Carrier::This))
                        .cloned()
                        .unwrap_or_else(|| "this".to_owned()),
                ),
                ParamPattern::Wildcard => {
                    // A wildcard the path selector let through: hoist it.
                    let name = self.fresh_name(&format!("arg{i}"));
                    self.hoisted.push(Param {
                        ty: JavaType::class("java.lang.Object"),
                        name: name.clone(),
                    });
                    Expr::var(name)
                }
                ParamPattern::Var(v) => self.var_expr(idx, v, own_returns)?,
            };
            args.push(expr);
        }
        Ok(args)
    }

    fn var_expr(&mut self, idx: usize, var: &str, own_returns: &[&str]) -> Result<Expr, GenError> {
        // Anything already materialized under this rule wins (covers
        // template bindings, hoisted parameters, and own returns).
        if let Some(name) = self.values.get(&(idx, Carrier::Var(var.to_owned()))) {
            return Ok(Expr::var(name.clone()));
        }
        match resolve_var(idx, var, own_returns, self.rules, self.links, self.table) {
            Resolution::TemplateVar(tv) => Ok(Expr::var(tv)),
            Resolution::Linked {
                from_rule,
                from_carrier,
            } => self
                .values
                .get(&(from_rule, from_carrier))
                .map(|n| Expr::var(n.clone()))
                .ok_or_else(|| GenError::UnresolvedParameter {
                    rule: self.rules[idx].rule.class_name.to_string(),
                    variable: var.to_owned(),
                }),
            Resolution::OwnReturn => Err(GenError::UnresolvedParameter {
                rule: self.rules[idx].rule.class_name.to_string(),
                variable: var.to_owned(),
            }),
            Resolution::This => Ok(Expr::var(
                self.values
                    .get(&(idx, Carrier::This))
                    .cloned()
                    .unwrap_or_else(|| "this".to_owned()),
            )),
            Resolution::Value(lit) => Ok(literal_expr(&lit)),
            Resolution::Hoist => Err(GenError::UnresolvedParameter {
                rule: self.rules[idx].rule.class_name.to_string(),
                variable: var.to_owned(),
            }),
        }
    }

    fn emit_event(
        &mut self,
        idx: usize,
        event: &MethodEvent,
        args: Vec<Expr>,
        instance_name: &str,
        simple: &str,
        class_name: &str,
    ) -> Result<Stmt, GenError> {
        let class_def = self
            .table
            .class(class_name)
            .ok_or_else(|| GenError::UnknownClass(class_name.to_owned()))?;
        let is_static = class_def
            .methods
            .iter()
            .any(|m| m.name == event.method_name && m.is_static);

        if event.is_constructor_of(simple) {
            let expr = Expr::new_object(class_name, args);
            return Ok(Stmt::decl_init(
                JavaType::class(class_name),
                instance_name,
                expr,
            ));
        }
        if is_static {
            let expr = Expr::static_call(class_name, event.method_name.clone(), args);
            // A static factory returning the class itself materializes the
            // instance; other static calls bind their return variable.
            let ret = class_def
                .methods
                .iter()
                .find(|m| m.name == event.method_name && m.is_static)
                .map(|m| m.ret.clone())
                .unwrap_or(JavaType::Void);
            if ret == JavaType::class(class_name) {
                return Ok(Stmt::decl_init(
                    JavaType::class(class_name),
                    instance_name,
                    expr,
                ));
            }
            return Ok(self.bind_return(idx, event, expr, Some(&ret)));
        }
        let ret = class_def
            .methods
            .iter()
            .find(|m| m.name == event.method_name && !m.is_static)
            .map(|m| m.ret.clone());
        let expr = Expr::call(Expr::var(instance_name), event.method_name.clone(), args);
        Ok(self.bind_return(idx, event, expr, ret.as_ref()))
    }

    fn bind_return(
        &mut self,
        idx: usize,
        event: &MethodEvent,
        expr: Expr,
        method_ret: Option<&JavaType>,
    ) -> Stmt {
        match &event.return_var {
            Some(rv) => {
                let ty = self.rules[idx]
                    .rule
                    .object(rv)
                    .map(|o| java_type_of(&o.ty))
                    .unwrap_or(JavaType::class("java.lang.Object"));
                // Insert a downcast when the rule declares a more specific
                // type than the API returns (`(SecretKey) cipher.unwrap(…)`).
                let expr = match method_ret {
                    Some(rt)
                        if *rt != ty && self.table.is_assignable(&ty, rt) && ty.is_reference() =>
                    {
                        Expr::Cast {
                            ty: ty.clone(),
                            expr: Box::new(expr),
                        }
                    }
                    _ => expr,
                };
                let name = self.fresh_name(rv);
                self.values
                    .insert((idx, Carrier::Var(rv.clone())), name.clone());
                Stmt::decl_init(ty, name, expr)
            }
            None => Stmt::Expr(expr),
        }
    }

    /// The value the last rule of the chain produces: the return value of
    /// the last value-producing event, or the rule's instance (paper: "the
    /// last method of that class that needs to be called"). When the
    /// template declares a type for the return object, only candidates
    /// assignable to it qualify — so a `KeyPair`-typed return object
    /// receives the pair itself, not the last accessor's result.
    fn final_value(
        &self,
        idx: usize,
        path: &SelectedPath,
        expected: Option<&JavaType>,
    ) -> Result<String, GenError> {
        let rule = self.rules[idx].rule;
        let invalidating = invalidating_events(rule, &path.labels);
        let fits = |ty: &JavaType| match expected {
            Some(e) => self.table.is_assignable(ty, e),
            None => true,
        };
        for label in path.labels.iter().rev() {
            if invalidating.contains(label.as_str()) {
                continue;
            }
            if let Some(event) = rule.method_event(label) {
                if let Some(rv) = &event.return_var {
                    let rv_ty = rule
                        .object(rv)
                        .map(|o| java_type_of(&o.ty))
                        .unwrap_or(JavaType::class("java.lang.Object"));
                    if !fits(&rv_ty) {
                        continue;
                    }
                    if let Some(name) = self.values.get(&(idx, Carrier::Var(rv.clone()))) {
                        return Ok(name.clone());
                    }
                }
            }
        }
        let instance_ty = JavaType::class(rule.class_name.as_str());
        if fits(&instance_ty) {
            if let Some(name) = self.values.get(&(idx, Carrier::This)) {
                return Ok(name.clone());
            }
        }
        Err(GenError::UnresolvedInstance {
            rule: rule.class_name.to_string(),
        })
    }
}

/// Events whose execution would invalidate a predicate the rule ensures:
/// every event strictly after the `after` anchor of an ensured predicate
/// that the rule also NEGATES. The generator defers them to the end of the
/// method (paper: `clearPassword()` runs right before `return`).
pub fn invalidating_events<'r>(rule: &'r Rule, path: &[String]) -> HashSet<&'r str> {
    let mut out = HashSet::new();
    for ens in &rule.ensures {
        let negated = rule.negates.iter().any(|n| n.name == ens.predicate.name);
        if !negated {
            continue;
        }
        let Some(after) = &ens.after else { continue };
        let anchors: Vec<&str> = rule
            .resolve_label(after)
            .iter()
            .map(|m| m.label.as_str())
            .collect();
        let Some(pos) = path.iter().position(|l| anchors.contains(&l.as_str())) else {
            continue;
        };
        for label in &path[pos + 1..] {
            if let Some(ev) = rule.method_event(label) {
                out.insert(ev.label.as_str());
            }
        }
    }
    out
}

fn literal_expr(lit: &Literal) -> Expr {
    match lit {
        Literal::Int(i) => Expr::int(*i),
        Literal::Str(s) => Expr::str(s.clone()),
        Literal::Bool(b) => Expr::bool(*b),
    }
}

fn lower_camel(simple: &str) -> String {
    let mut chars = simple.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Generates the `templateUsage` showcase class (paper §3.3, end): a new
/// class with one method that instantiates the template class, calls every
/// chain-bearing method, matches arguments to previous return values by
/// type, and pushes up parameters that cannot be matched.
pub fn template_usage(
    template_class: &ClassDecl,
    chain_methods: &[String],
    table: &TypeTable,
) -> ClassDecl {
    let mut usage = MethodDecl::new("templateUsage", JavaType::Void);
    usage.body.push(Stmt::Comment(
        "generated by CogniCryptGEN: shows how to use the generated class".to_owned(),
    ));
    let tc_var = lower_camel(&template_class.name);
    usage.body.push(Stmt::decl_init(
        JavaType::class(template_class.name.clone()),
        tc_var.clone(),
        Expr::new_object(template_class.name.clone(), vec![]),
    ));

    // Values available for argument matching: (name, type), latest last.
    let mut available: Vec<(String, JavaType)> = Vec::new();
    let mut taken: HashSet<String> = HashSet::from([tc_var.clone()]);
    let mut result_counter = 0usize;

    for mname in chain_methods {
        let Some(m) = template_class.find_method(mname) else {
            continue;
        };
        let mut args = Vec::new();
        for p in &m.params {
            // Most recent assignable value wins; otherwise hoist.
            let found = available
                .iter()
                .rev()
                .find(|(_, ty)| table.is_assignable(ty, &p.ty))
                .map(|(n, _)| n.clone());
            match found {
                Some(n) => args.push(Expr::var(n)),
                None => {
                    let mut pname = p.name.clone();
                    let mut n = 1;
                    while taken.contains(&pname) {
                        n += 1;
                        pname = format!("{}{n}", p.name);
                    }
                    taken.insert(pname.clone());
                    usage.params.push(Param {
                        ty: p.ty.clone(),
                        name: pname.clone(),
                    });
                    args.push(Expr::var(pname));
                }
            }
        }
        let call = Expr::call(Expr::var(tc_var.clone()), m.name.clone(), args);
        if m.return_type == JavaType::Void {
            usage.body.push(Stmt::Expr(call));
        } else {
            result_counter += 1;
            let rname = format!("result{result_counter}");
            taken.insert(rname.clone());
            usage
                .body
                .push(Stmt::decl_init(m.return_type.clone(), rname.clone(), call));
            available.push((rname, m.return_type.clone()));
        }
    }

    ClassDecl::new("OutputClass").method(usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    #[test]
    fn lower_camel_matches_paper_names() {
        assert_eq!(lower_camel("PBEKeySpec"), "pBEKeySpec");
        assert_eq!(lower_camel("SecureRandom"), "secureRandom");
        assert_eq!(lower_camel("Cipher"), "cipher");
    }

    #[test]
    fn invalidating_events_defer_clear_password() {
        let rule = parse_rule(
            "SPEC javax.crypto.spec.PBEKeySpec\nOBJECTS char[] password;\nEVENTS c1: PBEKeySpec(password); cP: clearPassword();\nORDER c1, cP\nENSURES speccedKey[this] after c1;\nNEGATES speccedKey[this];",
        )
        .unwrap();
        let inv = invalidating_events(&rule, &["c1".to_owned(), "cP".to_owned()]);
        assert!(inv.contains("cP"));
        assert!(!inv.contains("c1"));
    }

    #[test]
    fn no_negates_means_nothing_deferred() {
        let rule =
            parse_rule("SPEC a.X\nEVENTS a: f(); b: g();\nORDER a, b\nENSURES p[this] after a;")
                .unwrap();
        assert!(invalidating_events(&rule, &["a".to_owned(), "b".to_owned()]).is_empty());
    }
}
