//! Code templates and the fluent configuration API.
//!
//! A template is a regular (modelled-)Java class containing glue code and,
//! per method, at most one call chain on the `CrySLCodeGenerator` fluent
//! API (paper §3.2). The chain names the CrySL rules making up the use
//! case, binds template variables to rule variables with `addParameter`,
//! and nominates a return object with `addReturnObject`.

use javamodel::ast::{JavaType, Param, Stmt};

/// A binding created by `addParameter(templateVar, "ruleVar")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The template-side variable (method parameter or glue-code local).
    pub template_var: String,
    /// The CrySL OBJECTS variable it is bound to.
    pub rule_var: String,
}

/// One `considerCrySLRule` entry of a chain, with its bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEntry {
    /// The class name passed to `considerCrySLRule` (fully qualified or
    /// unambiguous simple name).
    pub rule: String,
    /// Parameter bindings attached to this entry.
    pub bindings: Vec<Binding>,
}

/// A complete fluent-API call chain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GeneratorChain {
    /// Rules in `considerCrySLRule` order — also the generation order.
    pub entries: Vec<ChainEntry>,
    /// Template variable receiving the final generated value, if any.
    pub return_object: Option<String>,
}

/// Builder mirroring the paper's fluent API
/// (`CrySLCodeGenerator.getInstance().considerCrySLRule(..)...`).
///
/// # Example
///
/// ```
/// use cognicrypt_core::template::CrySlCodeGenerator;
///
/// let chain = CrySlCodeGenerator::get_instance()
///     .consider_crysl_rule("java.security.SecureRandom")
///     .add_parameter("salt", "out")
///     .consider_crysl_rule("javax.crypto.spec.PBEKeySpec")
///     .add_parameter("pwd", "password")
///     .add_return_object("encryptionKey")
///     .build();
/// assert_eq!(chain.entries.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrySlCodeGenerator {
    chain: GeneratorChain,
}

impl CrySlCodeGenerator {
    /// Starts a new chain (`CrySLCodeGenerator.getInstance()`).
    pub fn get_instance() -> Self {
        CrySlCodeGenerator::default()
    }

    /// Includes a CrySL rule in the generation.
    #[must_use]
    pub fn consider_crysl_rule(mut self, class_name: impl Into<String>) -> Self {
        self.chain.entries.push(ChainEntry {
            rule: class_name.into(),
            bindings: Vec::new(),
        });
        self
    }

    /// Binds a template variable to a variable of the most recently
    /// considered rule.
    ///
    /// # Panics
    ///
    /// Panics if called before any `consider_crysl_rule` — the fluent API
    /// has no rule to attach the binding to (same contract as the paper's
    /// Java API, where the chain grammar makes this unrepresentable).
    #[must_use]
    pub fn add_parameter(
        mut self,
        template_var: impl Into<String>,
        rule_var: impl Into<String>,
    ) -> Self {
        let entry = self
            .chain
            .entries
            .last_mut()
            .expect("addParameter must follow considerCrySLRule");
        entry.bindings.push(Binding {
            template_var: template_var.into(),
            rule_var: rule_var.into(),
        });
        self
    }

    /// Nominates the template variable that receives the final value.
    #[must_use]
    pub fn add_return_object(mut self, template_var: impl Into<String>) -> Self {
        self.chain.return_object = Some(template_var.into());
        self
    }

    /// Finishes the chain (`generate()` in the Java API; the actual
    /// generation happens when the template is processed).
    pub fn build(self) -> GeneratorChain {
        self.chain
    }
}

/// A template method: wrapper signature, glue code before and after the
/// chain, and the chain itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateMethod {
    /// Method name.
    pub name: String,
    /// Return type of the wrapper.
    pub return_type: JavaType,
    /// Wrapper parameters.
    pub params: Vec<Param>,
    /// Glue statements emitted before the generated block.
    pub pre_statements: Vec<Stmt>,
    /// The fluent-API chain, if this method generates code. Methods
    /// without a chain are plain helpers.
    pub chain: Option<GeneratorChain>,
    /// Glue statements emitted after the generated block.
    pub post_statements: Vec<Stmt>,
}

impl TemplateMethod {
    /// Creates an empty template method.
    pub fn new(name: impl Into<String>, return_type: JavaType) -> Self {
        TemplateMethod {
            name: name.into(),
            return_type,
            params: Vec::new(),
            pre_statements: Vec::new(),
            chain: None,
            post_statements: Vec::new(),
        }
    }

    /// Adds a wrapper parameter (builder style).
    #[must_use]
    pub fn param(mut self, ty: JavaType, name: impl Into<String>) -> Self {
        self.params.push(Param {
            ty,
            name: name.into(),
        });
        self
    }

    /// Appends a glue statement before the generated block.
    #[must_use]
    pub fn pre(mut self, stmt: Stmt) -> Self {
        self.pre_statements.push(stmt);
        self
    }

    /// Sets the fluent-API chain.
    #[must_use]
    pub fn chain(mut self, chain: GeneratorChain) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Appends a glue statement after the generated block.
    #[must_use]
    pub fn post(mut self, stmt: Stmt) -> Self {
        self.post_statements.push(stmt);
        self
    }

    /// The declared type of a template variable visible to the chain:
    /// a method parameter or a glue-code local declared in
    /// `pre_statements`.
    pub fn var_type(&self, name: &str) -> Option<&JavaType> {
        if let Some(p) = self.params.iter().find(|p| p.name == name) {
            return Some(&p.ty);
        }
        self.pre_statements.iter().find_map(|s| match s {
            Stmt::Decl { ty, name: n, .. } if n == name => Some(ty),
            _ => None,
        })
    }
}

/// A code template: the class CogniCryptGEN fills in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Package of the generated class.
    pub package: String,
    /// Name of the generated class.
    pub class_name: String,
    /// Template methods.
    pub methods: Vec<TemplateMethod>,
}

impl Template {
    /// Creates an empty template.
    pub fn new(package: impl Into<String>, class_name: impl Into<String>) -> Self {
        Template {
            package: package.into(),
            class_name: class_name.into(),
            methods: Vec::new(),
        }
    }

    /// Adds a method (builder style).
    #[must_use]
    pub fn method(mut self, m: TemplateMethod) -> Self {
        self.methods.push(m);
        self
    }
}

/// Renders a template as the Java source a crypto expert would write —
/// the artefact whose size Table 2 (RQ4) measures. Glue statements print
/// through the Java pretty-printer; the chain prints as the fluent-API
/// call of the paper's Figure 4.
pub fn render_java(template: &Template) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "package {};", template.package);
    let _ = writeln!(out);
    let _ = writeln!(out, "public class {} {{", template.class_name);
    for (i, m) in template.methods.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        let params: Vec<String> = m
            .params
            .iter()
            .map(|p| format!("{} {}", p.ty.simple_or_qualified(), p.name))
            .collect();
        let _ = writeln!(
            out,
            "    public {} {}({}) {{",
            m.return_type.simple_or_qualified(),
            m.name,
            params.join(", ")
        );
        let mut body = String::new();
        for s in &m.pre_statements {
            javamodel::printer::print_stmt_to(&mut body, s, 2);
        }
        out.push_str(&body);
        if let Some(chain) = &m.chain {
            let _ = writeln!(out, "        CrySLCodeGenerator.getInstance().");
            for (i, e) in chain.entries.iter().enumerate() {
                let _ = write!(out, "            considerCrySLRule(\"{}\")", e.rule);
                for b in &e.bindings {
                    let _ = write!(
                        out,
                        ".\n            addParameter({}, \"{}\")",
                        b.template_var, b.rule_var
                    );
                }
                let terminal = i == chain.entries.len() - 1;
                if terminal {
                    if let Some(r) = &chain.return_object {
                        let _ = write!(out, ".\n            addReturnObject({r})");
                    }
                    let _ = writeln!(out, ".generate();");
                } else {
                    let _ = writeln!(out, ".");
                }
            }
        }
        let mut post = String::new();
        for s in &m.post_statements {
            javamodel::printer::print_stmt_to(&mut post, s, 2);
        }
        out.push_str(&post);
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use javamodel::ast::Expr;

    #[test]
    fn fluent_chain_records_order_and_bindings() {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("A")
            .add_parameter("x", "in")
            .consider_crysl_rule("B")
            .add_return_object("out")
            .build();
        assert_eq!(chain.entries[0].rule, "A");
        assert_eq!(chain.entries[0].bindings[0].template_var, "x");
        assert!(chain.entries[1].bindings.is_empty());
        assert_eq!(chain.return_object.as_deref(), Some("out"));
    }

    #[test]
    #[should_panic(expected = "considerCrySLRule")]
    fn add_parameter_requires_a_rule() {
        let _ = CrySlCodeGenerator::get_instance().add_parameter("x", "y");
    }

    #[test]
    fn render_java_prints_the_paper_figure_4_shape() {
        use javamodel::ast::JavaType;
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("java.security.SecureRandom")
            .add_parameter("salt", "out")
            .consider_crysl_rule("javax.crypto.spec.SecretKeySpec")
            .add_return_object("encryptionKey")
            .build();
        let method = TemplateMethod::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .param(JavaType::char_array(), "pwd")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(javamodel::ast::JavaType::Byte, Expr::int(32)),
            ))
            .chain(chain)
            .post(Stmt::Return(Some(Expr::var("encryptionKey"))));
        let t = Template::new("de.crypto", "TemplateClass").method(method);
        let java = render_java(&t);
        assert!(java.contains("public class TemplateClass {"), "{java}");
        assert!(
            java.contains("public SecretKey generateKey(char[] pwd) {"),
            "{java}"
        );
        assert!(java.contains("CrySLCodeGenerator.getInstance()."), "{java}");
        assert!(
            java.contains("considerCrySLRule(\"java.security.SecureRandom\")"),
            "{java}"
        );
        assert!(java.contains("addParameter(salt, \"out\")"), "{java}");
        assert!(
            java.contains("addReturnObject(encryptionKey).generate();"),
            "{java}"
        );
        assert!(java.contains("return encryptionKey;"), "{java}");
    }

    #[test]
    fn render_java_handles_helper_methods_without_chains() {
        use javamodel::ast::JavaType;
        let t = Template::new("p", "C").method(
            TemplateMethod::new("helper", JavaType::Int).post(Stmt::Return(Some(Expr::int(42)))),
        );
        let java = render_java(&t);
        assert!(java.contains("public int helper() {"));
        assert!(java.contains("return 42;"));
        assert!(!java.contains("CrySLCodeGenerator"));
    }

    #[test]
    fn var_type_finds_params_and_locals() {
        let m = TemplateMethod::new("go", JavaType::Void)
            .param(JavaType::char_array(), "pwd")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(JavaType::Byte, Expr::int(32)),
            ));
        assert_eq!(m.var_type("pwd"), Some(&JavaType::char_array()));
        assert_eq!(m.var_type("salt"), Some(&JavaType::byte_array()));
        assert_eq!(m.var_type("ghost"), None);
    }
}
