//! The abstract domain: allocation-site objects, tracked rule state,
//! constant values and origin types.

use std::collections::{HashMap, HashSet};

use crysl::ast::{Literal, Rule};
use javamodel::ast::JavaType;
use statemachine::Dfa;

/// An abstract value identifier (allocation site / parameter slot).
pub type ValId = usize;

/// What the analyzer knows about a value.
#[derive(Debug, Clone)]
pub struct AbsVal {
    /// Identity (kept for diagnostics).
    #[allow(dead_code)]
    pub id: ValId,
    /// Static type, as precise as inference allows.
    pub ty: JavaType,
    /// Constant value, when known (literals and constant arrays).
    pub constant: Option<Literal>,
    /// Whether this value is a constant array (e.g. a hard-coded salt).
    pub constant_array: bool,
    /// The type this value *originated* from, for `neverTypeOf` checks —
    /// e.g. a `char[]` produced by `String.toCharArray()` originates from
    /// `java.lang.String`.
    pub origin: Option<String>,
    /// Whether the value entered the method as a parameter (producers
    /// outside the analysis scope).
    pub from_parameter: bool,
}

impl AbsVal {
    /// A fresh value of the given type.
    pub fn new(id: ValId, ty: JavaType) -> Self {
        AbsVal {
            id,
            ty,
            constant: None,
            constant_array: false,
            origin: None,
            from_parameter: false,
        }
    }
}

/// The tracked typestate of one ruled object.
#[derive(Debug)]
pub struct TrackedObject<'r> {
    /// The abstract value this object tracks.
    pub val: ValId,
    /// The governing rule.
    pub rule: &'r Rule,
    /// Its usage-pattern DFA.
    pub dfa: Dfa,
    /// Current DFA state; `None` once a typestate error killed tracking.
    pub state: Option<usize>,
    /// Event labels observed so far.
    pub observed: Vec<String>,
    /// rule variable → abstract value bound at an observed event.
    pub bindings: HashMap<String, ValId>,
}

/// The predicate store: `(predicate name, value id)` pairs currently
/// granted.
#[derive(Debug, Default)]
pub struct PredicateStore {
    granted: HashSet<(String, ValId)>,
}

impl PredicateStore {
    /// Grants `pred` on `val`.
    pub fn grant(&mut self, pred: &str, val: ValId) {
        self.granted.insert((pred.to_owned(), val));
    }

    /// Revokes `pred` on `val` (NEGATES).
    pub fn revoke(&mut self, pred: &str, val: ValId) {
        self.granted.remove(&(pred.to_owned(), val));
    }

    /// Whether `pred` currently holds on `val`.
    pub fn holds(&self, pred: &str, val: ValId) -> bool {
        self.granted.contains(&(pred.to_owned(), val))
    }
}
