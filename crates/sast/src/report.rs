//! Misuse reports.

use std::fmt;

/// The misuse classes of CogniCryptSAST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisuseKind {
    /// A call the usage-pattern automaton forbids in the current state.
    TypestateError,
    /// An object that never reached an accepting state of its pattern.
    IncompleteOperation,
    /// A parameter value violating the rule's CONSTRAINTS.
    ConstraintError,
    /// A REQUIRES predicate missing on an argument.
    RequiredPredicateError,
    /// A call to a FORBIDDEN method.
    ForbiddenMethodError,
}

impl fmt::Display for MisuseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MisuseKind::TypestateError => "TypestateError",
            MisuseKind::IncompleteOperation => "IncompleteOperationError",
            MisuseKind::ConstraintError => "ConstraintError",
            MisuseKind::RequiredPredicateError => "RequiredPredicateError",
            MisuseKind::ForbiddenMethodError => "ForbiddenMethodError",
        };
        f.write_str(s)
    }
}

/// One reported misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misuse {
    /// Misuse class.
    pub kind: MisuseKind,
    /// The rule's class (the misused API).
    pub class: String,
    /// The method the misuse occurs in (`Class.method`).
    pub location: String,
    /// Human-readable details.
    pub message: String,
}

impl fmt::Display for Misuse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} in {}: {}",
            self.kind, self.class, self.location, self.message
        )
    }
}
