//! The flow-sensitive misuse analyzer.

use std::collections::{HashMap, HashSet};

use crysl::ast::{Atom, CmpOp, Constraint, Literal, MethodEvent, ParamPattern, PredArg, Rule};
use crysl::RuleSet;
use javamodel::ast::*;
use javamodel::TypeTable;
use statemachine::{Dfa, Nfa};

use crate::absdomain::{AbsVal, PredicateStore, TrackedObject, ValId};
use crate::report::{Misuse, MisuseKind};

/// Analyzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzerOptions {
    /// Treat method parameters as trusted carriers of any required
    /// predicate: their producers lie outside the (intraprocedural)
    /// analysis scope. Matches CogniCryptSAST's behaviour of reporting
    /// required-predicate errors only for values whose producers it can
    /// see. Constant values are never trusted.
    pub trust_parameters: bool,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            trust_parameters: true,
        }
    }
}

/// Analyzes every method of every class in `unit`.
pub fn analyze_unit(
    unit: &CompilationUnit,
    rules: &RuleSet,
    table: &TypeTable,
    options: AnalyzerOptions,
) -> Vec<Misuse> {
    let mut out = Vec::new();
    for class in &unit.classes {
        for method in &class.methods {
            out.extend(analyze_method(unit, class, method, rules, table, options));
        }
    }
    out
}

/// Analyzes a single method.
pub fn analyze_method(
    unit: &CompilationUnit,
    class: &ClassDecl,
    method: &MethodDecl,
    rules: &RuleSet,
    table: &TypeTable,
    options: AnalyzerOptions,
) -> Vec<Misuse> {
    let mut a = Analyzer {
        unit,
        rules,
        table,
        options,
        location: format!("{}.{}", class.name, method.name),
        next_id: 0,
        vals: HashMap::new(),
        env: HashMap::new(),
        tracked: Vec::new(),
        preds: PredicateStore::default(),
        misuses: Vec::new(),
        reported: HashSet::new(),
    };
    for p in &method.params {
        let id = a.fresh(p.ty.clone());
        a.vals.get_mut(&id).expect("just created").from_parameter = true;
        a.env.insert(p.name.clone(), id);
    }
    a.exec_block(&method.body);
    a.finish();
    a.misuses
}

struct Analyzer<'a> {
    unit: &'a CompilationUnit,
    rules: &'a RuleSet,
    table: &'a TypeTable,
    options: AnalyzerOptions,
    location: String,
    next_id: ValId,
    vals: HashMap<ValId, AbsVal>,
    env: HashMap<String, ValId>,
    tracked: Vec<TrackedObject<'a>>,
    preds: PredicateStore,
    misuses: Vec<Misuse>,
    /// Deduplication of reports: (kind, class, detail key).
    reported: HashSet<(MisuseKind, String, String)>,
}

impl<'a> Analyzer<'a> {
    fn fresh(&mut self, ty: JavaType) -> ValId {
        let id = self.next_id;
        self.next_id += 1;
        self.vals.insert(id, AbsVal::new(id, ty));
        id
    }

    fn report(&mut self, kind: MisuseKind, class: &str, key: String, message: String) {
        if self.reported.insert((kind, class.to_owned(), key)) {
            self.misuses.push(Misuse {
                kind,
                class: class.to_owned(),
                location: self.location.clone(),
                message,
            });
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.exec_stmt(s);
        }
    }

    fn exec_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { ty, name, init } => {
                let id = match init {
                    Some(e) => self.eval(e),
                    None => self.fresh(ty.clone()),
                };
                self.env.insert(name.clone(), id);
            }
            Stmt::Assign { target, value } => {
                let id = self.eval(value);
                self.env.insert(target.clone(), id);
            }
            Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                self.eval(e);
            }
            Stmt::Return(None) | Stmt::Comment(_) => {}
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // May-analysis approximation: both branches execute in
                // sequence. Sound enough for the straight-line code the
                // generator emits; documented limitation for user code.
                self.eval(cond);
                self.exec_block(then_body);
                self.exec_block(else_body);
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> ValId {
        match e {
            Expr::Lit(Lit::Int(i)) => {
                let id = self.fresh(JavaType::Int);
                self.vals.get_mut(&id).expect("fresh").constant = Some(Literal::Int(*i));
                id
            }
            Expr::Lit(Lit::Str(s)) => {
                let id = self.fresh(JavaType::string());
                self.vals.get_mut(&id).expect("fresh").constant = Some(Literal::Str(s.clone()));
                id
            }
            Expr::Lit(Lit::Bool(b)) => {
                let id = self.fresh(JavaType::Boolean);
                self.vals.get_mut(&id).expect("fresh").constant = Some(Literal::Bool(*b));
                id
            }
            Expr::Lit(Lit::Null) => self.fresh(JavaType::class("java.lang.Object")),
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .unwrap_or_else(|| self.fresh(JavaType::class("java.lang.Object"))),
            Expr::ArrayLit { elem, elems } => {
                for el in elems {
                    self.eval(el);
                }
                let id = self.fresh(JavaType::Array(Box::new(elem.clone())));
                self.vals.get_mut(&id).expect("fresh").constant_array = true;
                id
            }
            Expr::NewArray { elem, len } => {
                self.eval(len);
                self.fresh(JavaType::Array(Box::new(elem.clone())))
            }
            Expr::StaticField { class, field } => {
                let ty = self
                    .table
                    .resolve_constant(class, field)
                    .map(|c| c.ty.clone())
                    .unwrap_or(JavaType::Int);
                let value = self
                    .table
                    .resolve_constant(class, field)
                    .and_then(|c| c.int_value);
                let id = self.fresh(ty);
                if let Some(v) = value {
                    self.vals.get_mut(&id).expect("fresh").constant = Some(Literal::Int(v));
                }
                id
            }
            Expr::Bin { lhs, rhs, op } => {
                self.eval(lhs);
                self.eval(rhs);
                let ty = match op {
                    BinOp::Add => JavaType::Int,
                    _ => JavaType::Boolean,
                };
                self.fresh(ty)
            }
            Expr::Cast { ty, expr } => {
                let id = self.eval(expr);
                // Keep identity; refine the type.
                self.vals.get_mut(&id).expect("evaluated").ty = ty.clone();
                id
            }
            Expr::New { class, args } => {
                let arg_ids: Vec<ValId> = args.iter().map(|a| self.eval(a)).collect();
                let id = self.fresh(JavaType::class(class.clone()));
                if let Some(rule) = self.rules.by_name(class) {
                    self.track(id, rule);
                    let simple = rule.class_name.simple_name().to_owned();
                    self.event_call(id, &simple, &arg_ids);
                }
                id
            }
            Expr::StaticCall { class, name, args } => {
                let arg_ids: Vec<ValId> = args.iter().map(|a| self.eval(a)).collect();
                let ret_ty = self.return_type_static(class, name, &arg_ids);
                // A static factory of a ruled class begins its typestate.
                if let Some(rule) = self.rules.by_name(class) {
                    if ret_ty.class_name() == Some(class) {
                        let id = self.fresh(ret_ty);
                        self.track(id, rule);
                        self.event_call(id, name, &arg_ids);
                        return id;
                    }
                }
                // Helper results derived from parameters inherit their
                // provenance: the true producer lies outside the analysis
                // scope (e.g. slicing the IV out of transmitted data).
                let derived = arg_ids.iter().any(|a| self.vals[a].from_parameter);
                let id = self.fresh(ret_ty);
                if derived {
                    self.vals.get_mut(&id).expect("fresh").from_parameter = true;
                }
                id
            }
            Expr::Call { recv, name, args } => {
                let recv_id = self.eval(recv);
                let arg_ids: Vec<ValId> = args.iter().map(|a| self.eval(a)).collect();
                let recv_ty = self.vals[&recv_id].ty.clone();

                // String.toCharArray origin tracking for neverTypeOf.
                if recv_ty == JavaType::string() {
                    let ret = self.return_type_instance(&recv_ty, name, &arg_ids);
                    let id = self.fresh(ret);
                    if name == "toCharArray" || name == "getBytes" {
                        self.vals.get_mut(&id).expect("fresh").origin =
                            Some("java.lang.String".to_owned());
                    }
                    return id;
                }

                let ret_ty = self.return_type_instance(&recv_ty, name, &arg_ids);
                let ret_id = if self.tracked_index(recv_id).is_some() {
                    self.event_call(recv_id, name, &arg_ids)
                } else {
                    None
                };
                match ret_id {
                    Some(id) => id,
                    None => {
                        let id = self.fresh(ret_ty.clone());
                        // A ruled class flowing out of a call starts its
                        // own typestate (e.g. generateSecret → SecretKey).
                        if let Some(cls) = ret_ty.class_name() {
                            if let Some(rule) = self.rules.by_name(cls) {
                                if self.tracked_index(recv_id).is_none()
                                    || rule.class_name.as_str()
                                        != self.vals[&recv_id].ty.class_name().unwrap_or("")
                                {
                                    self.track(id, rule);
                                }
                            }
                        }
                        id
                    }
                }
            }
        }
    }

    fn return_type_static(&self, class: &str, name: &str, args: &[ValId]) -> JavaType {
        let tys: Vec<JavaType> = args.iter().map(|a| self.vals[a].ty.clone()).collect();
        self.table
            .resolve_method(class, name, true, &tys)
            .map(|m| m.ret.clone())
            .unwrap_or(JavaType::class("java.lang.Object"))
    }

    fn return_type_instance(&self, recv: &JavaType, name: &str, args: &[ValId]) -> JavaType {
        let Some(class) = recv.class_name() else {
            return JavaType::class("java.lang.Object");
        };
        if let Some(local) = self.unit.find_class(class) {
            return local
                .find_method(name)
                .map(|m| m.return_type.clone())
                .unwrap_or(JavaType::class("java.lang.Object"));
        }
        let tys: Vec<JavaType> = args.iter().map(|a| self.vals[a].ty.clone()).collect();
        self.table
            .resolve_method(class, name, false, &tys)
            .map(|m| m.ret.clone())
            .unwrap_or(JavaType::class("java.lang.Object"))
    }

    fn track(&mut self, val: ValId, rule: &'a Rule) {
        let Ok(nfa) = Nfa::from_rule(rule) else {
            return;
        };
        let dfa = Dfa::from_nfa(&nfa);
        self.tracked.push(TrackedObject {
            val,
            rule,
            state: Some(dfa.start()),
            dfa,
            observed: Vec::new(),
            bindings: HashMap::new(),
        });
    }

    fn tracked_index(&self, val: ValId) -> Option<usize> {
        self.tracked.iter().position(|t| t.val == val)
    }

    /// Processes a call as a CrySL event on a tracked object. Returns the
    /// abstract value produced for the event's return variable, if the
    /// event binds one.
    fn event_call(&mut self, obj_val: ValId, name: &str, args: &[ValId]) -> Option<ValId> {
        let ti = self.tracked_index(obj_val)?;
        let rule = self.tracked[ti].rule;
        let class = rule.class_name.to_string();

        // FORBIDDEN check.
        for f in &rule.forbidden {
            if f.method_name == name && f.param_types.len() == args.len() {
                self.report(
                    MisuseKind::ForbiddenMethodError,
                    &class,
                    format!("forbidden:{name}/{}", args.len()),
                    format!("call to forbidden method `{name}`"),
                );
            }
        }

        // Find the candidate events for this call.
        let candidates: Vec<MethodEvent> = rule
            .events
            .iter()
            .filter_map(|e| match e {
                crysl::ast::EventDecl::Method(m)
                    if m.method_name == name && m.params.len() == args.len() =>
                {
                    Some(m.clone())
                }
                _ => None,
            })
            .collect();
        if candidates.is_empty() {
            return None; // not an event of the rule — ignored
        }

        // Typestate step: prefer a candidate the DFA accepts.
        let state = self.tracked[ti].state;
        let mut chosen: Option<(MethodEvent, Option<usize>)> = None;
        if let Some(st) = state {
            for c in &candidates {
                if let Some(next) = self.tracked[ti].dfa.step(st, &c.label) {
                    chosen = Some((c.clone(), Some(next)));
                    break;
                }
            }
        }
        let (event, next_state) = match chosen {
            Some(x) => x,
            None => {
                if state.is_some() {
                    self.report(
                        MisuseKind::TypestateError,
                        &class,
                        format!("typestate:{name}"),
                        format!("call to `{name}` not allowed by the usage pattern here"),
                    );
                    self.tracked[ti].state = None;
                }
                (candidates[0].clone(), None)
            }
        };

        // Bind event parameters and returns.
        let mut ret_id = None;
        for (p, a) in event.params.iter().zip(args) {
            if let ParamPattern::Var(v) = p {
                self.tracked[ti].bindings.insert(v.clone(), *a);
            }
        }
        if let Some(rv) = &event.return_var {
            let ty = rule
                .object(rv)
                .map(|o| crysl_type(&o.ty))
                .unwrap_or(JavaType::class("java.lang.Object"));
            let id = self.fresh(ty.clone());
            // Returned ruled objects begin their own typestate.
            if let Some(cls) = ty.class_name() {
                if let Some(r2) = self.rules.by_name(cls) {
                    self.track(id, r2);
                }
            }
            self.tracked[ti].bindings.insert(rv.clone(), id);
            ret_id = Some(id);
        }

        if let Some(next) = next_state {
            self.tracked[ti].state = Some(next);
        }
        self.tracked[ti].observed.push(event.label.clone());

        self.check_requires(ti, &event, args);
        self.check_constraints(ti);
        self.update_predicates(ti, &event);
        ret_id
    }

    /// REQUIRES checks for variables bound at this event (and `this` at
    /// the object's first event).
    fn check_requires(&mut self, ti: usize, event: &MethodEvent, args: &[ValId]) {
        let rule = self.tracked[ti].rule;
        let class = rule.class_name.to_string();
        let obj_val = self.tracked[ti].val;
        let first_event = self.tracked[ti].observed.len() == 1;
        let mut to_check: Vec<(String, ValId, String)> = Vec::new();
        for req in &rule.requires {
            match req.args.first() {
                Some(PredArg::Var(v)) => {
                    let bound_here = event
                        .params
                        .iter()
                        .zip(args)
                        .any(|(p, _)| matches!(p, ParamPattern::Var(pv) if pv == v));
                    if bound_here {
                        if let Some(&val) = self.tracked[ti].bindings.get(v) {
                            to_check.push((req.name.clone(), val, v.clone()));
                        }
                    }
                }
                Some(PredArg::This) if first_event => {
                    to_check.push((req.name.clone(), obj_val, "this".to_owned()));
                }
                _ => {}
            }
        }
        for (pred, val, var) in to_check {
            let ok = self.preds.holds(&pred, val)
                || (self.options.trust_parameters
                    && self.vals[&val].from_parameter
                    && !self.vals[&val].constant_array);
            if !ok {
                self.report(
                    MisuseKind::RequiredPredicateError,
                    &class,
                    format!("requires:{pred}:{var}"),
                    format!("`{var}` lacks required predicate `{pred}`"),
                );
            }
        }
    }

    /// Evaluates every constraint whose variables are all bound.
    fn check_constraints(&mut self, ti: usize) {
        let rule = self.tracked[ti].rule;
        let class = rule.class_name.to_string();
        let constraints = rule.constraints.clone();
        for (i, c) in constraints.iter().enumerate() {
            let all_bound = c
                .variables()
                .iter()
                .all(|v| self.tracked[ti].bindings.contains_key(*v));
            if !all_bound {
                continue;
            }
            if self.eval_constraint(ti, c) == Some(false) {
                self.report(
                    MisuseKind::ConstraintError,
                    &class,
                    format!("constraint:{i}"),
                    format!(
                        "constraint violated: {}",
                        crysl::printer::print_constraint(c)
                    ),
                );
            }
        }
    }

    /// Tri-state constraint evaluation: `None` = unknown.
    fn eval_constraint(&self, ti: usize, c: &Constraint) -> Option<bool> {
        let bindings = &self.tracked[ti].bindings;
        let lit_of = |var: &str| -> Option<Literal> {
            bindings
                .get(var)
                .and_then(|id| self.vals.get(id))
                .and_then(|v| v.constant.clone())
        };
        match c {
            Constraint::In { var, choices } => {
                let v = lit_of(var)?;
                Some(choices.contains(&v))
            }
            Constraint::Cmp { left, op, right } => {
                let lv = self.atom_value(ti, left)?;
                let rv = self.atom_value(ti, right)?;
                match (lv, rv) {
                    (Literal::Int(a), Literal::Int(b)) => Some(match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                    }),
                    (Literal::Str(a), Literal::Str(b)) => match op {
                        CmpOp::Eq => Some(a == b),
                        CmpOp::Ne => Some(a != b),
                        _ => None,
                    },
                    _ => None,
                }
            }
            Constraint::InstanceOf { var, java_type } => {
                let id = bindings.get(var)?;
                let ty = &self.vals.get(id)?.ty;
                let cls = ty.class_name()?;
                Some(self.table.is_subclass_of(cls, java_type.as_str()))
            }
            Constraint::NeverTypeOf { var, java_type } => {
                let id = bindings.get(var)?;
                let v = self.vals.get(id)?;
                match &v.origin {
                    Some(origin) => Some(origin != java_type.as_str()),
                    None => Some(true), // no String origin observed
                }
            }
            Constraint::Implies {
                antecedent,
                consequent,
            } => match self.eval_constraint(ti, antecedent) {
                Some(true) => self.eval_constraint(ti, consequent),
                Some(false) => Some(true),
                None => None,
            },
            Constraint::And(a, b) => {
                match (self.eval_constraint(ti, a), self.eval_constraint(ti, b)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }
            }
            Constraint::Or(a, b) => {
                match (self.eval_constraint(ti, a), self.eval_constraint(ti, b)) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }
            }
        }
    }

    fn atom_value(&self, ti: usize, a: &Atom) -> Option<Literal> {
        match a {
            Atom::Lit(l) => Some(l.clone()),
            Atom::Var(v) => self.tracked[ti]
                .bindings
                .get(v)
                .and_then(|id| self.vals.get(id))
                .and_then(|val| val.constant.clone()),
        }
    }

    /// Grants and revokes predicates after an event.
    fn update_predicates(&mut self, ti: usize, event: &MethodEvent) {
        let rule = self.tracked[ti].rule;
        let obj_val = self.tracked[ti].val;
        let accepting = self.tracked[ti]
            .state
            .is_some_and(|s| self.tracked[ti].dfa.is_accepting(s));

        let carrier_val = |t: &TrackedObject<'_>, arg: &PredArg| -> Option<ValId> {
            match arg {
                PredArg::This => Some(t.val),
                PredArg::Var(v) => t.bindings.get(v).copied(),
                _ => None,
            }
        };

        let mut grants: Vec<(String, ValId)> = Vec::new();
        let mut revokes: Vec<(String, ValId)> = Vec::new();
        {
            let t = &self.tracked[ti];
            for ens in &rule.ensures {
                let Some(carrier) = ens.predicate.args.first() else {
                    continue;
                };
                let Some(val) = carrier_val(t, carrier) else {
                    continue;
                };
                match &ens.after {
                    Some(anchor) => {
                        let anchors: Vec<&str> = rule
                            .resolve_label(anchor)
                            .iter()
                            .map(|m| m.label.as_str())
                            .collect();
                        if anchors.contains(&event.label.as_str()) {
                            grants.push((ens.predicate.name.clone(), val));
                        }
                        // NEGATES: a later event revokes the predicate.
                        let negated = rule.negates.iter().any(|n| n.name == ens.predicate.name);
                        if negated
                            && !anchors.contains(&event.label.as_str())
                            && t.observed.iter().any(|o| anchors.contains(&o.as_str()))
                        {
                            revokes.push((ens.predicate.name.clone(), val));
                        }
                    }
                    None => {
                        if accepting {
                            grants.push((ens.predicate.name.clone(), val));
                        }
                    }
                }
            }
        }
        let _ = obj_val;
        for (p, v) in grants {
            self.preds.grant(&p, v);
        }
        for (p, v) in revokes {
            self.preds.revoke(&p, v);
        }
    }

    /// End-of-method checks: incomplete operations.
    fn finish(&mut self) {
        let pending: Vec<(String, String)> = self
            .tracked
            .iter()
            .filter_map(|t| match t.state {
                Some(s) if !t.dfa.is_accepting(s) => Some((
                    t.rule.class_name.to_string(),
                    format!(
                        "object never completed its usage pattern (observed {:?})",
                        t.observed
                    ),
                )),
                _ => None,
            })
            .collect();
        for (class, msg) in pending {
            self.report(
                MisuseKind::IncompleteOperation,
                &class,
                "incomplete".to_owned(),
                msg,
            );
        }
    }
}

fn crysl_type(t: &crysl::ast::TypeRef) -> JavaType {
    let base = match t.name.as_str() {
        "int" => JavaType::Int,
        "long" => JavaType::Long,
        "boolean" => JavaType::Boolean,
        "char" => JavaType::Char,
        "byte" => JavaType::Byte,
        other => JavaType::Class(other.to_owned()),
    };
    (0..t.array_dims).fold(base, |acc, _| JavaType::Array(Box::new(acc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use javamodel::jca::jca_type_table;

    fn analyze(m: MethodDecl) -> Vec<Misuse> {
        let unit = CompilationUnit::new("p").class(ClassDecl::new("C").method(m));
        analyze_unit(
            &unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            AnalyzerOptions::default(),
        )
    }

    /// The paper's Figure 1: three misuses.
    fn figure1_method() -> MethodDecl {
        MethodDecl::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .param(JavaType::string(), "pwd")
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::ArrayLit {
                    elem: JavaType::Byte,
                    elems: vec![15, -12, 94, 0, 12, 3, -65, 73, -1, -84, -35]
                        .into_iter()
                        .map(Expr::int)
                        .collect(),
                },
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.spec.PBEKeySpec"),
                "spec",
                Expr::new_object(
                    "javax.crypto.spec.PBEKeySpec",
                    vec![
                        Expr::call(Expr::var("pwd"), "toCharArray", vec![]),
                        Expr::var("salt"),
                        Expr::int(100000),
                        Expr::int(256),
                    ],
                ),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKeyFactory"),
                "skf",
                Expr::static_call(
                    "javax.crypto.SecretKeyFactory",
                    "getInstance",
                    vec![Expr::str("PBKDF2WithHmacSHA256")],
                ),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKey"),
                "secretKey",
                Expr::call(Expr::var("skf"), "generateSecret", vec![Expr::var("spec")]),
            ))
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "keyMaterial",
                Expr::call(Expr::var("secretKey"), "getEncoded", vec![]),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.spec.SecretKeySpec"),
                "cipherKey",
                Expr::new_object(
                    "javax.crypto.spec.SecretKeySpec",
                    vec![Expr::var("keyMaterial"), Expr::str("AES")],
                ),
            ))
            .statement(Stmt::Return(Some(Expr::var("cipherKey"))))
    }

    #[test]
    fn figure_1_has_exactly_the_three_paper_misuses() {
        let misuses = analyze(figure1_method());
        let kinds: Vec<MisuseKind> = misuses.iter().map(|m| m.kind).collect();
        assert!(
            kinds.contains(&MisuseKind::RequiredPredicateError),
            "constant salt must be flagged: {misuses:?}"
        );
        assert!(
            kinds.contains(&MisuseKind::ConstraintError),
            "String-sourced password must be flagged: {misuses:?}"
        );
        assert!(
            kinds.contains(&MisuseKind::IncompleteOperation),
            "missing clearPassword must be flagged: {misuses:?}"
        );
        assert_eq!(misuses.len(), 3, "exactly three misuses: {misuses:?}");
    }

    #[test]
    fn low_iteration_count_is_a_constraint_error() {
        let m = MethodDecl::new("f", JavaType::Void)
            .param(JavaType::char_array(), "pwd")
            .param(JavaType::byte_array(), "salt")
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.spec.PBEKeySpec"),
                "spec",
                Expr::new_object(
                    "javax.crypto.spec.PBEKeySpec",
                    vec![
                        Expr::var("pwd"),
                        Expr::var("salt"),
                        Expr::int(500), // far below 10,000
                        Expr::int(128),
                    ],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("spec"),
                "clearPassword",
                vec![],
            )));
        let misuses = analyze(m);
        assert_eq!(misuses.len(), 1, "{misuses:?}");
        assert_eq!(misuses[0].kind, MisuseKind::ConstraintError);
    }

    #[test]
    fn wrong_call_order_is_a_typestate_error() {
        // clearPassword before any constructor event cannot happen (it is
        // the ctor that creates the object), so test with Cipher: doFinal
        // before init.
        let m = MethodDecl::new("f", JavaType::Void)
            .param(JavaType::byte_array(), "data")
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.Cipher"),
                "c",
                Expr::static_call(
                    "javax.crypto.Cipher",
                    "getInstance",
                    vec![Expr::str("AES/CBC/PKCS5Padding")],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("c"),
                "doFinal",
                vec![Expr::var("data")],
            )));
        let misuses = analyze(m);
        assert!(
            misuses.iter().any(|m| m.kind == MisuseKind::TypestateError),
            "{misuses:?}"
        );
    }

    #[test]
    fn secure_pbe_code_is_clean() {
        // The shape CogniCryptGEN generates: randomized salt, char[]
        // password parameter, clearPassword at the end.
        let m = MethodDecl::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .param(JavaType::char_array(), "pwd")
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(JavaType::Byte, Expr::int(32)),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("java.security.SecureRandom"),
                "sr",
                Expr::static_call(
                    "java.security.SecureRandom",
                    "getInstance",
                    vec![Expr::str("SHA1PRNG")],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("sr"),
                "nextBytes",
                vec![Expr::var("salt")],
            )))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.spec.PBEKeySpec"),
                "spec",
                Expr::new_object(
                    "javax.crypto.spec.PBEKeySpec",
                    vec![
                        Expr::var("pwd"),
                        Expr::var("salt"),
                        Expr::int(10000),
                        Expr::int(128),
                    ],
                ),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKeyFactory"),
                "skf",
                Expr::static_call(
                    "javax.crypto.SecretKeyFactory",
                    "getInstance",
                    vec![Expr::str("PBKDF2WithHmacSHA256")],
                ),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKey"),
                "key",
                Expr::call(Expr::var("skf"), "generateSecret", vec![Expr::var("spec")]),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("spec"),
                "clearPassword",
                vec![],
            )))
            .statement(Stmt::Return(Some(Expr::var("key"))));
        let misuses = analyze(m);
        assert!(misuses.is_empty(), "{misuses:?}");
    }

    #[test]
    fn disallowed_algorithm_is_a_constraint_error() {
        let m = MethodDecl::new("f", JavaType::byte_array())
            .param(JavaType::byte_array(), "data")
            .statement(Stmt::decl_init(
                JavaType::class("java.security.MessageDigest"),
                "md",
                Expr::static_call(
                    "java.security.MessageDigest",
                    "getInstance",
                    vec![Expr::str("SHA-1")],
                ),
            ))
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("md"),
                "digest",
                vec![Expr::var("data")],
            ))));
        let misuses = analyze(m);
        assert!(
            misuses
                .iter()
                .any(|mi| mi.kind == MisuseKind::ConstraintError),
            "{misuses:?}"
        );
    }
}
