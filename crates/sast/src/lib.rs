//! A CrySL-driven static misuse analyzer — the CogniCryptSAST analogue.
//!
//! The paper validates CogniCryptGEN's output by running CogniCryptSAST
//! over it (RQ1): generated code must contain no misuses. This crate
//! implements the same five misuse classes over our Java-subset AST:
//!
//! * **Typestate errors** — a call the rule's `ORDER` automaton forbids in
//!   the object's current state,
//! * **Incomplete operations** — an object that never reaches an accepting
//!   state (e.g. `clearPassword()` missing),
//! * **Constraint errors** — constant arguments violating `CONSTRAINTS`
//!   (low iteration counts, disallowed algorithms, `neverTypeOf` String
//!   passwords),
//! * **Required-predicate errors** — arguments lacking a predicate another
//!   rule must have ensured (constant salts that were never randomized),
//! * **Forbidden-method errors** — calls listed under `FORBIDDEN`.
//!
//! The analysis is intraprocedural and flow-sensitive, tracking one
//! abstract object per allocation site — sufficient for generated code and
//! for the paper's Figure 1 motivating example, which exhibits exactly
//! three misuses that this analyzer reports.

mod absdomain;
mod analyzer;
mod report;

pub use analyzer::{analyze_method, analyze_unit, AnalyzerOptions};
pub use report::{Misuse, MisuseKind};
