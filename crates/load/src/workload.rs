//! The seeded workload model: which operations a load run issues, in
//! what proportions, in what order.
//!
//! A schedule is a pure function of a [`WorkloadSpec`] — same spec,
//! same seed, same `Vec<Op>`, byte for byte. Everything downstream that
//! the replay-determinism gate compares (per-class counts, outcome
//! tallies, the schedule fingerprint) follows from that purity; only
//! wall-clock latencies differ between two runs of one spec.
//!
//! The shape mimics a production day, not a microbenchmark:
//!
//! * **zipf-skewed well-formed traffic** — real request streams
//!   concentrate on a few hot use cases. Hotness is sampled from a
//!   zipf(s) distribution over the shipped use cases, so caches are
//!   exercised with realistic hit skew instead of a uniform sweep;
//! * **hostile traffic interleaved** — malformed selectors (synthetic
//!   and drawn from the fuzz reproducer corpus), malformed CrySL rule
//!   sources, and transport-level garbage, mixed into the same stream
//!   the well-formed requests ride on;
//! * **mid-run rule-pack reloads** — every `reload_every` operations,
//!   so the engine-swap path runs under concurrent load;
//! * **periodic snapshots** — `/loadz` samples that double as a probe
//!   that the observability surface itself stays cheap and available
//!   under pressure.

use devharness::rng::{RandomSource, Xoshiro256};

/// One operation class. The numeric discriminants index the
/// deterministic per-class count table in the load report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Generate one shipped use case; the response must be
    /// byte-identical to the one-shot engine's output.
    WellFormed {
        /// Table-1 use-case id.
        uc: u8,
    },
    /// A selector that matches no use case — synthetic garbage or a
    /// line drawn from a fuzz-corpus reproducer. Must yield a typed
    /// error, never a panic.
    HostileSelector {
        /// The selector text (single line, bounded length).
        payload: String,
    },
    /// A CrySL source thrown at the front-end (library target) or used
    /// as an oversized/garbage request body (transport targets). Must
    /// parse cleanly or fail with a typed error — never panic.
    HostileRule {
        /// The full source text.
        source: String,
    },
    /// Transport-level garbage: raw bytes, bad routes, bad methods,
    /// header bombs, over-long lines. The variant selects the attack.
    HostileProtocol {
        /// Attack selector, interpreted per target.
        variant: u8,
    },
    /// Hot-reload the rule pack mid-run.
    Reload,
    /// Sample the load snapshot (`/loadz` or equivalent).
    Snapshot,
}

impl OpKind {
    /// Stable class name used in report keys and metric names.
    pub fn class(&self) -> &'static str {
        match self {
            OpKind::WellFormed { .. } => "wellformed",
            OpKind::HostileSelector { .. } => "hostile_selector",
            OpKind::HostileRule { .. } => "hostile_rule",
            OpKind::HostileProtocol { .. } => "hostile_protocol",
            OpKind::Reload => "reload",
            OpKind::Snapshot => "snapshot",
        }
    }

    /// All class names, in report order.
    pub const CLASSES: [&'static str; 6] = [
        "wellformed",
        "hostile_selector",
        "hostile_rule",
        "hostile_protocol",
        "reload",
        "snapshot",
    ];
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Position in the schedule (also the pacing index).
    pub index: u64,
    /// What to do.
    pub kind: OpKind,
}

/// Everything that determines a schedule. Two equal specs produce
/// equal schedules.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// PRNG seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Operations in the schedule.
    pub budget: u64,
    /// Hostile operations per 1000 (selector + rule + protocol,
    /// split evenly-ish by the sampler). 0 = clean traffic only.
    pub hostile_per_mille: u32,
    /// A reload every this many operations (0 = never).
    pub reload_every: u64,
    /// A snapshot every this many operations (0 = never).
    pub snapshot_every: u64,
    /// Zipf skew exponent for use-case popularity (1.0 ≈ classic web
    /// skew; 0.0 = uniform).
    pub zipf_s: f64,
    /// Use-case ids to draw from, hottest first.
    pub use_case_ids: Vec<u8>,
    /// Fuzz-corpus reproducer sources for hostile traffic (may be
    /// empty; synthetic hostiles are always available).
    pub corpus: Vec<String>,
}

impl WorkloadSpec {
    /// The default mix over the given use cases: 25 % hostile, a
    /// reload every 97 ops, a snapshot every 61, classic zipf skew.
    pub fn standard(seed: u64, budget: u64, use_case_ids: Vec<u8>, corpus: Vec<String>) -> Self {
        WorkloadSpec {
            seed,
            budget,
            hostile_per_mille: 250,
            reload_every: 97,
            snapshot_every: 61,
            zipf_s: 1.0,
            use_case_ids,
            corpus,
        }
    }

    /// [`standard`](Self::standard) over the full shipped catalogue —
    /// the id universe is derived from [`usecases::all_use_cases`], not
    /// hardcoded, so workloads scale with the catalogue.
    pub fn standard_catalogue(seed: u64, budget: u64, corpus: Vec<String>) -> Self {
        Self::standard(seed, budget, catalogue_ids(), corpus)
    }

    /// The clean-baseline variant of this spec: well-formed traffic
    /// only (same seed, same skew), used to measure the p99 that the
    /// mixed run is bounded against. Reloads and snapshots are
    /// excluded so the baseline is pure request latency.
    pub fn clean_baseline(&self, budget: u64) -> WorkloadSpec {
        WorkloadSpec {
            budget,
            hostile_per_mille: 0,
            reload_every: 0,
            snapshot_every: 0,
            ..self.clone()
        }
    }
}

/// Every shipped use-case id in catalogue order (hottest first under
/// the zipf skew).
pub fn catalogue_ids() -> Vec<u8> {
    usecases::all_use_cases().iter().map(|u| u.id).collect()
}

/// The use-case ids a named catalogue rule pack declares, for workloads
/// that exercise a subset pack (`aead@v1`, `token@v1`, …) instead of the
/// full catalogue. `None` when the pack is unknown.
pub fn pack_ids(name: &str, version: Option<u32>) -> Option<Vec<u8>> {
    rules::catalog_pack(name, version).map(|p| p.use_cases.to_vec())
}

/// A seeded zipf(s) sampler over ranks `0..n`: rank `k` has weight
/// `1/(k+1)^s`. With `s = 0` it degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl RandomSource) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.next_f64() * total;
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// Synthetic hostile selectors that every daemon must refuse with a
/// typed error: traversal attempts, encodings, control bytes, unicode,
/// and plain junk.
const SYNTHETIC_SELECTORS: [&str; 6] = [
    "definitely-not-a-case",
    "../../etc/passwd",
    "%2e%2e%2f%2e%2e%2fsecret",
    "uc\u{0}1\u{7f}",
    "\u{202e}esac-esu",
    "0",
];

/// Synthetic broken CrySL sources for when no corpus is supplied:
/// unbalanced sections, undeclared objects, deep nesting.
fn synthetic_rule(rng: &mut impl RandomSource) -> String {
    match rng.next_below(4) {
        0 => "OBJECTS int x;".to_owned(),
        1 => "SPEC a.B\nCONSTRAINTS ghost >= 1;".to_owned(),
        2 => format!(
            "SPEC a.B\nEVENTS e: f();\nORDER {}e{}",
            "(".repeat(80),
            ")".repeat(80)
        ),
        _ => format!(
            "SPEC a.B\nEVENTS e: f(undeclared);\nORDER e // {}",
            "x".repeat(256)
        ),
    }
}

/// Reduces a corpus source to a single bounded line usable as a
/// selector without breaking line-oriented transports.
fn corpus_selector(source: &str) -> String {
    let line: String = source
        .chars()
        .filter(|c| !c.is_control())
        .take(160)
        .collect();
    if line.trim().is_empty() {
        SYNTHETIC_SELECTORS[0].to_owned()
    } else {
        line
    }
}

/// Builds the deterministic operation schedule for `spec`.
pub fn build_schedule(spec: &WorkloadSpec) -> Vec<Op> {
    assert!(
        !spec.use_case_ids.is_empty(),
        "workload needs at least one use case"
    );
    let mut rng = Xoshiro256::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.use_case_ids.len(), spec.zipf_s);
    let mut ops = Vec::with_capacity(spec.budget as usize);
    for index in 0..spec.budget {
        if spec.reload_every > 0 && index > 0 && index % spec.reload_every == 0 {
            ops.push(Op {
                index,
                kind: OpKind::Reload,
            });
            continue;
        }
        if spec.snapshot_every > 0 && index > 0 && index % spec.snapshot_every == 0 {
            ops.push(Op {
                index,
                kind: OpKind::Snapshot,
            });
            continue;
        }
        let hostile = rng.next_below(1000) < u64::from(spec.hostile_per_mille);
        let kind = if hostile {
            match rng.next_below(3) {
                0 => {
                    let payload = if !spec.corpus.is_empty() && rng.next_bool() {
                        let i = rng.next_below(spec.corpus.len() as u64) as usize;
                        corpus_selector(&spec.corpus[i])
                    } else {
                        let i = rng.next_below(SYNTHETIC_SELECTORS.len() as u64) as usize;
                        SYNTHETIC_SELECTORS[i].to_owned()
                    };
                    OpKind::HostileSelector { payload }
                }
                1 => {
                    let source = if spec.corpus.is_empty() {
                        synthetic_rule(&mut rng)
                    } else {
                        let i = rng.next_below(spec.corpus.len() as u64) as usize;
                        spec.corpus[i].clone()
                    };
                    OpKind::HostileRule { source }
                }
                _ => OpKind::HostileProtocol {
                    variant: rng.next_below(4) as u8,
                },
            }
        } else {
            let rank = zipf.sample(&mut rng);
            OpKind::WellFormed {
                uc: spec.use_case_ids[rank],
            }
        };
        ops.push(Op { index, kind });
    }
    ops
}

/// FNV-1a fingerprint of a schedule's structure (class + payload of
/// every op, in order). Two runs of one spec must report the same
/// fingerprint; the replay gate diffs it.
pub fn schedule_fingerprint(ops: &[Op]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for op in ops {
        eat(op.kind.class().as_bytes());
        match &op.kind {
            OpKind::WellFormed { uc } => eat(&[*uc]),
            OpKind::HostileSelector { payload } => eat(payload.as_bytes()),
            OpKind::HostileRule { source } => eat(source.as_bytes()),
            OpKind::HostileProtocol { variant } => eat(&[*variant]),
            OpKind::Reload | OpKind::Snapshot => {}
        }
        eat(&[0xff]);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::standard_catalogue(7, 2_000, vec!["SPEC x.Y".to_owned()])
    }

    #[test]
    fn id_universes_derive_from_the_catalogue_and_packs() {
        let all = catalogue_ids();
        assert!(all.len() >= 25, "catalogue shrank to {}", all.len());
        assert_eq!(all, spec().use_case_ids);
        // Subset packs restrict the universe to their declared cases.
        let aead = pack_ids("aead", Some(1)).expect("aead@v1 exists");
        assert!(!aead.is_empty());
        assert!(aead.iter().all(|id| all.contains(id)));
        assert!(aead.len() < all.len());
        assert_eq!(pack_ids("no-such-pack", None), None);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_spec() {
        let a = build_schedule(&spec());
        let b = build_schedule(&spec());
        assert_eq!(a, b);
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        let mut other = spec();
        other.seed = 8;
        assert_ne!(
            schedule_fingerprint(&a),
            schedule_fingerprint(&build_schedule(&other))
        );
    }

    #[test]
    fn zipf_skews_toward_the_hot_case() {
        let ops = build_schedule(&spec());
        let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
        for op in &ops {
            if let OpKind::WellFormed { uc } = op.kind {
                *counts.entry(uc).or_default() += 1;
            }
        }
        let ids = catalogue_ids();
        let hot = counts[&ids[0]];
        let cold = counts.get(ids.last().unwrap()).copied().unwrap_or(0);
        assert!(
            hot >= 3 * cold.max(1),
            "zipf skew missing: hot={hot} cold={cold}"
        );
        // Every case still appears: the tail is cold, not absent.
        assert_eq!(counts.len(), ids.len());
    }

    #[test]
    fn mix_matches_the_per_mille_knob() {
        let ops = build_schedule(&spec());
        let hostile = ops
            .iter()
            .filter(|o| o.kind.class().starts_with("hostile"))
            .count();
        let frac = hostile as f64 / ops.len() as f64;
        assert!(
            (0.15..0.35).contains(&frac),
            "hostile fraction {frac} far from 0.25"
        );
        assert!(ops.iter().any(|o| o.kind == OpKind::Reload));
        assert!(ops.iter().any(|o| o.kind == OpKind::Snapshot));
    }

    #[test]
    fn clean_baseline_is_wellformed_only() {
        let clean = build_schedule(&spec().clean_baseline(500));
        assert_eq!(clean.len(), 500);
        assert!(clean
            .iter()
            .all(|o| matches!(o.kind, OpKind::WellFormed { .. })));
    }

    #[test]
    fn corpus_selectors_are_single_bounded_lines() {
        let s = corpus_selector("SPEC a.B\nEVENTS e: f();\n\u{0}junk");
        assert!(!s.contains('\n'));
        assert!(!s.chars().any(char::is_control));
        assert!(s.chars().count() <= 160);
        assert_eq!(corpus_selector("\n\n\t"), SYNTHETIC_SELECTORS[0]);
    }
}
