//! The `BENCH_load.json` report: what a load run leaves behind, split
//! so each consumer gets a section it can gate mechanically.
//!
//! * **`results`** — an array of objects carrying every field
//!   [`devharness::bench::BenchResult`] requires (plus an extra
//!   `p99_ns`), so the existing `bench_compare` binary gates load
//!   latencies and sustained throughput against a committed baseline
//!   with zero changes. Wall-clock, varies run to run.
//! * **`workload`** — a pure function of the seed and the system's
//!   *behaviour*: per-class op counts, outcome tallies, verified-bytes
//!   counts, violation totals, the schedule fingerprint. Two runs with
//!   one seed must render this section byte-identically; the
//!   replay-determinism gate in `verify.sh` diffs it.
//! * **`latency`** — the full per-class histograms and the p99
//!   isolation check, for humans and future tooling. Wall-clock.
//! * **`gauges`** — whatever the orchestrator sampled at the end
//!   (daemon `/loadz` snapshot, peak RSS). Wall-clock.

use devharness::bench::BenchResult;
use devharness::histogram::Histogram;
use devharness::json::Json;

use crate::workload::OpKind;
use crate::{PhaseRun, RunConfig, TargetRun};

/// The suite name: the report file is `BENCH_load.json`.
pub const SUITE: &str = "load";

/// Spec facts echoed into the report so a reader can reproduce the run.
#[derive(Debug, Clone)]
pub struct SpecEcho {
    /// The seed the whole run derives from.
    pub seed: u64,
    /// Mixed-phase operation budget.
    pub budget: u64,
    /// Clean-baseline operation budget.
    pub clean_budget: u64,
    /// Hostile operations per 1000 in the mixed phase.
    pub hostile_per_mille: u32,
    /// Corpus files that fed hostile traffic.
    pub corpus_files: u64,
    /// FNV-1a fingerprint of the mixed schedule.
    pub schedule_fingerprint: u64,
}

/// Everything [`render`] needs: the spec echo, the runner config, one
/// [`TargetRun`] per target, and the orchestrator's end-of-run gauges.
pub struct LoadReport {
    /// Reproduction facts.
    pub spec: SpecEcho,
    /// Runner knobs that shaped the measurements.
    pub config: RunConfig,
    /// One entry per exercised target.
    pub targets: Vec<TargetRun>,
    /// Non-deterministic end-of-run samples (daemon snapshot, RSS).
    pub gauges: Vec<(String, Json)>,
}

impl LoadReport {
    /// Total violations across all targets, p99 breaches included.
    pub fn violation_count(&self) -> u64 {
        self.targets.iter().map(TargetRun::violation_count).sum()
    }

    /// Renders the full report document.
    pub fn render(&self) -> Json {
        Json::Obj(vec![
            ("suite".to_owned(), Json::Str(SUITE.to_owned())),
            ("results".to_owned(), Json::Arr(self.bench_results())),
            ("workload".to_owned(), self.workload_section()),
            ("latency".to_owned(), self.latency_section()),
            ("gauges".to_owned(), Json::Obj(self.gauges.clone())),
        ])
    }

    /// The `bench_compare`-compatible result objects: per target, the
    /// well-formed latency of both phases plus the sustained mixed
    /// throughput as nanoseconds per operation.
    fn bench_results(&self) -> Vec<Json> {
        let rss = devharness::bench::peak_rss();
        let rss_kb = rss.as_ref().map(|p| p.kb);
        let rss_source = rss.as_ref().map(|p| p.source.name().to_owned());
        let mut out = Vec::new();
        for run in &self.targets {
            for (phase, data) in [("clean", &run.clean), ("mixed", &run.mixed)] {
                let h = data.wellformed();
                out.push(result_json(
                    &BenchResult {
                        name: format!("{}/wellformed.{phase}", run.target),
                        samples: h.count().min(u64::from(u32::MAX)) as u32,
                        iters_per_sample: 1,
                        min_ns: h.min(),
                        mean_ns: h.mean(),
                        median_ns: h.quantile(0.50),
                        p95_ns: h.quantile(0.95),
                        max_ns: h.max(),
                        peak_rss_kb: rss_kb,
                        peak_rss_source: rss_source.clone(),
                    },
                    Some(h.quantile(0.99)),
                ));
            }
            let ops = run.mixed.total_ops().max(1);
            let ns_per_op = run.mixed.wall_ns / ops;
            out.push(result_json(
                &BenchResult {
                    name: format!("{}/sustained.mixed", run.target),
                    samples: ops.min(u64::from(u32::MAX)) as u32,
                    iters_per_sample: 1,
                    min_ns: ns_per_op,
                    mean_ns: ns_per_op,
                    median_ns: ns_per_op,
                    p95_ns: ns_per_op,
                    max_ns: ns_per_op,
                    peak_rss_kb: rss_kb,
                    peak_rss_source: rss_source.clone(),
                },
                None,
            ));
        }
        out
    }

    /// The deterministic section: identical bytes for identical seeds
    /// as long as the system under test behaves deterministically —
    /// which is itself part of what the replay gate proves.
    fn workload_section(&self) -> Json {
        let targets: Vec<(String, Json)> = self
            .targets
            .iter()
            .map(|run| {
                (
                    run.target.to_owned(),
                    Json::Obj(vec![
                        ("clean_ops".to_owned(), class_counts(&run.clean)),
                        ("mixed_ops".to_owned(), class_counts(&run.mixed)),
                        ("clean_outcomes".to_owned(), outcome_counts(&run.clean)),
                        ("mixed_outcomes".to_owned(), outcome_counts(&run.mixed)),
                        (
                            "verified".to_owned(),
                            Json::Num((run.clean.verified + run.mixed.verified) as f64),
                        ),
                        (
                            "violations".to_owned(),
                            Json::Num(run.violation_count() as f64),
                        ),
                        (
                            "violation_messages".to_owned(),
                            Json::Arr(run.violations().map(|v| Json::Str(v.clone())).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("seed".to_owned(), Json::Num(self.spec.seed as f64)),
            ("budget".to_owned(), Json::Num(self.spec.budget as f64)),
            (
                "clean_budget".to_owned(),
                Json::Num(self.spec.clean_budget as f64),
            ),
            (
                "hostile_per_mille".to_owned(),
                Json::Num(f64::from(self.spec.hostile_per_mille)),
            ),
            (
                "corpus_files".to_owned(),
                Json::Num(self.spec.corpus_files as f64),
            ),
            ("clients".to_owned(), Json::Num(self.config.clients as f64)),
            (
                "schedule_fingerprint".to_owned(),
                Json::Str(format!("{:016x}", self.spec.schedule_fingerprint)),
            ),
            ("targets".to_owned(), Json::Obj(targets)),
        ])
    }

    /// Full per-class histograms and the p99 isolation verdicts.
    fn latency_section(&self) -> Json {
        let targets: Vec<(String, Json)> = self
            .targets
            .iter()
            .map(|run| {
                (
                    run.target.to_owned(),
                    Json::Obj(vec![
                        ("clean".to_owned(), class_histograms(&run.clean)),
                        ("mixed".to_owned(), class_histograms(&run.mixed)),
                        (
                            "p99_isolation".to_owned(),
                            Json::Obj(vec![
                                ("clean_ns".to_owned(), Json::Num(run.p99.clean_ns as f64)),
                                ("mixed_ns".to_owned(), Json::Num(run.p99.mixed_ns as f64)),
                                ("bound_ns".to_owned(), Json::Num(run.p99.bound_ns as f64)),
                                ("factor".to_owned(), Json::Num(self.config.p99_factor)),
                                (
                                    "floor_ns".to_owned(),
                                    Json::Num(self.config.p99_floor_ns as f64),
                                ),
                                ("ok".to_owned(), Json::Bool(run.p99.ok)),
                            ]),
                        ),
                        (
                            "wall_ns".to_owned(),
                            Json::Obj(vec![
                                ("clean".to_owned(), Json::Num(run.clean.wall_ns as f64)),
                                ("mixed".to_owned(), Json::Num(run.mixed.wall_ns as f64)),
                            ]),
                        ),
                        (
                            "throughput_millihz".to_owned(),
                            Json::Obj(vec![
                                (
                                    "clean".to_owned(),
                                    Json::Num(run.clean.throughput_millihz() as f64),
                                ),
                                (
                                    "mixed".to_owned(),
                                    Json::Num(run.mixed.throughput_millihz() as f64),
                                ),
                            ]),
                        ),
                    ]),
                )
            })
            .collect();
        Json::Obj(targets)
    }
}

/// A [`BenchResult`] rendered with an optional extra `p99_ns` member —
/// `BenchResult::from_json` ignores members it does not know, so the
/// object stays parseable by the stock gate.
fn result_json(result: &BenchResult, p99_ns: Option<u64>) -> Json {
    let mut doc = result.to_json();
    if let (Json::Obj(members), Some(p99)) = (&mut doc, p99_ns) {
        members.push(("p99_ns".to_owned(), Json::Num(p99 as f64)));
    }
    doc
}

/// Per-class scheduled-op counts, every class present (zeros kept) so
/// the section's shape never depends on the sampled mix.
fn class_counts(phase: &PhaseRun) -> Json {
    Json::Obj(
        OpKind::CLASSES
            .iter()
            .map(|class| {
                (
                    (*class).to_owned(),
                    Json::Num(phase.ops.get(class).copied().unwrap_or(0) as f64),
                )
            })
            .collect(),
    )
}

/// Per-outcome tallies, every outcome present.
fn outcome_counts(phase: &PhaseRun) -> Json {
    Json::Obj(
        crate::OutcomeClass::ALL
            .iter()
            .map(|name| {
                (
                    (*name).to_owned(),
                    Json::Num(phase.outcomes.get(name).copied().unwrap_or(0) as f64),
                )
            })
            .collect(),
    )
}

/// The per-class latency histograms of one phase, classes sorted.
fn class_histograms(phase: &PhaseRun) -> Json {
    Json::Obj(
        phase
            .latency
            .iter()
            .map(|(class, h)| ((*class).to_owned(), h.to_json()))
            .collect(),
    )
}

/// A structural summary extracted by [`validate`], for `load-check`.
#[derive(Debug)]
pub struct ReportSummary {
    /// The seed echoed in the workload section.
    pub seed: u64,
    /// The schedule fingerprint (hex, as rendered).
    pub schedule_fingerprint: String,
    /// `(target, violations, p99_ok)` per target.
    pub targets: Vec<(String, u64, bool)>,
    /// Parsed `results` entries (proving `bench_compare` can read them).
    pub results: Vec<BenchResult>,
}

impl ReportSummary {
    /// Total violations across targets, p99 breaches included.
    pub fn violation_count(&self) -> u64 {
        self.targets
            .iter()
            .map(|(_, v, ok)| v + u64::from(!ok))
            .sum()
    }
}

/// Validates a report document's structure: the suite name, that every
/// `results` entry parses as a [`BenchResult`], and that the workload
/// and latency sections carry the members the gates rely on.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn validate(doc: &Json) -> Result<ReportSummary, String> {
    let suite = doc
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing `suite`")?;
    if suite != SUITE {
        return Err(format!("suite is `{suite}`, expected `{SUITE}`"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing `results` array")?
        .iter()
        .map(BenchResult::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("results entry does not parse as a bench result: {e}"))?;
    if results.is_empty() {
        return Err("`results` is empty".to_owned());
    }
    let workload = doc.get("workload").ok_or("missing `workload` section")?;
    let seed = workload
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("workload: missing `seed`")?;
    let fingerprint = workload
        .get("schedule_fingerprint")
        .and_then(Json::as_str)
        .ok_or("workload: missing `schedule_fingerprint`")?
        .to_owned();
    let latency = doc.get("latency").ok_or("missing `latency` section")?;
    let target_objs = match workload.get("targets") {
        Some(Json::Obj(members)) if !members.is_empty() => members,
        _ => return Err("workload: missing or empty `targets`".to_owned()),
    };
    let mut targets = Vec::new();
    for (name, entry) in target_objs {
        let violations = entry
            .get("violations")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("workload target `{name}`: missing `violations`"))?;
        let p99_ok = latency
            .get(name)
            .and_then(|t| t.get("p99_isolation"))
            .and_then(|p| p.get("ok"))
            .and_then(|v| match v {
                Json::Bool(b) => Some(*b),
                _ => None,
            })
            .ok_or_else(|| format!("latency target `{name}`: missing `p99_isolation.ok`"))?;
        for phase in ["clean", "mixed"] {
            let histos = latency
                .get(name)
                .and_then(|t| t.get(phase))
                .ok_or_else(|| format!("latency target `{name}`: missing `{phase}`"))?;
            if let Json::Obj(members) = histos {
                for (class, h) in members {
                    Histogram::from_json(h)
                        .map_err(|e| format!("latency target `{name}` {phase}/{class}: {e}"))?;
                }
            }
        }
        targets.push((name.clone(), violations, p99_ok));
    }
    doc.get("gauges").ok_or("missing `gauges` section")?;
    Ok(ReportSummary {
        seed,
        schedule_fingerprint: fingerprint,
        targets,
        results,
    })
}

/// The replay-determinism digest: the `workload` section rendered
/// alone. Two runs of one seed must produce identical digest bytes;
/// `verify.sh` diffs the two.
///
/// # Errors
///
/// The document has no `workload` section.
pub fn deterministic_digest(doc: &Json) -> Result<String, String> {
    doc.get("workload")
        .map(|w| format!("{w}\n"))
        .ok_or_else(|| "missing `workload` section".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build_schedule, WorkloadSpec};
    use crate::{run_target, Outcome, OutcomeClass, Target};

    struct StubTarget;

    impl Target for StubTarget {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn call(&self, op: &OpKind) -> Outcome {
            match op {
                OpKind::WellFormed { .. } => Outcome::verified(true),
                OpKind::Reload | OpKind::Snapshot => Outcome::ok(),
                _ => Outcome::classed(OutcomeClass::TypedError, "refused"),
            }
        }
    }

    fn report() -> LoadReport {
        let spec = WorkloadSpec::standard_catalogue(11, 300, vec![]);
        let mixed = build_schedule(&spec);
        let clean = build_schedule(&spec.clean_baseline(80));
        let config = RunConfig::default();
        let run = run_target(&StubTarget, &clean, &mixed, &config);
        LoadReport {
            spec: SpecEcho {
                seed: spec.seed,
                budget: spec.budget,
                clean_budget: 80,
                hostile_per_mille: spec.hostile_per_mille,
                corpus_files: 0,
                schedule_fingerprint: crate::workload::schedule_fingerprint(&mixed),
            },
            config,
            targets: vec![run],
            gauges: vec![("note".to_owned(), Json::Str("test".to_owned()))],
        }
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let doc = report().render();
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("report is valid json");
        let summary = validate(&parsed).expect("report validates");
        assert_eq!(summary.seed, 11);
        assert_eq!(summary.violation_count(), 0);
        assert_eq!(summary.targets.len(), 1);
        // Three results per target: clean + mixed wellformed, sustained.
        assert_eq!(summary.results.len(), 3);
        assert!(summary
            .results
            .iter()
            .any(|r| r.name == "stub/sustained.mixed"));
    }

    #[test]
    fn workload_digest_is_stable_across_runs() {
        let a = deterministic_digest(&report().render()).expect("digest");
        let b = deterministic_digest(&report().render()).expect("digest");
        assert_eq!(a, b, "workload section varied between identical runs");
        // And it carries no wall-clock members.
        assert!(!a.contains("wall_ns"));
        assert!(!a.contains("_isolation"));
    }

    #[test]
    fn results_parse_with_the_stock_bench_parser() {
        let doc = report().render();
        let report = devharness::bench::BenchReport::parse(&doc.to_string())
            .expect("BENCH_load.json parses as a stock bench report");
        assert_eq!(report.suite, SUITE);
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            assert!(r.samples > 0, "{}: zero samples", r.name);
        }
    }

    #[test]
    fn validate_rejects_structural_damage() {
        let doc = report().render();
        // Drop the workload section.
        if let Json::Obj(members) = &doc {
            let broken = Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "workload")
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err());
        } else {
            panic!("report must be an object");
        }
        assert!(validate(&Json::Obj(vec![])).is_err());
    }
}
