//! `cognicrypt-load` — the seeded load harness that simulates the
//! million-user day against the generation stack.
//!
//! The generator's pitch is that its output is *dependably* secure;
//! that promise is empty if the generator itself degrades under
//! production pressure. This crate replays a deterministic, zipf-skewed
//! workload — hot and cold use cases, mid-run rule-pack reloads, and
//! hostile traffic drawn from the fuzz reproducer corpus — against any
//! number of [`Target`]s (the in-process `GenEngine`, the daemon's
//! HTTP transport, the daemon's Unix socket), and *asserts* while it
//! measures:
//!
//! * every well-formed response is byte-identical to the one-shot
//!   engine's output, whatever hostile traffic runs beside it;
//! * every hostile input gets a typed error — never a panic, never a
//!   transport failure, never an `ok`;
//! * the well-formed p99 under mixed traffic stays within a bounded
//!   factor of the clean-traffic baseline measured first.
//!
//! Latencies go into [`devharness::histogram::Histogram`]s per request
//! class (p50/p95/p99 with bounded relative error); the report splits
//! into a fully deterministic `workload` section (what the replay gate
//! diffs across identical seeds) and wall-clock `results`/`latency`
//! sections (what `bench_compare` gates across commits).
//!
//! The crate knows nothing about transports: a [`Target`] maps each
//! [`workload::OpKind`] onto its protocol and classifies the response.
//! The CLI wires up the concrete targets; tests wire up hostile stubs
//! to prove the harness fails loudly when a target misbehaves.

pub mod report;
pub mod workload;

use std::collections::BTreeMap;
use std::time::Instant;

use devharness::histogram::Histogram;
use devharness::pacing::Pacer;

use workload::{Op, OpKind};

/// How a target classified one operation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// The operation succeeded.
    Ok,
    /// A typed application-level error (the daemon's `Error` classes).
    TypedError,
    /// A typed transport/protocol-level refusal (400/404/405/413/431,
    /// the UDS `protocol` class).
    ProtocolError,
    /// A panic — in-process caught, or the daemon's `"panic"` class.
    /// Always a violation.
    Panic,
    /// The transport itself failed (connect/read/write error): the
    /// daemon is gone or wedged. Always a violation.
    Transport,
}

impl OutcomeClass {
    /// Stable name used in report keys.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeClass::Ok => "ok",
            OutcomeClass::TypedError => "typed_error",
            OutcomeClass::ProtocolError => "protocol_error",
            OutcomeClass::Panic => "panic",
            OutcomeClass::Transport => "transport",
        }
    }

    /// All outcome names, in report order.
    pub const ALL: [&'static str; 5] =
        ["ok", "typed_error", "protocol_error", "panic", "transport"];
}

/// One operation's result, as classified by the target.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The outcome class.
    pub class: OutcomeClass,
    /// For well-formed generations: whether the response matched the
    /// expected bytes exactly. `None` for every other op kind.
    pub bytes_match: Option<bool>,
    /// Human-readable detail for violation messages.
    pub detail: String,
}

impl Outcome {
    /// A plain success.
    pub fn ok() -> Outcome {
        Outcome {
            class: OutcomeClass::Ok,
            bytes_match: None,
            detail: String::new(),
        }
    }

    /// A success whose payload was byte-compared.
    pub fn verified(matched: bool) -> Outcome {
        Outcome {
            class: OutcomeClass::Ok,
            bytes_match: Some(matched),
            detail: if matched {
                String::new()
            } else {
                "response bytes diverged from the one-shot engine".to_owned()
            },
        }
    }

    /// An outcome of `class` with a detail message.
    pub fn classed(class: OutcomeClass, detail: impl Into<String>) -> Outcome {
        Outcome {
            class,
            bytes_match: None,
            detail: detail.into(),
        }
    }
}

/// A system under load: maps each operation onto a protocol and
/// classifies the response. Implementations must be `Sync` — the
/// runner drives one target from many client threads at once.
pub trait Target: Sync {
    /// Stable name used in report keys (`library`, `http`, `uds`).
    fn name(&self) -> &'static str;

    /// Executes one operation and classifies its result. Must not
    /// panic: an in-process panic the target cannot contain is exactly
    /// what the harness exists to detect, so contain and report it as
    /// [`OutcomeClass::Panic`].
    fn call(&self, op: &OpKind) -> Outcome;
}

/// Whether `outcome` is acceptable for an op of `kind`. Anything
/// unacceptable is a violation; a single violation fails the run.
fn acceptable(kind: &OpKind, outcome: &Outcome) -> bool {
    match kind {
        OpKind::WellFormed { .. } => {
            outcome.class == OutcomeClass::Ok && outcome.bytes_match == Some(true)
        }
        OpKind::Reload | OpKind::Snapshot => outcome.class == OutcomeClass::Ok,
        // A hostile selector must be *refused*: ok would mean garbage
        // resolved to a real use case.
        OpKind::HostileSelector { .. } => matches!(
            outcome.class,
            OutcomeClass::TypedError | OutcomeClass::ProtocolError
        ),
        // A corpus rule source may parse (the reproducers are fixed) —
        // the assertion is only that it never panics or wedges.
        OpKind::HostileRule { .. } => matches!(
            outcome.class,
            OutcomeClass::Ok | OutcomeClass::TypedError | OutcomeClass::ProtocolError
        ),
        OpKind::HostileProtocol { .. } => matches!(
            outcome.class,
            OutcomeClass::TypedError | OutcomeClass::ProtocolError
        ),
    }
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Concurrent client threads per target.
    pub clients: usize,
    /// Open-loop aggregate arrival rate (ops/s) across a target's
    /// clients; `None` runs closed-loop (back to back).
    pub rate: Option<f64>,
    /// Mixed-traffic well-formed p99 must stay within this factor of
    /// the clean baseline p99.
    pub p99_factor: f64,
    /// Baseline p99 floor: the bound is `factor × max(clean_p99,
    /// floor)`, so microsecond baselines don't make the gate flaky.
    pub p99_floor_ns: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            clients: 4,
            rate: None,
            p99_factor: 50.0,
            p99_floor_ns: 10_000_000, // 10 ms
        }
    }
}

/// Aggregated measurements of one phase (clean or mixed) on one target.
#[derive(Debug, Default)]
pub struct PhaseRun {
    /// Wall time of the whole phase, nanoseconds.
    pub wall_ns: u64,
    /// Latency histogram per op class.
    pub latency: BTreeMap<&'static str, Histogram>,
    /// Scheduled ops per class (deterministic).
    pub ops: BTreeMap<&'static str, u64>,
    /// Outcomes per class name (deterministic while the target behaves).
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Well-formed responses verified byte-identical.
    pub verified: u64,
    /// Violation messages (bounded; `violation_count` holds the total).
    pub violations: Vec<String>,
    /// Total violations observed.
    pub violation_count: u64,
}

impl PhaseRun {
    fn merge(&mut self, other: PhaseRun) {
        for (class, h) in other.latency {
            self.latency.entry(class).or_default().merge(&h);
        }
        for (class, n) in other.ops {
            *self.ops.entry(class).or_default() += n;
        }
        for (name, n) in other.outcomes {
            *self.outcomes.entry(name).or_default() += n;
        }
        self.verified += other.verified;
        self.violation_count += other.violation_count;
        for v in other.violations {
            if self.violations.len() < 20 {
                self.violations.push(v);
            }
        }
    }

    /// The well-formed latency histogram, empty if none ran.
    pub fn wellformed(&self) -> Histogram {
        self.latency.get("wellformed").cloned().unwrap_or_default()
    }

    /// Total ops executed in this phase.
    pub fn total_ops(&self) -> u64 {
        self.ops.values().sum()
    }

    /// Mean sustained throughput of the phase, milli-ops per second
    /// (integral, so the report stays float-free).
    pub fn throughput_millihz(&self) -> u64 {
        if self.wall_ns == 0 {
            return 0;
        }
        self.total_ops() * 1_000_000_000_000 / self.wall_ns
    }
}

/// The p99 isolation check of one target: mixed well-formed tail
/// latency bounded by the clean baseline.
#[derive(Debug, Clone, Copy)]
pub struct P99Check {
    /// Clean-phase well-formed p99, nanoseconds.
    pub clean_ns: u64,
    /// Mixed-phase well-formed p99, nanoseconds.
    pub mixed_ns: u64,
    /// The bound the mixed p99 had to stay under.
    pub bound_ns: u64,
    /// Whether the check passed.
    pub ok: bool,
}

/// A server-side latency distribution checked against the
/// client-observed one at quantile `q`, each with the histogram's
/// documented bucket bounds
/// ([`devharness::histogram::Histogram::quantile_bounds`]).
#[derive(Debug, Clone, Copy)]
pub struct QuantileCrossCheck {
    /// The quantile checked (e.g. 0.99).
    pub q: f64,
    /// Server-side quantile bucket bounds, nanoseconds.
    pub server_ns: (u64, u64),
    /// Client-side quantile bucket bounds, nanoseconds.
    pub client_ns: (u64, u64),
    /// Whether the check passed.
    pub ok: bool,
}

/// Cross-checks a daemon-side wall-time histogram against the
/// client-observed latency histogram for the same requests.
///
/// The client measures each request from its scheduled (pacer-due)
/// time, so connect time and queueing delay are included and every
/// client sample is at least the server's wall time for that request.
/// Sample-wise domination bounds the quantiles the same way, so the
/// sound assertion is one-directional: the server's lower p-`q` bucket
/// bound must not exceed the client's upper bucket bound. A violation
/// means the two distributions cannot describe the same requests —
/// daemon-side recording is broken.
pub fn cross_check_quantile(server: &Histogram, client: &Histogram, q: f64) -> QuantileCrossCheck {
    let server_ns = server.quantile_bounds(q);
    let client_ns = client.quantile_bounds(q);
    QuantileCrossCheck {
        q,
        server_ns,
        client_ns,
        ok: server_ns.0 <= client_ns.1,
    }
}

/// Everything measured about one target.
#[derive(Debug)]
pub struct TargetRun {
    /// Target name (`library`, `http`, `uds`).
    pub target: &'static str,
    /// The clean-traffic baseline phase.
    pub clean: PhaseRun,
    /// The mixed hostile/well-formed phase.
    pub mixed: PhaseRun,
    /// The isolation check derived from the two phases.
    pub p99: P99Check,
}

impl TargetRun {
    /// All violation messages of both phases, clean first.
    pub fn violations(&self) -> impl Iterator<Item = &String> {
        self.clean
            .violations
            .iter()
            .chain(self.mixed.violations.iter())
    }

    /// Total violations including the p99 breach.
    pub fn violation_count(&self) -> u64 {
        self.clean.violation_count + self.mixed.violation_count + u64::from(!self.p99.ok)
    }
}

/// Executes `schedule` against `target` over `config.clients` threads
/// and aggregates the per-client measurements. Client `c` runs the
/// schedule's ops at positions `c, c+clients, c+2·clients, …` in
/// order, so the per-class counts are a pure function of the schedule
/// regardless of interleaving; only latencies vary between runs.
pub fn run_phase(target: &dyn Target, schedule: &[Op], config: &RunConfig) -> PhaseRun {
    let clients = config.clients.max(1);
    let per_client_rate = config.rate.map(|r| r / clients as f64);
    let phase_start = Instant::now();
    let mut merged = PhaseRun::default();
    let parts: Vec<PhaseRun> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let pacer = match per_client_rate {
                        Some(rate) => Pacer::per_second(rate),
                        None => Pacer::closed(),
                    };
                    let mut run = PhaseRun::default();
                    for (j, op) in schedule.iter().skip(c).step_by(clients).enumerate() {
                        let scheduled = pacer.due(j as u64);
                        let outcome = target.call(&op.kind);
                        let latency =
                            scheduled.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        let class = op.kind.class();
                        *run.ops.entry(class).or_default() += 1;
                        *run.outcomes.entry(outcome.class.name()).or_default() += 1;
                        run.latency.entry(class).or_default().record(latency);
                        if outcome.bytes_match == Some(true) {
                            run.verified += 1;
                        }
                        if !acceptable(&op.kind, &outcome) {
                            run.violation_count += 1;
                            if run.violations.len() < 20 {
                                run.violations.push(format!(
                                    "{}: op {} ({class}) got {}{}",
                                    target.name(),
                                    op.index,
                                    outcome.class.name(),
                                    if outcome.detail.is_empty() {
                                        String::new()
                                    } else {
                                        format!(": {}", outcome.detail)
                                    }
                                ));
                            }
                        }
                    }
                    run
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread must not panic"))
            .collect()
    });
    for part in parts {
        merged.merge(part);
    }
    merged.wall_ns = phase_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    merged
}

/// Runs the clean baseline then the mixed phase on one target and
/// derives the p99 isolation check.
pub fn run_target(
    target: &dyn Target,
    clean_schedule: &[Op],
    mixed_schedule: &[Op],
    config: &RunConfig,
) -> TargetRun {
    let clean = run_phase(target, clean_schedule, config);
    let mixed = run_phase(target, mixed_schedule, config);
    let clean_ns = clean.wellformed().quantile(0.99);
    let mixed_ns = mixed.wellformed().quantile(0.99);
    let bound_ns =
        (config.p99_factor * clean_ns.max(config.p99_floor_ns) as f64).min(u64::MAX as f64) as u64;
    let ok = mixed_ns <= bound_ns;
    TargetRun {
        target: target.name(),
        clean,
        mixed,
        p99: P99Check {
            clean_ns,
            mixed_ns,
            bound_ns,
            ok,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::WorkloadSpec;

    /// A well-behaved in-memory target.
    struct GoodTarget;

    impl Target for GoodTarget {
        fn name(&self) -> &'static str {
            "good"
        }

        fn call(&self, op: &OpKind) -> Outcome {
            match op {
                OpKind::WellFormed { .. } => Outcome::verified(true),
                OpKind::Reload | OpKind::Snapshot => Outcome::ok(),
                OpKind::HostileSelector { .. } | OpKind::HostileProtocol { .. } => {
                    Outcome::classed(OutcomeClass::TypedError, "refused")
                }
                OpKind::HostileRule { .. } => Outcome::classed(OutcomeClass::TypedError, "parse"),
            }
        }
    }

    /// A target that panics (contained) on one hostile class and
    /// silently accepts another — both must surface as violations.
    struct EvilTarget;

    impl Target for EvilTarget {
        fn name(&self) -> &'static str {
            "evil"
        }

        fn call(&self, op: &OpKind) -> Outcome {
            match op {
                OpKind::WellFormed { .. } => Outcome::verified(false),
                OpKind::HostileSelector { .. } => Outcome::ok(),
                OpKind::HostileRule { .. } => Outcome::classed(OutcomeClass::Panic, "boom"),
                _ => Outcome::ok(),
            }
        }
    }

    fn schedules() -> (Vec<Op>, Vec<Op>) {
        let spec = WorkloadSpec::standard_catalogue(3, 400, vec![]);
        (
            workload::build_schedule(&spec.clean_baseline(100)),
            workload::build_schedule(&spec),
        )
    }

    #[test]
    fn well_behaved_target_passes_with_zero_violations() {
        let (clean, mixed) = schedules();
        let run = run_target(&GoodTarget, &clean, &mixed, &RunConfig::default());
        assert_eq!(run.violation_count(), 0);
        assert!(run.p99.ok);
        assert_eq!(run.clean.total_ops(), 100);
        assert_eq!(run.mixed.total_ops(), 400);
        assert_eq!(run.clean.verified, 100);
        assert!(run.mixed.wellformed().count() > 0);
        assert!(run.mixed.throughput_millihz() > 0);
    }

    #[test]
    fn counts_are_identical_across_client_counts() {
        let (clean, mixed) = schedules();
        let one = run_target(
            &GoodTarget,
            &clean,
            &mixed,
            &RunConfig {
                clients: 1,
                ..RunConfig::default()
            },
        );
        let eight = run_target(
            &GoodTarget,
            &clean,
            &mixed,
            &RunConfig {
                clients: 8,
                ..RunConfig::default()
            },
        );
        assert_eq!(one.mixed.ops, eight.mixed.ops);
        assert_eq!(one.mixed.outcomes, eight.mixed.outcomes);
        assert_eq!(one.mixed.verified, eight.mixed.verified);
        for (class, h) in &one.mixed.latency {
            assert_eq!(h.count(), eight.mixed.latency[class].count());
        }
    }

    #[test]
    fn misbehaving_target_is_caught() {
        let (clean, mixed) = schedules();
        let run = run_target(&EvilTarget, &clean, &mixed, &RunConfig::default());
        assert!(run.violation_count() > 0);
        // Divergent bytes, accepted hostile selectors and panics are
        // all individually flagged.
        let all: Vec<&String> = run.violations().collect();
        assert!(all.iter().any(|v| v.contains("wellformed")));
        assert!(all.iter().any(|v| v.contains("hostile_selector")));
        assert!(all.iter().any(|v| v.contains("panic")));
    }

    #[test]
    fn quantile_cross_check_accepts_dominated_servers_and_flags_inversions() {
        let mut server = Histogram::new();
        let mut client = Histogram::new();
        // Componentwise domination: client = server + fixed overhead.
        for i in 1..=1000u64 {
            server.record(i * 1000);
            client.record(i * 1000 + 250_000);
        }
        for q in [0.5, 0.9, 0.99] {
            let check = cross_check_quantile(&server, &client, q);
            assert!(check.ok, "q={q}: {check:?}");
            assert!(check.server_ns.0 <= check.server_ns.1);
        }
        // Inverted: the "server" claims a tail far above anything the
        // client saw — impossible for the same requests.
        let check = cross_check_quantile(&client, &server, 0.99);
        assert!(!check.ok, "{check:?}");
    }

    #[test]
    fn open_loop_rate_still_executes_every_op() {
        let (clean, _) = schedules();
        let run = run_phase(
            &GoodTarget,
            &clean,
            &RunConfig {
                clients: 2,
                rate: Some(1_000_000.0),
                ..RunConfig::default()
            },
        );
        assert_eq!(run.total_ops(), 100);
        assert_eq!(run.violation_count, 0);
    }
}
