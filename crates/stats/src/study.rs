//! Replay of the paper's 16-participant user study (RQ5).
//!
//! The original raw data is not public; this module synthesizes a
//! deterministic dataset whose aggregates match the paper's reported
//! numbers — SUS 76.3 vs 50.8, NPS 56.3 vs −43.7, the encryption task 38%
//! slower and the hashing task 63.2% faster with CogniCryptGEN — and then
//! re-runs the full analysis pipeline (scoring, latin-square bookkeeping,
//! Wilcoxon tests) to confirm the paper's significance claims follow from
//! such data.

use crate::latin::latin_square_assignment;
use crate::nps::net_promoter_score;
use crate::sus::{mean_sus, sus_score, SusResponse};
use crate::wilcoxon::wilcoxon_signed_rank;

/// Number of participants in the paper's study.
pub const PARTICIPANTS: usize = 16;

/// Task indices.
pub const TASK_ENCRYPTION: usize = 0;
/// Task indices.
pub const TASK_HASHING: usize = 1;
/// Tool indices.
pub const TOOL_GEN: usize = 0;
/// Tool indices.
pub const TOOL_OLD: usize = 1;

/// The synthesized study dataset.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// SUS item responses for CogniCryptGEN, one per participant.
    pub sus_gen: Vec<SusResponse>,
    /// SUS item responses for the old generator.
    pub sus_old: Vec<SusResponse>,
    /// NPS ratings (0–10) for CogniCryptGEN.
    pub nps_gen: Vec<u8>,
    /// NPS ratings for the old generator.
    pub nps_old: Vec<u8>,
    /// Which task each participant performed with CogniCryptGEN.
    pub task_with_gen: Vec<usize>,
    /// Completion time (minutes) of the task done with CogniCryptGEN.
    pub time_gen: Vec<f64>,
    /// Completion time (minutes) of the task done with the old generator.
    pub time_old: Vec<f64>,
}

/// The derived report — every number RQ5 states.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Mean SUS for CogniCryptGEN (paper: 76.3).
    pub sus_gen_mean: f64,
    /// Mean SUS for the old generator (paper: 50.8).
    pub sus_old_mean: f64,
    /// NPS for CogniCryptGEN (paper: 56.3).
    pub nps_gen: f64,
    /// NPS for the old generator (paper: −43.7).
    pub nps_old: f64,
    /// Two-sided Wilcoxon p on per-participant SUS scores (paper: 0.005).
    pub p_sus: f64,
    /// Two-sided Wilcoxon p on NPS ratings (paper: 0.005).
    pub p_nps: f64,
    /// Two-sided Wilcoxon p on completion times (paper: > 0.05).
    pub p_times: f64,
    /// Encryption-task slowdown with CogniCryptGEN, percent (paper: 38%).
    pub encryption_slowdown_pct: f64,
    /// Hashing-task speedup with CogniCryptGEN, percent (paper: 63.2%).
    pub hashing_speedup_pct: f64,
}

/// Builds a SUS response whose score is exactly `score` (a multiple of
/// 2.5 in 0..=100): contributions are distributed greedily over the ten
/// items, then converted back to Likert answers.
fn sus_response_for(score: f64) -> SusResponse {
    let mut remaining = (score / 2.5).round() as i32; // raw sum 0..=40
    let mut resp = [0u8; 10];
    for (i, slot) in resp.iter_mut().enumerate() {
        let c = remaining.clamp(0, 4);
        remaining -= c;
        *slot = if i % 2 == 0 {
            (c + 1) as u8 // positively phrased
        } else {
            (5 - c) as u8 // negatively phrased
        };
    }
    resp
}

/// The deterministic replayed dataset.
pub fn replayed_study() -> StudyData {
    // Per-participant SUS scores: sum 1220 (mean 76.25 ≈ 76.3) for the
    // new generator, sum 812.5 (mean 50.78 ≈ 50.8) for the old one.
    let gen_scores = [
        80.0, 72.5, 77.5, 70.0, 85.0, 75.0, 80.0, 72.5, 75.0, 82.5, 77.5, 70.0, 75.0, 80.0, 72.5,
        75.0,
    ];
    let old_scores = [
        55.0, 47.5, 52.5, 45.0, 60.0, 50.0, 55.0, 47.5, 50.0, 57.5, 52.5, 45.0, 50.0, 55.0, 47.5,
        42.5,
    ];
    // NPS: 11 promoters, 3 passives, 2 detractors → +56.25 (≈ 56.3);
    //       2 promoters, 5 passives, 9 detractors → −43.75 (≈ −43.7).
    let nps_gen = vec![9, 9, 10, 9, 10, 9, 9, 10, 9, 9, 10, 7, 8, 7, 5, 6];
    let nps_old = vec![9, 10, 7, 7, 8, 8, 7, 3, 4, 2, 5, 6, 4, 3, 5, 6];

    // Task assignment: 2×2 latin square over 16 participants.
    let assignment = latin_square_assignment(PARTICIPANTS);
    let mut task_with_gen = Vec::with_capacity(PARTICIPANTS);
    let mut time_gen = Vec::with_capacity(PARTICIPANTS);
    let mut time_old = Vec::with_capacity(PARTICIPANTS);
    // Base task times (minutes): encryption old 13.0 / gen 17.94 (38%
    // slower); hashing old 12.0 / gen 4.42 (63.2% faster). Within a
    // participant the two tools handle *different* tasks, so the paired
    // differences straddle zero — which is why the paper finds no overall
    // significance. Deterministic per-participant jitter keeps pairs
    // untied.
    for a in &assignment {
        let gen_task = a
            .sequence
            .iter()
            .find(|(_, tool)| *tool == TOOL_GEN)
            .map(|(task, _)| *task)
            .expect("every participant uses the new generator once");
        let jitter = (a.participant % 5) as f64 * 0.3 - 0.6;
        let (tg, to) = if gen_task == TASK_ENCRYPTION {
            (17.94 + jitter, 12.0 - jitter) // old did hashing
        } else {
            (4.42 + jitter, 13.0 - jitter) // old did encryption
        };
        task_with_gen.push(gen_task);
        time_gen.push(tg);
        time_old.push(to);
    }

    StudyData {
        sus_gen: gen_scores.iter().map(|&s| sus_response_for(s)).collect(),
        sus_old: old_scores.iter().map(|&s| sus_response_for(s)).collect(),
        nps_gen,
        nps_old,
        task_with_gen,
        time_gen,
        time_old,
    }
}

/// Runs the complete RQ5 analysis on a dataset.
pub fn evaluate(data: &StudyData) -> StudyReport {
    let sus_gen_scores: Vec<f64> = data.sus_gen.iter().map(sus_score).collect();
    let sus_old_scores: Vec<f64> = data.sus_old.iter().map(sus_score).collect();
    let p_sus = wilcoxon_signed_rank(&sus_gen_scores, &sus_old_scores).p_value;
    let nps_gen_f: Vec<f64> = data.nps_gen.iter().map(|&r| f64::from(r)).collect();
    let nps_old_f: Vec<f64> = data.nps_old.iter().map(|&r| f64::from(r)).collect();
    let p_nps = wilcoxon_signed_rank(&nps_gen_f, &nps_old_f).p_value;
    let p_times = wilcoxon_signed_rank(&data.time_gen, &data.time_old).p_value;

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let enc_gen: Vec<f64> = data
        .time_gen
        .iter()
        .zip(&data.task_with_gen)
        .filter(|(_, t)| **t == TASK_ENCRYPTION)
        .map(|(v, _)| *v)
        .collect();
    let enc_old: Vec<f64> = data
        .time_old
        .iter()
        .zip(&data.task_with_gen)
        .filter(|(_, t)| **t == TASK_HASHING) // old did encryption
        .map(|(v, _)| *v)
        .collect();
    let hash_gen: Vec<f64> = data
        .time_gen
        .iter()
        .zip(&data.task_with_gen)
        .filter(|(_, t)| **t == TASK_HASHING)
        .map(|(v, _)| *v)
        .collect();
    let hash_old: Vec<f64> = data
        .time_old
        .iter()
        .zip(&data.task_with_gen)
        .filter(|(_, t)| **t == TASK_ENCRYPTION) // old did hashing
        .map(|(v, _)| *v)
        .collect();

    StudyReport {
        sus_gen_mean: mean_sus(&data.sus_gen),
        sus_old_mean: mean_sus(&data.sus_old),
        nps_gen: net_promoter_score(&data.nps_gen),
        nps_old: net_promoter_score(&data.nps_old),
        p_sus,
        p_nps,
        p_times,
        encryption_slowdown_pct: (mean(&enc_gen) / mean(&enc_old) - 1.0) * 100.0,
        hashing_speedup_pct: (1.0 - mean(&hash_gen) / mean(&hash_old)) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_the_paper() {
        let report = evaluate(&replayed_study());
        assert!(
            (report.sus_gen_mean - 76.3).abs() < 0.5,
            "{}",
            report.sus_gen_mean
        );
        assert!(
            (report.sus_old_mean - 50.8).abs() < 0.5,
            "{}",
            report.sus_old_mean
        );
        assert!((report.nps_gen - 56.3).abs() < 0.5, "{}", report.nps_gen);
        assert!((report.nps_old - -43.7).abs() < 0.5, "{}", report.nps_old);
    }

    #[test]
    fn usability_differences_are_significant() {
        let report = evaluate(&replayed_study());
        assert!(report.p_sus < 0.01, "SUS p = {}", report.p_sus);
        assert!(report.p_nps < 0.01, "NPS p = {}", report.p_nps);
    }

    #[test]
    fn completion_times_are_not_significant_but_task_effects_match() {
        let report = evaluate(&replayed_study());
        assert!(report.p_times > 0.05, "times p = {}", report.p_times);
        assert!(
            (report.encryption_slowdown_pct - 38.0).abs() < 5.0,
            "{}",
            report.encryption_slowdown_pct
        );
        assert!(
            (report.hashing_speedup_pct - 63.2).abs() < 5.0,
            "{}",
            report.hashing_speedup_pct
        );
    }

    #[test]
    fn sus_response_builder_is_exact() {
        for score in [0.0, 2.5, 50.0, 77.5, 100.0] {
            assert_eq!(sus_score(&sus_response_for(score)), score);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = replayed_study();
        let b = replayed_study();
        assert_eq!(a.nps_gen, b.nps_gen);
        assert_eq!(a.time_gen, b.time_gen);
    }
}
