//! The System Usability Scale.
//!
//! Ten Likert items (1–5). Odd items are positively phrased, even items
//! negatively; the standard scoring maps each item to 0–4 and scales the
//! sum to 0–100. A score above 68 is conventionally read as "usable".

/// One participant's answers to the ten SUS items, each in 1..=5.
pub type SusResponse = [u8; 10];

/// Computes the SUS score (0–100) for one response.
///
/// # Panics
///
/// Panics if any item lies outside 1..=5.
pub fn sus_score(response: &SusResponse) -> f64 {
    let mut sum = 0i32;
    for (i, &item) in response.iter().enumerate() {
        assert!((1..=5).contains(&item), "SUS item out of range: {item}");
        let contribution = if i % 2 == 0 {
            i32::from(item) - 1 // positively phrased (items 1,3,5,7,9)
        } else {
            5 - i32::from(item) // negatively phrased (items 2,4,6,8,10)
        };
        sum += contribution;
    }
    f64::from(sum) * 2.5
}

/// Mean SUS score across a group of respondents.
///
/// # Panics
///
/// Panics on an empty slice or out-of-range items.
pub fn mean_sus(responses: &[SusResponse]) -> f64 {
    assert!(!responses.is_empty(), "no responses");
    responses.iter().map(sus_score).sum::<f64>() / responses.len() as f64
}

/// The conventional usability threshold (Brooke / Bangor): systems above
/// 68 are considered usable.
pub const USABLE_THRESHOLD: f64 = 68.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_scores() {
        // Best possible: all positives 5, all negatives 1.
        assert_eq!(sus_score(&[5, 1, 5, 1, 5, 1, 5, 1, 5, 1]), 100.0);
        // Worst possible.
        assert_eq!(sus_score(&[1, 5, 1, 5, 1, 5, 1, 5, 1, 5]), 0.0);
        // All-neutral.
        assert_eq!(sus_score(&[3; 10]), 50.0);
    }

    #[test]
    fn known_mixed_example() {
        // positives: 4,4,4,4,4 → 3 each = 15; negatives: 2,2,2,2,2 → 3
        // each = 15; total 30 × 2.5 = 75.
        assert_eq!(sus_score(&[4, 2, 4, 2, 4, 2, 4, 2, 4, 2]), 75.0);
    }

    #[test]
    fn mean_over_group() {
        let group = [[5, 1, 5, 1, 5, 1, 5, 1, 5, 1], [3; 10]];
        assert_eq!(mean_sus(&group), 75.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        sus_score(&[0, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
    }
}
