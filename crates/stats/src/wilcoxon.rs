//! The Wilcoxon signed-rank test for paired samples.
//!
//! For small samples (n ≤ 25 non-zero differences) the exact two-sided
//! p-value is computed by enumerating the distribution of the rank-sum
//! statistic with dynamic programming; larger samples use the normal
//! approximation with tie and continuity corrections.

/// The outcome of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// The smaller of the positive/negative rank sums (the W statistic).
    pub w: f64,
    /// Number of non-zero paired differences.
    pub n: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Whether the exact distribution was used (vs. normal approximation).
    pub exact: bool,
}

/// Runs the two-sided Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (the standard treatment); ties among the
/// absolute differences receive mid-ranks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w: 0.0,
            n: 0,
            p_value: 1.0,
            exact: true,
        };
    }
    // Rank |d|, mid-ranks for ties.
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).expect("no NaN"));
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && abs[j + 1] == abs[i] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let w_minus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d < 0.0)
        .map(|(_, r)| *r)
        .sum();
    let w = w_plus.min(w_minus);

    let has_ties = {
        let mut sorted = abs.clone();
        sorted.dedup();
        sorted.len() != n
    };

    // Exact test requires integer rank sums (no mid-ranks).
    if n <= 25 && !has_ties {
        let p = exact_p(w as usize, n);
        WilcoxonResult {
            w,
            n,
            p_value: p.min(1.0),
            exact: true,
        }
    } else {
        let nf = n as f64;
        let mean = nf * (nf + 1.0) / 4.0;
        let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0;
        // Continuity correction.
        let z = (w - mean + 0.5) / var.sqrt();
        let p = 2.0 * normal_cdf(z);
        WilcoxonResult {
            w,
            n,
            p_value: p.min(1.0),
            exact: false,
        }
    }
}

/// Exact two-sided p-value: P(W ≤ w) under H0, doubled.
fn exact_p(w: usize, n: usize) -> f64 {
    // counts[s] = number of sign assignments with rank-sum s.
    let max_sum = n * (n + 1) / 2;
    let mut counts = vec![0u128; max_sum + 1];
    counts[0] = 1;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: u128 = 1u128 << n;
    let le_w: u128 = counts.iter().take(w + 1).sum();
    let p = 2.0 * (le_w as f64) / (total as f64);
    p.min(1.0)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| ≤ 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn textbook_example_exact() {
        // Classic example: n=10, all differences positive ⇒ W = 0,
        // exact two-sided p = 2/2^10 ≈ 0.00195.
        let a = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 26.0, 28.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 9.5];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.exact);
        assert_eq!(r.w, 0.0);
        assert!((r.p_value - 2.0 / 1024.0).abs() < 1e-12, "{}", r.p_value);
    }

    #[test]
    fn mixed_signs_moderate_p() {
        let a = [5.0, 3.0, 8.0, 6.0, 2.0, 7.0];
        let b = [4.0, 5.0, 6.0, 7.0, 1.0, 6.5];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.05, "{}", r.p_value);
    }

    #[test]
    fn strong_effect_with_n16_is_significant() {
        // 16 participants, consistent improvement — like the paper's SUS
        // comparison (p = 0.005).
        let new: Vec<f64> = (0..16).map(|i| 70.0 + (i % 5) as f64 * 3.0).collect();
        let old: Vec<f64> = (0..16).map(|i| 45.0 + (i % 7) as f64 * 2.0).collect();
        let r = wilcoxon_signed_rank(&new, &old);
        assert!(r.p_value < 0.01, "{}", r.p_value);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ties_fall_back_to_normal_approximation() {
        let a = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]; // all diffs equal
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(!r.exact);
        assert!(r.p_value < 0.05);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_panic() {
        wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
