//! Latin-square task assignment, as used by the study design (paper §5.4)
//! to avoid learning and carry-over effects.

/// One participant's assignment: which tool handles which task, in which
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Participant index.
    pub participant: usize,
    /// `(task index, tool index)` pairs in execution order.
    pub sequence: [(usize, usize); 2],
}

/// Builds a balanced assignment of `participants` over two tasks and two
/// tools: every combination of (task order × tool-task pairing) appears
/// equally often — the 2×2 latin-square counterbalancing the paper uses.
///
/// # Panics
///
/// Panics unless `participants` is a positive multiple of 4 (the number
/// of distinct conditions).
pub fn latin_square_assignment(participants: usize) -> Vec<Assignment> {
    assert!(
        participants > 0 && participants.is_multiple_of(4),
        "participant count must be a positive multiple of 4"
    );
    // The four counterbalanced conditions:
    //   (first task, tool for first task) — the other task/tool follow.
    const CONDITIONS: [[(usize, usize); 2]; 4] = [
        [(0, 0), (1, 1)],
        [(0, 1), (1, 0)],
        [(1, 0), (0, 1)],
        [(1, 1), (0, 0)],
    ];
    (0..participants)
        .map(|p| Assignment {
            participant: p,
            sequence: CONDITIONS[p % 4],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_participants_are_perfectly_balanced() {
        let a = latin_square_assignment(16);
        assert_eq!(a.len(), 16);
        // Each condition appears exactly 4 times.
        for cond in 0..4 {
            let count = a
                .iter()
                .filter(|x| x.sequence == latin_square_assignment(4)[cond].sequence)
                .count();
            assert_eq!(count, 4);
        }
        // Every participant sees both tasks and both tools exactly once.
        for x in &a {
            let tasks: Vec<usize> = x.sequence.iter().map(|(t, _)| *t).collect();
            let tools: Vec<usize> = x.sequence.iter().map(|(_, t)| *t).collect();
            assert_eq!(
                {
                    let mut s = tasks.clone();
                    s.sort_unstable();
                    s
                },
                vec![0, 1]
            );
            assert_eq!(
                {
                    let mut s = tools.clone();
                    s.sort_unstable();
                    s
                },
                vec![0, 1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn non_multiple_of_four_panics() {
        latin_square_assignment(6);
    }
}
