//! Statistics toolkit for the paper's user-study evaluation (RQ5).
//!
//! The paper measures usability with the System Usability Scale (SUS) and
//! the Net Promoter Score (NPS), assigns tasks in a latin-square design,
//! and tests significance with the Wilcoxon signed-rank test for paired
//! data. Human subjects cannot be re-run, so this crate reproduces the
//! *statistics pipeline*: [`study::replayed_study`] synthesizes a
//! 16-participant dataset consistent with the paper's reported aggregates
//! and re-derives every reported number (SUS 76.3 vs 50.8, NPS 56.3 vs
//! −43.7, p = 0.005 on usability, p > 0.05 on completion times).

pub mod latin;
pub mod nps;
pub mod study;
pub mod sus;
pub mod wilcoxon;

pub use nps::net_promoter_score;
pub use sus::sus_score;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
