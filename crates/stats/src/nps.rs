//! The Net Promoter Score.
//!
//! Respondents rate likelihood-to-recommend on 0–10. Ratings 9–10 are
//! promoters, 0–6 detractors, 7–8 passives. The score is
//! `%promoters − %detractors`, ranging −100..=100. The paper reads values
//! below 0 as unsatisfactory and above 50 as excellent.

/// Computes the NPS for a set of 0–10 ratings.
///
/// # Panics
///
/// Panics on an empty slice or a rating above 10.
pub fn net_promoter_score(ratings: &[u8]) -> f64 {
    assert!(!ratings.is_empty(), "no ratings");
    let mut promoters = 0usize;
    let mut detractors = 0usize;
    for &r in ratings {
        assert!(r <= 10, "rating out of range: {r}");
        if r >= 9 {
            promoters += 1;
        } else if r <= 6 {
            detractors += 1;
        }
    }
    let n = ratings.len() as f64;
    (promoters as f64 / n - detractors as f64 / n) * 100.0
}

/// Threshold below which a system counts as unsatisfactory.
pub const UNSATISFACTORY: f64 = 0.0;
/// Threshold above which satisfaction counts as excellent.
pub const EXCELLENT: f64 = 50.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_promoters_and_all_detractors() {
        assert_eq!(net_promoter_score(&[9, 10, 9, 10]), 100.0);
        assert_eq!(net_promoter_score(&[0, 3, 6, 5]), -100.0);
    }

    #[test]
    fn passives_do_not_count() {
        assert_eq!(net_promoter_score(&[7, 8, 7, 8]), 0.0);
    }

    #[test]
    fn mixed_population() {
        // 2 promoters, 1 passive, 1 detractor of 4 → 50% − 25% = 25.
        assert_eq!(net_promoter_score(&[9, 10, 8, 2]), 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rating_above_ten_panics() {
        net_promoter_score(&[11]);
    }
}
