//! Compile-once/reuse-many artefacts for ORDER patterns.
//!
//! CrySL treats rules as stable, reusable specifications, yet the
//! generator's hot path used to rebuild each rule's NFA → DFA →
//! minimization → path enumeration on every run. This module memoizes
//! that work: a [`CompiledOrder`] bundles the minimized [`Dfa`] with the
//! enumerated accepting paths, and an [`OrderCache`] keys the artefacts
//! by a content hash ([`order_fingerprint`]) of everything compilation
//! reads — the `EVENTS` declarations and the `ORDER` expression.
//!
//! Because the key is derived from the artefact's *entire* input, a
//! stale hit is impossible by construction: any edit to an event list or
//! ORDER pattern changes the fingerprint, and two rules with the same
//! fingerprint have byte-identical compilation inputs, hence structurally
//! equal artefacts. Rules that differ only in sections compilation never
//! reads (`SPEC` name, constraints, predicates) intentionally share an
//! entry.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crysl::ast::{EventDecl, OrderExpr, Rule};

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateMachineError};
use crate::paths::{enumerate, PathLimit};

/// 64-bit FNV-1a over a byte string (in-repo; no external hash deps).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A [`std::fmt::Write`] sink that folds everything written into an
/// FNV-1a-64 accumulator — fingerprinting without building the
/// canonical string. [`order_fingerprint`] sits on every cached ORDER
/// lookup, so the allocation-free path is worth having.
struct FnvSink(u64);

impl std::fmt::Write for FnvSink {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// Streams the canonical ORDER rendering (identical to
/// `crysl::printer::print_order`) into `w`.
fn write_order(w: &mut impl std::fmt::Write, e: &OrderExpr) {
    match e {
        OrderExpr::Empty => {}
        OrderExpr::Label(l) => {
            let _ = w.write_str(l);
        }
        OrderExpr::Seq(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    let _ = w.write_str(", ");
                }
                write_order_atomized(w, p);
            }
        }
        OrderExpr::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    let _ = w.write_str(" | ");
                }
                write_order_atomized(w, p);
            }
        }
        OrderExpr::Opt(x) => {
            write_order_atomized(w, x);
            let _ = w.write_str("?");
        }
        OrderExpr::Star(x) => {
            write_order_atomized(w, x);
            let _ = w.write_str("*");
        }
        OrderExpr::Plus(x) => {
            write_order_atomized(w, x);
            let _ = w.write_str("+");
        }
    }
}

fn write_order_atomized(w: &mut impl std::fmt::Write, e: &OrderExpr) {
    match e {
        OrderExpr::Label(_)
        | OrderExpr::Empty
        | OrderExpr::Opt(_)
        | OrderExpr::Star(_)
        | OrderExpr::Plus(_) => write_order(w, e),
        _ => {
            let _ = w.write_str("(");
            write_order(w, e);
            let _ = w.write_str(")");
        }
    }
}

/// Content hash of the rule sections ORDER compilation depends on: the
/// `EVENTS` declarations (labels, return bindings, method names,
/// parameter patterns, aggregates) and the `ORDER` expression.
///
/// The serialization uses unambiguous separators, so two rules hash
/// equal exactly when their compilation inputs are textually identical
/// in canonical form.
pub fn order_fingerprint(rule: &Rule) -> u64 {
    let mut sink = FnvSink(0xcbf2_9ce4_8422_2325);
    for e in &rule.events {
        match e {
            EventDecl::Method(m) => {
                let _ = write!(sink, "{}:", m.label);
                if let Some(rv) = &m.return_var {
                    let _ = write!(sink, "{rv}=");
                }
                let _ = write!(sink, "{}(", m.method_name);
                for (i, p) in m.params.iter().enumerate() {
                    if i > 0 {
                        let _ = sink.write_str(",");
                    }
                    let _ = write!(sink, "{p}");
                }
                let _ = sink.write_str(")");
            }
            EventDecl::Aggregate { label, members } => {
                let _ = write!(sink, "{label}:=");
                for (i, member) in members.iter().enumerate() {
                    if i > 0 {
                        let _ = sink.write_str("|");
                    }
                    let _ = sink.write_str(member);
                }
            }
        }
        let _ = sink.write_str(";");
    }
    // Unit separator between the EVENTS and ORDER sections, so content
    // cannot migrate across the boundary and collide.
    let _ = sink.write_str("\u{1f}");
    write_order(&mut sink, &rule.order);
    sink.0
}

/// The memoized compilation of one rule's ORDER pattern: its content
/// fingerprint, the minimized DFA, and the enumerated accepting paths
/// (shortest-first, as [`enumerate`] orders them).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledOrder {
    /// [`order_fingerprint`] of the rule this was compiled from.
    pub fingerprint: u64,
    /// Minimized DFA over the rule's method-event labels.
    pub dfa: Dfa,
    /// Accepting call sequences with repetition unrolled.
    pub paths: Vec<Vec<String>>,
}

impl CompiledOrder {
    /// Runs the full NFA → DFA → minimization → enumeration pipeline.
    ///
    /// # Errors
    ///
    /// Propagates [`StateMachineError`] from NFA construction, bounded
    /// DFA construction ([`CompiledOrder::DFA_STATE_LIMIT`] states), or
    /// path enumeration.
    pub fn compile(rule: &Rule) -> Result<CompiledOrder, StateMachineError> {
        let nfa = Nfa::from_rule(rule)?;
        Ok(CompiledOrder {
            fingerprint: order_fingerprint(rule),
            dfa: Dfa::try_from_nfa(&nfa, Self::DFA_STATE_LIMIT)?.minimize(),
            paths: enumerate(rule, PathLimit::default())?,
        })
    }

    /// Subset-construction state bound applied by [`CompiledOrder::compile`].
    /// Orders of magnitude above any real rule (the JCA rule set peaks
    /// below a hundred states), it turns an exponential blow-up on a
    /// hostile `ORDER` into a reported error.
    pub const DFA_STATE_LIMIT: usize = 65_536;
}

/// How an [`OrderCache`] lookup was served — reported by
/// [`OrderCache::get_or_compile_traced`] so callers can feed telemetry
/// without re-deriving it from counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Served from an existing entry.
    Hit,
    /// Compiled on this lookup.
    Miss,
}

/// Observability counters for an [`OrderCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct compiled artefacts currently held.
    pub entries: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

/// A thread-safe, fingerprint-keyed cache of [`CompiledOrder`]s.
///
/// Concurrent callers may race to compile the same fingerprint; the
/// first inserted artefact wins and every caller observes it. Since the
/// artefact is a deterministic function of the fingerprinted content,
/// the race is benign.
#[derive(Debug, Default)]
pub struct OrderCache {
    inner: RwLock<HashMap<u64, Arc<CompiledOrder>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OrderCache {
    /// An empty cache.
    pub fn new() -> Self {
        OrderCache::default()
    }

    /// Returns the compiled artefact for `rule`, compiling and caching
    /// it on first sight of the rule's fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates [`StateMachineError`] from compilation. Failures are
    /// not cached; a later call retries.
    pub fn get_or_compile(&self, rule: &Rule) -> Result<Arc<CompiledOrder>, StateMachineError> {
        self.get_or_compile_traced(rule)
            .map(|(artefact, _)| artefact)
    }

    /// [`OrderCache::get_or_compile`] that also reports whether the
    /// lookup hit or compiled, for telemetry.
    ///
    /// # Errors
    ///
    /// See [`OrderCache::get_or_compile`].
    pub fn get_or_compile_traced(
        &self,
        rule: &Rule,
    ) -> Result<(Arc<CompiledOrder>, CacheLookup), StateMachineError> {
        let fp = order_fingerprint(rule);
        if let Some(hit) = self.read_lock().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), CacheLookup::Hit));
        }
        // Compile outside the lock so a slow rule never serializes
        // unrelated lookups.
        let compiled = Arc::new(CompiledOrder::compile(rule)?);
        debug_assert_eq!(compiled.fingerprint, fp);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ok((map.entry(fp).or_insert(compiled).clone(), CacheLookup::Miss))
    }

    /// Inserts pre-compiled artefacts (e.g. deserialized from a rule
    /// pack) without running compilation, returning how many entries
    /// were actually added. An artefact whose fingerprint is already
    /// cached is skipped — the first entry wins, mirroring the benign
    /// race in [`OrderCache::get_or_compile_traced`]. Seeding counts as
    /// neither a hit nor a miss; subsequent lookups for seeded
    /// fingerprints are hits, which is how pack-boot callers verify the
    /// cold path compiled nothing.
    pub fn seed<A>(&self, artefacts: impl IntoIterator<Item = A>) -> usize
    where
        A: Into<Arc<CompiledOrder>>,
    {
        let mut map = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let before = map.len();
        for artefact in artefacts {
            let artefact = artefact.into();
            map.entry(artefact.fingerprint).or_insert(artefact);
        }
        map.len() - before
    }

    /// The fingerprints of every artefact currently held, sorted.
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self.read_lock().keys().copied().collect();
        fps.sort_unstable();
        fps
    }

    /// Drops every artefact whose fingerprint `keep` rejects, returning
    /// how many entries were removed. This is the hot-reload
    /// invalidation primitive: after swapping in a new rule set, retain
    /// exactly the fingerprints the new set produces and every entry
    /// belonging to a changed or removed ORDER is gone, while entries
    /// for unchanged rules survive warm. Because lookups key on the
    /// content hash of the compilation input, even an entry that
    /// escaped pruning could never serve a rule it wasn't compiled
    /// from — pruning bounds memory, the key guarantees freshness.
    pub fn retain_fingerprints(&self, keep: impl Fn(u64) -> bool) -> usize {
        let mut map = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let before = map.len();
        map.retain(|fp, _| keep(*fp));
        before - map.len()
    }

    /// Current entry and hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.read_lock().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct artefacts held.
    pub fn len(&self) -> usize {
        self.read_lock().len()
    }

    /// Whether the cache holds no artefacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn read_lock(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u64, Arc<CompiledOrder>>> {
        match self.inner.read() {
            Ok(g) => g,
            // The map is never left mid-mutation (plain HashMap ops), so
            // recovering from a poisoned lock is sound and keeps sibling
            // batch workers alive after one worker panics.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    fn rule(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_across_reparses() {
        let src = "SPEC X\nEVENTS a: f(); b: g(_);\nORDER a, b?";
        assert_eq!(order_fingerprint(&rule(src)), order_fingerprint(&rule(src)));
    }

    /// The streaming fingerprint must hash the exact bytes the original
    /// string-building implementation produced; pack files persist these
    /// values, so any drift silently invalidates every shipped pack.
    #[test]
    fn streamed_fingerprint_matches_the_string_built_reference() {
        let reference = |r: &Rule| -> u64 {
            let mut buf = String::new();
            for e in &r.events {
                match e {
                    EventDecl::Method(m) => {
                        let _ = write!(buf, "{}:", m.label);
                        if let Some(rv) = &m.return_var {
                            let _ = write!(buf, "{rv}=");
                        }
                        let _ = write!(buf, "{}(", m.method_name);
                        for (i, p) in m.params.iter().enumerate() {
                            if i > 0 {
                                buf.push(',');
                            }
                            let _ = write!(buf, "{p}");
                        }
                        buf.push(')');
                    }
                    EventDecl::Aggregate { label, members } => {
                        let _ = write!(buf, "{label}:={}", members.join("|"));
                    }
                }
                buf.push(';');
            }
            buf.push('\u{1f}');
            buf.push_str(&crysl::printer::print_order(&r.order));
            fnv1a_64(buf.as_bytes())
        };

        for src in [
            "SPEC X\nEVENTS a: f(); b: g(_);\nORDER a, b?",
            "SPEC X\nOBJECTS int r;\nEVENTS a: r = f(); b: g(r, _); c: h();\n\
             Any := a | b;\nORDER Any, (b | c)+, a*",
            "SPEC p.q.Y\nEVENTS a: f(); b: g(); c: h(); d: i();\n\
             ORDER (a, b)?, ((c | d), a)+",
            "SPEC Z\nEVENTS a: f();\nORDER a",
        ] {
            let r = rule(src);
            assert_eq!(
                order_fingerprint(&r),
                reference(&r),
                "streamed fingerprint diverged for `{src}`"
            );
        }
    }

    #[test]
    fn fingerprint_ignores_sections_compilation_never_reads() {
        let a = rule(
            "SPEC a.X\nOBJECTS int k;\nEVENTS a: f(); b: g();\nORDER a, b\nCONSTRAINTS k >= 1;",
        );
        let b = rule("SPEC other.Y\nEVENTS a: f(); b: g();\nORDER a, b");
        assert_eq!(order_fingerprint(&a), order_fingerprint(&b));
        assert_eq!(
            CompiledOrder::compile(&a).unwrap().dfa,
            CompiledOrder::compile(&b).unwrap().dfa
        );
    }

    #[test]
    fn fingerprint_changes_with_order_and_events() {
        let base = rule("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        for other in [
            "SPEC X\nEVENTS a: f(); b: g();\nORDER b, a",
            "SPEC X\nEVENTS a: f(); b: g();\nORDER a, b?",
            "SPEC X\nEVENTS a: f(); b: g(_);\nORDER a, b",
            "SPEC X\nEVENTS a: f(); b: h();\nORDER a, b",
            "SPEC X\nOBJECTS int r;\nEVENTS a: r = f(); b: g();\nORDER a, b",
            "SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER a, b",
        ] {
            assert_ne!(
                order_fingerprint(&base),
                order_fingerprint(&rule(other)),
                "{other}"
            );
        }
    }

    #[test]
    fn compiled_artifact_matches_direct_pipeline() {
        let r = rule("SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER a, (b | c), b?");
        let compiled = CompiledOrder::compile(&r).unwrap();
        assert_eq!(compiled.paths, enumerate(&r, PathLimit::default()).unwrap());
        for p in &compiled.paths {
            assert!(compiled.dfa.accepts(p.iter().map(String::as_str)));
        }
    }

    #[test]
    fn cache_hits_return_the_same_artifact() {
        let cache = OrderCache::new();
        let r = rule("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        let first = cache.get_or_compile(&r).unwrap();
        let second = cache.get_or_compile(&r).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn cache_shares_entries_across_content_equal_rules() {
        let cache = OrderCache::new();
        let a = rule("SPEC a.X\nEVENTS a: f(); b: g();\nORDER a, b");
        let b = rule("SPEC b.Y\nEVENTS a: f(); b: g();\nORDER a, b");
        let ca = cache.get_or_compile(&a).unwrap();
        let cb = cache.get_or_compile(&b).unwrap();
        assert!(Arc::ptr_eq(&ca, &cb));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_distinguishes_different_orders() {
        let cache = OrderCache::new();
        cache
            .get_or_compile(&rule("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b"))
            .unwrap();
        cache
            .get_or_compile(&rule("SPEC X\nEVENTS a: f(); b: g();\nORDER b, a"))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = OrderCache::new();
        let bad = rule("SPEC X\nEVENTS a: f();\nORDER a");
        // Force an unknown-label failure by compiling a rule whose ORDER
        // references a label the events cannot resolve.
        let mut broken = bad.clone();
        broken.order = crysl::ast::OrderExpr::Label("zz".to_owned());
        assert!(cache.get_or_compile(&broken).is_err());
        assert!(cache.is_empty());
        assert!(cache.get_or_compile(&bad).is_ok());
    }

    #[test]
    fn retain_fingerprints_drops_exactly_the_rejected_entries() {
        let cache = OrderCache::new();
        let kept = rule("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        let dropped = rule("SPEC X\nEVENTS a: f(); b: g();\nORDER b, a");
        let kept_art = cache.get_or_compile(&kept).unwrap();
        cache.get_or_compile(&dropped).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.fingerprints().len(), 2);

        let keep_fp = order_fingerprint(&kept);
        let removed = cache.retain_fingerprints(|fp| fp == keep_fp);
        assert_eq!(removed, 1);
        assert_eq!(cache.fingerprints(), vec![keep_fp]);

        // The surviving entry still serves warm (same Arc, a hit)...
        let hits_before = cache.stats().hits;
        let again = cache.get_or_compile(&kept).unwrap();
        assert!(Arc::ptr_eq(&kept_art, &again));
        assert_eq!(cache.stats().hits, hits_before + 1);
        // ...and the invalidated rule recompiles from scratch.
        let misses_before = cache.stats().misses;
        cache.get_or_compile(&dropped).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn seeded_artefacts_serve_as_hits_without_compiling() {
        let cache = OrderCache::new();
        let r = rule("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        let artefact = CompiledOrder::compile(&r).unwrap();
        assert_eq!(cache.seed([artefact.clone()]), 1);
        // Re-seeding the same fingerprint is a no-op: first entry wins.
        assert_eq!(cache.seed([artefact.clone()]), 0);

        let (served, lookup) = cache.get_or_compile_traced(&r).unwrap();
        assert_eq!(lookup, CacheLookup::Hit);
        assert_eq!(*served, artefact);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 0));
    }

    #[test]
    fn concurrent_lookups_converge_on_one_artifact() {
        let cache = OrderCache::new();
        let r = rule("SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER a, (b | c)+");
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_compile(&r).unwrap()))
                .collect();
            let arcs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for a in &arcs[1..] {
                assert_eq!(**a, *arcs[0]);
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
