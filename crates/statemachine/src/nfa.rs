//! Thompson construction of an NFA from a CrySL `ORDER` expression.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crysl::ast::{EventDecl, OrderExpr, Rule};

/// Errors produced while building or exploring a state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMachineError {
    /// An `ORDER` label did not resolve to any concrete method event.
    UnknownLabel(String),
    /// Path enumeration exceeded the configured limit.
    TooManyPaths {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// DFA subset construction exceeded the configured state limit.
    TooManyStates {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for StateMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateMachineError::UnknownLabel(l) => {
                write!(f, "ORDER label `{l}` resolves to no method event")
            }
            StateMachineError::TooManyPaths { limit } => {
                write!(f, "path enumeration exceeded limit of {limit}")
            }
            StateMachineError::TooManyStates { limit } => {
                write!(f, "DFA construction exceeded limit of {limit} states")
            }
        }
    }
}

impl Error for StateMachineError {}

/// A transition on a concrete method-event label, or an epsilon move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: usize,
    /// Label, or `None` for an epsilon transition.
    pub label: Option<String>,
    /// Target state.
    pub to: usize,
}

/// A nondeterministic finite automaton over method-event labels.
///
/// States are dense indices; `start` is always state 0 of the construction.
#[derive(Debug, Clone)]
pub struct Nfa {
    state_count: usize,
    start: usize,
    accept: usize,
    transitions: Vec<Transition>,
}

impl Nfa {
    /// Builds the NFA for a rule's `ORDER` pattern.
    ///
    /// Aggregate labels are expanded to alternatives over their concrete
    /// method events, so the automaton's alphabet consists solely of
    /// method-event labels. A rule without an `ORDER` section yields an
    /// automaton accepting any sequence of the rule's events (the CrySL
    /// semantics of an unconstrained usage pattern).
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::UnknownLabel`] if a label resolves to no
    /// method event (validation normally rules this out).
    pub fn from_rule(rule: &Rule) -> Result<Nfa, StateMachineError> {
        let order = match &rule.order {
            OrderExpr::Empty => {
                // No ORDER: every event may occur any number of times.
                let labels: Vec<OrderExpr> = rule
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        EventDecl::Method(m) => Some(OrderExpr::Label(m.label.clone())),
                        EventDecl::Aggregate { .. } => None,
                    })
                    .collect();
                if labels.is_empty() {
                    OrderExpr::Empty
                } else {
                    OrderExpr::Star(Box::new(OrderExpr::Alt(labels)))
                }
            }
            other => other.clone(),
        };
        let mut builder = Builder {
            rule,
            next_state: 0,
            transitions: Vec::new(),
        };
        let start = builder.fresh();
        let accept = builder.fresh();
        builder.build(&order, start, accept)?;
        Ok(Nfa {
            state_count: builder.next_state,
            start,
            accept,
            transitions: builder.transitions,
        })
    }

    /// The initial state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The (single) accepting state of the Thompson construction.
    pub fn accept(&self) -> usize {
        self.accept
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The epsilon closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut frontier: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = frontier.pop() {
            for t in &self.transitions {
                if t.from == s && t.label.is_none() && closure.insert(t.to) {
                    frontier.push(t.to);
                }
            }
        }
        closure
    }

    /// States reachable from `states` by consuming `label` (no closure
    /// applied to the result).
    pub fn move_on(&self, states: &BTreeSet<usize>, label: &str) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for t in &self.transitions {
            if states.contains(&t.from) && t.label.as_deref() == Some(label) {
                out.insert(t.to);
            }
        }
        out
    }

    /// The alphabet: every distinct transition label, sorted.
    pub fn alphabet(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self
            .transitions
            .iter()
            .filter_map(|t| t.label.as_deref())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }
}

struct Builder<'r> {
    rule: &'r Rule,
    next_state: usize,
    transitions: Vec<Transition>,
}

impl Builder<'_> {
    fn fresh(&mut self) -> usize {
        let s = self.next_state;
        self.next_state += 1;
        s
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.transitions.push(Transition {
            from,
            label: None,
            to,
        });
    }

    fn sym(&mut self, from: usize, label: &str, to: usize) {
        self.transitions.push(Transition {
            from,
            label: Some(label.to_owned()),
            to,
        });
    }

    fn build(&mut self, e: &OrderExpr, from: usize, to: usize) -> Result<(), StateMachineError> {
        match e {
            OrderExpr::Empty => {
                self.eps(from, to);
            }
            OrderExpr::Label(l) => {
                let events = self.rule.resolve_label(l);
                if events.is_empty() {
                    return Err(StateMachineError::UnknownLabel(l.clone()));
                }
                for m in events {
                    let label = m.label.clone();
                    self.sym(from, &label, to);
                }
            }
            OrderExpr::Seq(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i == parts.len() - 1 {
                        to
                    } else {
                        self.fresh()
                    };
                    self.build(p, cur, next)?;
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps(from, to);
                }
            }
            OrderExpr::Alt(parts) => {
                for p in parts {
                    self.build(p, from, to)?;
                }
                if parts.is_empty() {
                    self.eps(from, to);
                }
            }
            OrderExpr::Opt(inner) => {
                self.eps(from, to);
                self.build(inner, from, to)?;
            }
            OrderExpr::Star(inner) => {
                let s = self.fresh();
                self.eps(from, s);
                self.eps(s, to);
                self.build(inner, s, s)?;
            }
            OrderExpr::Plus(inner) => {
                let s = self.fresh();
                self.build(inner, from, s)?;
                self.eps(s, to);
                self.build(inner, s, s)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    fn nfa(src: &str) -> Nfa {
        Nfa::from_rule(&parse_rule(src).unwrap()).unwrap()
    }

    #[test]
    fn sequence_builds_linear_chain() {
        let n = nfa("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        assert_eq!(n.alphabet(), vec!["a", "b"]);
        // Simulate: start --a--> --b--> accept
        let s0 = n.epsilon_closure(&BTreeSet::from([n.start()]));
        let s1 = n.epsilon_closure(&n.move_on(&s0, "a"));
        let s2 = n.epsilon_closure(&n.move_on(&s1, "b"));
        assert!(s2.contains(&n.accept()));
        assert!(!s1.contains(&n.accept()));
    }

    #[test]
    fn aggregates_expand_to_member_labels() {
        let n = nfa("SPEC X\nEVENTS g1: f(); g2: f(_); G := g1 | g2;\nORDER G");
        assert_eq!(n.alphabet(), vec!["g1", "g2"]);
    }

    #[test]
    fn missing_order_allows_any_event_sequence() {
        let n = nfa("SPEC X\nEVENTS a: f(); b: g();");
        let mut states = n.epsilon_closure(&BTreeSet::from([n.start()]));
        assert!(states.contains(&n.accept())); // empty word accepted
        for label in ["b", "a", "b", "b"] {
            states = n.epsilon_closure(&n.move_on(&states, label));
            assert!(states.contains(&n.accept()));
        }
    }

    #[test]
    fn star_loops_back() {
        let n = nfa("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b*");
        let s0 = n.epsilon_closure(&BTreeSet::from([n.start()]));
        let mut s = n.epsilon_closure(&n.move_on(&s0, "a"));
        assert!(s.contains(&n.accept()));
        for _ in 0..3 {
            s = n.epsilon_closure(&n.move_on(&s, "b"));
            assert!(s.contains(&n.accept()));
        }
    }

    #[test]
    fn plus_requires_at_least_one() {
        let n = nfa("SPEC X\nEVENTS a: f();\nORDER a+");
        let s0 = n.epsilon_closure(&BTreeSet::from([n.start()]));
        assert!(!s0.contains(&n.accept()));
        let s1 = n.epsilon_closure(&n.move_on(&s0, "a"));
        assert!(s1.contains(&n.accept()));
        let s2 = n.epsilon_closure(&n.move_on(&s1, "a"));
        assert!(s2.contains(&n.accept()));
    }
}
