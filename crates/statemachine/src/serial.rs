//! Binary (de)serialization of compiled ORDER artefacts — the
//! statemachine half of precompiled rule packs.
//!
//! A serialized [`CompiledOrder`] carries its content fingerprint, a
//! label table, the minimized DFA (transition table + accepting mask)
//! and the enumerated accepting paths, in the same fixed-width
//! little-endian byte dialect as `crysl::binfmt`. Every distinct
//! method-event label is written once, in the table; the DFA edges and
//! path elements refer to it by `u16` index. Labels repeat heavily —
//! every enumerated path re-walks the same small alphabet — so
//! interning both shrinks artefacts and turns most decode-side string
//! reads into clones of an already-validated table entry.
//!
//! Deserialization treats the input as hostile: every transition
//! target is checked against the declared state count, every label
//! index against the table, and every count against the remaining
//! bytes, so a corrupt artefact becomes a typed [`CryslError::Pack`],
//! never a panic or an out-of-bounds automaton.

use std::collections::BTreeMap;

use crysl::binfmt::{Reader, Writer};
use crysl::CryslError;

use crate::compile::CompiledOrder;
use crate::dfa::Dfa;

/// The distinct labels of a DFA's transitions and an artefact's paths,
/// in first-occurrence order, with the index of each.
fn label_table(artefact: &CompiledOrder) -> (Vec<&str>, BTreeMap<&str, u16>) {
    let (transitions, _) = artefact.dfa.parts();
    let all = transitions
        .iter()
        .flat_map(|row| row.keys().map(String::as_str))
        .chain(artefact.paths.iter().flatten().map(String::as_str));
    let mut table: Vec<&str> = Vec::new();
    let mut index: BTreeMap<&str, u16> = BTreeMap::new();
    for label in all {
        if !index.contains_key(label) {
            let idx = u16::try_from(table.len())
                .expect("more than 65535 distinct labels in one ORDER artefact");
            index.insert(label, idx);
            table.push(label);
        }
    }
    (table, index)
}

/// Reads one `u16` label index and resolves it against `table`.
fn read_label(r: &mut Reader<'_>, table: &[String]) -> Result<String, CryslError> {
    let idx = r.u16()? as usize;
    table.get(idx).cloned().ok_or_else(|| {
        CryslError::pack(format!(
            "label index {idx} out of range (table has {} entries)",
            table.len()
        ))
    })
}

/// Encodes a DFA into `w`, transition labels as indices into the
/// artefact's label table. The inverse of [`read_dfa`].
fn write_dfa(w: &mut Writer, dfa: &Dfa, index: &BTreeMap<&str, u16>) {
    let (transitions, accepting) = dfa.parts();
    w.count(transitions.len());
    for row in transitions {
        w.count(row.len());
        for (label, target) in row {
            w.u16(index[label.as_str()]);
            w.u32(*target as u32);
        }
    }
    for &acc in accepting {
        w.u8(u8::from(acc));
    }
}

/// Decodes a DFA from `r`, validating structural invariants: the
/// accepting mask matches the state count, every transition target
/// names an existing state, and every label index is in `table`.
///
/// # Errors
///
/// Returns [`CryslError::Pack`] on truncation, an out-of-range
/// transition target or label index, or a malformed accepting flag.
fn read_dfa(r: &mut Reader<'_>, table: &[String]) -> Result<Dfa, CryslError> {
    let states = r.count()?;
    let mut transitions = Vec::with_capacity(states);
    for _ in 0..states {
        let edges = r.count()?;
        let mut row = BTreeMap::new();
        for _ in 0..edges {
            let label = read_label(r, table)?;
            let target = r.u32()? as usize;
            if target >= states {
                return Err(CryslError::pack(format!(
                    "DFA transition to state {target} but only {states} states exist"
                )));
            }
            row.insert(label, target);
        }
        transitions.push(row);
    }
    let mut accepting = Vec::with_capacity(states);
    for _ in 0..states {
        match r.u8()? {
            0 => accepting.push(false),
            1 => accepting.push(true),
            tag => {
                return Err(CryslError::pack(format!(
                    "invalid DFA accepting flag {tag} at offset {}",
                    r.position()
                )))
            }
        }
    }
    if states == 0 {
        return Err(CryslError::pack("DFA with zero states has no start state"));
    }
    Ok(Dfa::from_parts(transitions, accepting))
}

/// Encodes a compiled ORDER artefact (fingerprint + label table + DFA
/// + paths) into `w`. The inverse of [`read_compiled_order`].
pub fn write_compiled_order(w: &mut Writer, artefact: &CompiledOrder) {
    w.u64(artefact.fingerprint);
    let (table, index) = label_table(artefact);
    w.count(table.len());
    for label in &table {
        w.str(label);
    }
    write_dfa(w, &artefact.dfa, &index);
    w.count(artefact.paths.len());
    for path in &artefact.paths {
        w.count(path.len());
        for label in path {
            w.u16(index[label.as_str()]);
        }
    }
}

/// Decodes a compiled ORDER artefact from `r`.
///
/// # Errors
///
/// Returns [`CryslError::Pack`] on any structural corruption.
pub fn read_compiled_order(r: &mut Reader<'_>) -> Result<CompiledOrder, CryslError> {
    let fingerprint = r.u64()?;
    let table_len = r.count()?;
    let mut table = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        table.push(r.str()?);
    }
    let dfa = read_dfa(r, &table)?;
    let n = r.count()?;
    let mut paths = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.count()?;
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            path.push(read_label(r, &table)?);
        }
        paths.push(path);
    }
    Ok(CompiledOrder {
        fingerprint,
        dfa,
        paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    fn artefact(src: &str) -> CompiledOrder {
        CompiledOrder::compile(&parse_rule(src).unwrap()).unwrap()
    }

    #[test]
    fn compiled_order_roundtrips_structurally_equal() {
        let a = artefact("SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER a, (b | c)+, b?");
        let mut w = Writer::new();
        write_compiled_order(&mut w, &a);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = read_compiled_order(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded, a);
        // The decoded DFA behaves identically on its own paths.
        for p in &decoded.paths {
            assert!(decoded.dfa.accepts(p.iter().map(String::as_str)));
        }
    }

    #[test]
    fn labels_are_written_once_and_resolved_by_index() {
        // Three labels across a DFA and many paths: the encoding must
        // contain each label's text exactly once.
        let a = artefact("SPEC X\nEVENTS aa: f(); bb: g(); cc: h();\nORDER aa, (bb | cc)+, bb?");
        let mut w = Writer::new();
        write_compiled_order(&mut w, &a);
        let bytes = w.into_bytes();
        for needle in [b"aa", b"bb", b"cc"] {
            let occurrences = bytes.windows(2).filter(|win| win == needle).count();
            assert_eq!(occurrences, 1, "label {needle:?} not interned");
        }
    }

    #[test]
    fn out_of_range_transition_target_is_rejected() {
        let a = artefact("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        let mut w = Writer::new();
        write_compiled_order(&mut w, &a);
        let mut bytes = w.into_bytes();
        // Corrupt every byte in turn and require a typed error or a
        // changed-but-valid decode — never a panic.
        for i in 0..bytes.len() {
            let orig = bytes[i];
            bytes[i] = orig.wrapping_add(0x80);
            let mut r = Reader::new(&bytes);
            match read_compiled_order(&mut r) {
                Ok(_) | Err(CryslError::Pack { .. }) => {}
                Err(other) => panic!("non-pack error at byte {i}: {other}"),
            }
            bytes[i] = orig;
        }
    }

    #[test]
    fn truncation_never_panics() {
        let a = artefact("SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER (a | b)*, c");
        let mut w = Writer::new();
        write_compiled_order(&mut w, &a);
        let bytes = w.into_bytes();
        for end in 0..bytes.len() {
            match read_compiled_order(&mut Reader::new(&bytes[..end])) {
                Ok(_) | Err(CryslError::Pack { .. }) => {}
                Err(other) => panic!("non-pack error at {end}: {other}"),
            }
        }
    }

    #[test]
    fn zero_state_dfa_is_rejected() {
        let mut w = Writer::new();
        w.u64(7); // fingerprint
        w.count(0); // empty label table
        w.count(0); // zero DFA states
        let err = read_compiled_order(&mut Reader::new(&w.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("zero states"), "{err}");
    }
}
