//! Deterministic finite automata via subset construction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::nfa::{Nfa, StateMachineError};

/// A deterministic finite automaton over method-event labels.
///
/// Built from an [`Nfa`] by subset construction. State 0 is the start
/// state. Used by the static analyzer to track the typestate of each
/// specified object, and by tests to check that enumerated generation
/// paths are accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    transitions: Vec<BTreeMap<String, usize>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA directly from its parts (state 0 is the start). Used
    /// by [`Dfa::minimize`] to construct the quotient automaton.
    pub(crate) fn from_parts(
        transitions: Vec<BTreeMap<String, usize>>,
        accepting: Vec<bool>,
    ) -> Dfa {
        debug_assert_eq!(transitions.len(), accepting.len());
        Dfa {
            transitions,
            accepting,
        }
    }

    /// Subset construction without a state bound. Real CrySL rules
    /// produce small automata; callers handling untrusted rules should
    /// prefer [`Dfa::try_from_nfa`].
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        match Dfa::try_from_nfa(nfa, usize::MAX) {
            Ok(dfa) => dfa,
            Err(_) => unreachable!("usize::MAX state limit cannot be exceeded"),
        }
    }

    /// Subset construction, aborting once more than `max_states` DFA
    /// states have been discovered. Subset construction is worst-case
    /// exponential in NFA size, so any consumer of untrusted `ORDER`
    /// expressions needs this bound.
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::TooManyStates`] when the bound is
    /// exceeded.
    pub fn try_from_nfa(nfa: &Nfa, max_states: usize) -> Result<Dfa, StateMachineError> {
        let start = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut worklist = vec![start];
        let mut transitions: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new()];
        let mut accepting = vec![false];
        let alphabet: Vec<String> = nfa.alphabet().iter().map(|s| (*s).to_owned()).collect();

        while let Some(set) = worklist.pop() {
            let id = index[&set];
            accepting[id] = set.contains(&nfa.accept());
            for label in &alphabet {
                let moved = nfa.move_on(&set, label);
                if moved.is_empty() {
                    continue;
                }
                let closed = nfa.epsilon_closure(&moved);
                let next_id = *index.entry(closed.clone()).or_insert_with(|| {
                    transitions.push(BTreeMap::new());
                    accepting.push(false);
                    worklist.push(closed.clone());
                    transitions.len() - 1
                });
                if transitions.len() > max_states {
                    return Err(StateMachineError::TooManyStates { limit: max_states });
                }
                transitions[id].insert(label.clone(), next_id);
            }
            // `accepting` for states discovered after their closure was
            // computed is set when they are popped; ensure start is right.
            if set.contains(&nfa.accept()) {
                accepting[id] = true;
            }
        }
        Ok(Dfa {
            transitions,
            accepting,
        })
    }

    /// The start state (always 0).
    pub fn start(&self) -> usize {
        0
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Takes one step; `None` means the word is rejected (dead state).
    pub fn step(&self, state: usize, label: &str) -> Option<usize> {
        self.transitions.get(state)?.get(label).copied()
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.get(state).copied().unwrap_or(false)
    }

    /// Runs the automaton on a word of labels.
    pub fn accepts<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let mut state = self.start();
        for label in word {
            match self.step(state, label) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.is_accepting(state)
    }

    /// The raw transition table and accepting mask, for the pack
    /// serializer ([`crate::serial`]).
    pub(crate) fn parts(&self) -> (&[BTreeMap<String, usize>], &[bool]) {
        (&self.transitions, &self.accepting)
    }

    /// The labels on which `state` has outgoing transitions.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = (&str, usize)> {
        self.transitions
            .get(state)
            .into_iter()
            .flat_map(|m| m.iter().map(|(l, &t)| (l.as_str(), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    fn dfa(src: &str) -> Dfa {
        Dfa::from_nfa(&Nfa::from_rule(&parse_rule(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_simple_sequence() {
        let d = dfa("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b");
        assert!(d.accepts(["a", "b"]));
        assert!(!d.accepts(["a"]));
        assert!(!d.accepts(["b", "a"]));
        assert!(!d.accepts(["a", "b", "b"]));
        assert!(!d.accepts([]));
    }

    #[test]
    fn accepts_alternatives() {
        let d = dfa("SPEC X\nEVENTS a: f(); b: g(); c: h();\nORDER a, (b | c)");
        assert!(d.accepts(["a", "b"]));
        assert!(d.accepts(["a", "c"]));
        assert!(!d.accepts(["a", "b", "c"]));
    }

    #[test]
    fn accepts_star_any_count() {
        let d = dfa("SPEC X\nEVENTS i: init(); u: update(); f: fin();\nORDER i, u*, f");
        assert!(d.accepts(["i", "f"]));
        assert!(d.accepts(["i", "u", "f"]));
        assert!(d.accepts(["i", "u", "u", "u", "f"]));
        assert!(!d.accepts(["i", "u"]));
    }

    #[test]
    fn plus_requires_one() {
        let d = dfa("SPEC X\nEVENTS u: update(); f: fin();\nORDER u+, f");
        assert!(!d.accepts(["f"]));
        assert!(d.accepts(["u", "f"]));
        assert!(d.accepts(["u", "u", "f"]));
    }

    #[test]
    fn optional_prefix() {
        let d = dfa("SPEC X\nEVENTS s: set(); r: run();\nORDER s?, r");
        assert!(d.accepts(["r"]));
        assert!(d.accepts(["s", "r"]));
        assert!(!d.accepts(["s"]));
        assert!(!d.accepts(["s", "s", "r"]));
    }

    #[test]
    fn empty_order_accepts_everything() {
        let d = dfa("SPEC X\nEVENTS a: f(); b: g();");
        assert!(d.accepts([]));
        assert!(d.accepts(["a", "b", "a", "a"]));
    }

    #[test]
    fn aggregate_expansion_in_dfa() {
        let d = dfa("SPEC X\nEVENTS g1: f(); g2: f(_); G := g1 | g2; n: next();\nORDER G, n");
        assert!(d.accepts(["g1", "n"]));
        assert!(d.accepts(["g2", "n"]));
        assert!(!d.accepts(["g1", "g2", "n"]));
    }

    #[test]
    fn try_from_nfa_enforces_the_state_cap() {
        let rule =
            crysl::parse_rule("SPEC X\nEVENTS a: f(); b: g();\nORDER (a | b)*, a, b").unwrap();
        let nfa = Nfa::from_rule(&rule).unwrap();
        assert_eq!(
            Dfa::try_from_nfa(&nfa, 1),
            Err(StateMachineError::TooManyStates { limit: 1 })
        );
        assert_eq!(Dfa::try_from_nfa(&nfa, 4096).unwrap(), Dfa::from_nfa(&nfa));
    }

    #[test]
    fn dead_state_rejects() {
        let d = dfa("SPEC X\nEVENTS a: f();\nORDER a");
        assert_eq!(d.step(d.start(), "zz"), None);
    }
}
