//! DFA minimization by partition refinement (Moore's algorithm).
//!
//! The subset construction can produce redundant states, especially for
//! rules with aggregates and nested alternatives. Minimization
//! canonicalizes the automaton: two rules describe the same usage
//! language iff their minimized DFAs are isomorphic, which the analyzer
//! uses to keep typestate tracking small and tests use to compare ORDER
//! patterns semantically.

use std::collections::{BTreeMap, BTreeSet};

use crate::dfa::Dfa;

impl Dfa {
    /// Returns the minimal DFA recognizing the same language.
    ///
    /// Implementation: complete the automaton with an explicit dead state,
    /// then refine the accepting/rejecting partition until stable, then
    /// drop the dead state's class again.
    pub fn minimize(&self) -> Dfa {
        let alphabet: BTreeSet<String> = (0..self.state_count())
            .flat_map(|s| {
                self.outgoing(s)
                    .map(|(l, _)| l.to_owned())
                    .collect::<Vec<_>>()
            })
            .collect();
        let n = self.state_count();
        let dead = n; // implicit dead state index in the completed automaton
        let total = n + 1;

        let step = |s: usize, a: &str| -> usize {
            if s == dead {
                dead
            } else {
                self.step(s, a).unwrap_or(dead)
            }
        };
        let accepting = |s: usize| s != dead && self.is_accepting(s);

        // Initial partition: accepting vs. non-accepting.
        let mut class: Vec<usize> = (0..total).map(|s| usize::from(accepting(s))).collect();
        loop {
            // Signature of a state: (class, class of successor per letter).
            let mut signature_to_class: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut next_class = vec![0usize; total];
            for s in 0..total {
                let sig = (
                    class[s],
                    alphabet
                        .iter()
                        .map(|a| class[step(s, a)])
                        .collect::<Vec<_>>(),
                );
                let next_id = signature_to_class.len();
                let id = *signature_to_class.entry(sig).or_insert(next_id);
                next_class[s] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }

        // Build the quotient automaton, skipping the dead class entirely
        // (our Dfa representation treats missing transitions as rejection).
        let dead_class = class[dead];
        // Map surviving classes to dense indices, with the start state's
        // class first.
        let mut index: BTreeMap<usize, usize> = BTreeMap::new();
        let mut order: Vec<usize> = Vec::new();
        let start_class = class[self.start()];
        index.insert(start_class, 0);
        order.push(start_class);
        for &c in class.iter().take(n) {
            if c != dead_class && !index.contains_key(&c) {
                index.insert(c, order.len());
                order.push(c);
            }
        }

        let mut transitions: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new(); order.len()];
        let mut accepting_v = vec![false; order.len()];
        for s in 0..n {
            let c = class[s];
            if c == dead_class {
                continue;
            }
            let from = index[&c];
            if self.is_accepting(s) {
                accepting_v[from] = true;
            }
            for a in &alphabet {
                let t = step(s, a);
                let tc = class[t];
                if tc != dead_class {
                    transitions[from].insert(a.clone(), index[&tc]);
                }
            }
        }
        Dfa::from_parts(transitions, accepting_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crysl::parse_rule;

    fn dfa(order: &str) -> Dfa {
        let src = format!("SPEC X\nEVENTS a: fa(); b: fb(); c: fc();\nORDER {order}");
        Dfa::from_nfa(&Nfa::from_rule(&parse_rule(&src).unwrap()).unwrap())
    }

    fn words(max_len: usize) -> Vec<Vec<&'static str>> {
        let alphabet = ["a", "b", "c"];
        let mut out: Vec<Vec<&'static str>> = vec![vec![]];
        let mut frontier = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for l in alphabet {
                    let mut w2: Vec<&'static str> = w.clone();
                    w2.push(l);
                    out.push(w2.clone());
                    next.push(w2);
                }
            }
            frontier = next;
        }
        out
    }

    fn assert_equivalent(a: &Dfa, b: &Dfa) {
        for w in words(5) {
            assert_eq!(
                a.accepts(w.iter().copied()),
                b.accepts(w.iter().copied()),
                "disagree on {w:?}"
            );
        }
    }

    #[test]
    fn minimization_preserves_the_language() {
        for order in [
            "a, b",
            "(a | b), c",
            "a, b*, c",
            "(a, b)+ | c",
            "a?, b?, c?",
        ] {
            let d = dfa(order);
            let m = d.minimize();
            assert!(m.state_count() <= d.state_count(), "{order}");
            assert_equivalent(&d, &m);
        }
    }

    #[test]
    fn equivalent_patterns_minimize_to_same_size() {
        // `a | a` and `a` denote the same language.
        let m1 = dfa("a | a").minimize();
        let m2 = dfa("a").minimize();
        assert_eq!(m1.state_count(), m2.state_count());
        assert_equivalent(&m1, &m2);
        // `a, (b | b)` equals `a, b`.
        assert_equivalent(&dfa("a, (b | b)").minimize(), &dfa("a, b").minimize());
    }

    #[test]
    fn redundant_alternative_states_collapse() {
        // The subset construction for `(a, c) | (b, c)` has distinct
        // intermediate states that the quotient merges.
        let d = dfa("(a, c) | (b, c)");
        let m = d.minimize();
        assert!(m.state_count() < d.state_count() || d.state_count() <= 3);
        assert_equivalent(&d, &m);
    }

    #[test]
    fn minimal_dfa_of_shipped_rules_is_small() {
        for rule in rules_fixture() {
            let d = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
            let m = d.minimize();
            assert!(m.state_count() <= d.state_count());
            // Spot-check equivalence on short words over the rule alphabet.
            let labels: Vec<String> = rule
                .events
                .iter()
                .filter_map(|e| match e {
                    crysl::ast::EventDecl::Method(m) => Some(m.label.clone()),
                    _ => None,
                })
                .collect();
            let mut stack: Vec<Vec<&str>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &stack {
                    for l in &labels {
                        let mut w2 = w.clone();
                        w2.push(l.as_str());
                        next.push(w2);
                    }
                }
                for w in &next {
                    assert_eq!(
                        d.accepts(w.iter().copied()),
                        m.accepts(w.iter().copied()),
                        "{}: {w:?}",
                        rule.class_name
                    );
                }
                stack = next;
            }
        }
    }

    fn rules_fixture() -> Vec<crysl::Rule> {
        [
            "SPEC A\nEVENTS g: getInstance(); i: init(); f: doFinal();\nORDER g, i, f",
            "SPEC B\nEVENTS a: fa(); b: fb();\nORDER a, b*",
            "SPEC C\nEVENTS x: fx(); y: fy(); z: fz();\nORDER (x | y)+, z?",
        ]
        .iter()
        .map(|s| parse_rule(s).unwrap())
        .collect()
    }
}
