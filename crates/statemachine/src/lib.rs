//! Finite state machines over CrySL event labels.
//!
//! CogniCryptGEN translates a rule's `ORDER` pattern into a finite state
//! machine and classifies any path of method calls that leads to an
//! accepting state as correct (paper §3.3). This crate provides:
//!
//! * [`Nfa`] — Thompson construction from an [`crysl::ast::OrderExpr`],
//!   with aggregates expanded to their concrete method events,
//! * [`Dfa`] — subset construction, used by the static analyzer for
//!   typestate checking,
//! * [`paths`] — finite enumeration of accepting call sequences, with
//!   repetition unrolled to *at most one* occurrence exactly as the paper
//!   describes ("one where the method is not called and one where it is"),
//! * [`compile`] — compile-once/reuse-many artefacts: the minimized DFA
//!   plus enumerated paths behind a content-hash-keyed, thread-safe
//!   [`OrderCache`].
//!
//! # Example
//!
//! ```
//! use crysl::parse_rule;
//! use statemachine::{Dfa, Nfa, paths};
//!
//! let rule = parse_rule(
//!     "SPEC X\nEVENTS a: first(); b: second(); c: third();\nORDER a, (b | c), b?",
//! )?;
//! let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule)?);
//! assert!(dfa.accepts(["a", "c", "b"].iter().copied()));
//! assert!(!dfa.accepts(["b"].iter().copied()));
//!
//! let all = paths::enumerate(&rule, paths::PathLimit::default())?;
//! assert_eq!(all.len(), 4); // a·b, a·c, a·b·b, a·c·b
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compile;
pub mod dfa;
pub mod dot;
pub mod minimize;
pub mod nfa;
pub mod paths;
pub mod serial;

pub use compile::{order_fingerprint, CacheLookup, CacheStats, CompiledOrder, OrderCache};
pub use dfa::Dfa;
pub use nfa::{Nfa, StateMachineError};
