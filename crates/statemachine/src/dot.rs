//! Graphviz DOT export for usage-pattern automata — handy when debugging
//! a rule's ORDER section or documenting a rule set.

use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Renders a DFA in Graphviz DOT syntax. Accepting states are drawn as
/// double circles; the start state is marked by an incoming arrow from an
/// invisible node.
pub fn dfa_to_dot(dfa: &Dfa, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    __start [shape=point];");
    let _ = writeln!(out, "    __start -> s{};", dfa.start());
    for s in 0..dfa.state_count() {
        let shape = if dfa.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "    s{s} [shape={shape}, label=\"{s}\"];");
    }
    for s in 0..dfa.state_count() {
        for (label, t) in dfa.outgoing(s) {
            let _ = writeln!(out, "    s{s} -> s{t} [label=\"{}\"];", escape(label));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders an NFA (including epsilon edges, drawn dashed).
pub fn nfa_to_dot(nfa: &Nfa, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    __start [shape=point];");
    let _ = writeln!(out, "    __start -> s{};", nfa.start());
    for s in 0..nfa.state_count() {
        let shape = if s == nfa.accept() {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "    s{s} [shape={shape}, label=\"{s}\"];");
    }
    for t in nfa.transitions() {
        match &t.label {
            Some(l) => {
                let _ = writeln!(
                    out,
                    "    s{} -> s{} [label=\"{}\"];",
                    t.from,
                    t.to,
                    escape(l)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "    s{} -> s{} [style=dashed, label=\"ε\"];",
                    t.from, t.to
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::parse_rule;

    #[test]
    fn dot_output_has_expected_structure() {
        let rule = parse_rule("SPEC X\nEVENTS a: fa(); b: fb();\nORDER a, b?").unwrap();
        let nfa = Nfa::from_rule(&rule).unwrap();
        let dfa = Dfa::from_nfa(&nfa);
        let dot = dfa_to_dot(&dfa, "X usage pattern");
        assert!(dot.starts_with("digraph \"X usage pattern\" {"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.trim_end().ends_with('}'));

        let ndot = nfa_to_dot(&nfa, "X");
        assert!(ndot.contains("style=dashed")); // epsilon edges present
    }

    #[test]
    fn titles_are_escaped() {
        let rule = parse_rule("SPEC X\nEVENTS a: fa();\nORDER a").unwrap();
        let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
        let dot = dfa_to_dot(&dfa, "quoted \"title\"");
        assert!(dot.contains("digraph \"quoted \\\"title\\\"\""));
    }
}
