//! Finite enumeration of accepting call sequences.
//!
//! CogniCryptGEN compiles a list of correct paths of method calls for each
//! rule (paper §3.3). Methods the state machine allows to be called
//! repeatedly are unrolled into two paths — one where the method is not
//! called, one where it is called once — because the generator "does not
//! currently support repeated calls". We implement that by rewriting the
//! `ORDER` expression before enumeration: `x*` becomes `x?` and `x+`
//! becomes `x`.

use std::collections::BTreeSet;

use crysl::ast::{EventDecl, OrderExpr, Rule};

use crate::nfa::StateMachineError;

/// Upper bound on the number of enumerated paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLimit(pub usize);

impl Default for PathLimit {
    /// A generous default (4096) — real JCA rules stay far below it.
    fn default() -> Self {
        PathLimit(4096)
    }
}

/// Rewrites repetition into single occurrence: `x*` → `x?`, `x+` → `x`.
///
/// The resulting expression denotes a finite language whose words are
/// exactly the generation candidates the paper describes.
pub fn unroll(e: &OrderExpr) -> OrderExpr {
    match e {
        OrderExpr::Empty => OrderExpr::Empty,
        OrderExpr::Label(l) => OrderExpr::Label(l.clone()),
        OrderExpr::Seq(parts) => OrderExpr::Seq(parts.iter().map(unroll).collect()),
        OrderExpr::Alt(parts) => OrderExpr::Alt(parts.iter().map(unroll).collect()),
        OrderExpr::Opt(x) => OrderExpr::Opt(Box::new(unroll(x))),
        OrderExpr::Star(x) => OrderExpr::Opt(Box::new(unroll(x))),
        OrderExpr::Plus(x) => unroll(x),
    }
}

/// Enumerates every accepting sequence of method-event labels for `rule`,
/// with repetition unrolled. Paths are deduplicated and sorted by length
/// (shortest first), then lexicographically — the generator's
/// "shortest path wins" tie-break relies on this order.
///
/// A rule without an `ORDER` section yields the single path that calls each
/// method event once, in declaration order (the generator still needs *a*
/// call sequence to emit; with no ordering constraint the declaration order
/// is the canonical choice).
///
/// # Errors
///
/// Returns [`StateMachineError::TooManyPaths`] if enumeration exceeds
/// `limit`, and [`StateMachineError::UnknownLabel`] for unresolvable labels.
pub fn enumerate(rule: &Rule, limit: PathLimit) -> Result<Vec<Vec<String>>, StateMachineError> {
    let order = match &rule.order {
        OrderExpr::Empty => {
            let labels: Vec<String> = rule
                .events
                .iter()
                .filter_map(|e| match e {
                    EventDecl::Method(m) => Some(m.label.clone()),
                    EventDecl::Aggregate { .. } => None,
                })
                .collect();
            return Ok(vec![labels]);
        }
        o => unroll(o),
    };
    let mut out: BTreeSet<Vec<String>> = BTreeSet::new();
    expand(rule, &order, &[], &mut out, limit.0)?;
    let mut paths: Vec<Vec<String>> = out.into_iter().collect();
    paths.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(paths)
}

fn expand(
    rule: &Rule,
    e: &OrderExpr,
    prefix: &[String],
    out: &mut BTreeSet<Vec<String>>,
    limit: usize,
) -> Result<(), StateMachineError> {
    let words = words_of(rule, e, limit)?;
    for w in words {
        let mut path = prefix.to_vec();
        path.extend(w);
        out.insert(path);
        if out.len() > limit {
            return Err(StateMachineError::TooManyPaths { limit });
        }
    }
    Ok(())
}

/// All words of the (finite) language of `e`.
fn words_of(
    rule: &Rule,
    e: &OrderExpr,
    limit: usize,
) -> Result<Vec<Vec<String>>, StateMachineError> {
    let words = match e {
        OrderExpr::Empty => vec![Vec::new()],
        OrderExpr::Label(l) => {
            let events = rule.resolve_label(l);
            if events.is_empty() {
                return Err(StateMachineError::UnknownLabel(l.clone()));
            }
            events.into_iter().map(|m| vec![m.label.clone()]).collect()
        }
        OrderExpr::Seq(parts) => {
            let mut acc: Vec<Vec<String>> = vec![Vec::new()];
            for p in parts {
                let part_words = words_of(rule, p, limit)?;
                let mut next = Vec::new();
                for a in &acc {
                    for w in &part_words {
                        let mut joined = a.clone();
                        joined.extend(w.iter().cloned());
                        next.push(joined);
                        if next.len() > limit {
                            return Err(StateMachineError::TooManyPaths { limit });
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        OrderExpr::Alt(parts) => {
            let mut acc = Vec::new();
            for p in parts {
                acc.extend(words_of(rule, p, limit)?);
                if acc.len() > limit {
                    return Err(StateMachineError::TooManyPaths { limit });
                }
            }
            acc
        }
        OrderExpr::Opt(x) => {
            let mut acc = vec![Vec::new()];
            acc.extend(words_of(rule, x, limit)?);
            acc
        }
        // `unroll` has eliminated these before enumeration, but handle them
        // anyway so the function is total: one occurrence (+ optional none).
        OrderExpr::Star(x) => {
            let mut acc = vec![Vec::new()];
            acc.extend(words_of(rule, x, limit)?);
            acc
        }
        OrderExpr::Plus(x) => words_of(rule, x, limit)?,
    };
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dfa, Nfa};
    use crysl::parse_rule;

    fn paths(src: &str) -> Vec<Vec<String>> {
        enumerate(&parse_rule(src).unwrap(), PathLimit::default()).unwrap()
    }

    #[test]
    fn single_sequence_single_path() {
        // PBEKeySpec from the paper: exactly one path c1·cP.
        let p =
            paths("SPEC PBEKeySpec\nEVENTS c1: PBEKeySpec(); cP: clearPassword();\nORDER c1, cP");
        assert_eq!(p, vec![vec!["c1".to_owned(), "cP".to_owned()]]);
    }

    #[test]
    fn optional_yields_two_paths() {
        let p = paths("SPEC X\nEVENTS a: f(); b: g();\nORDER a, b?");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], vec!["a"]); // shortest first
        assert_eq!(p[1], vec!["a", "b"]);
    }

    #[test]
    fn star_unrolls_to_at_most_once() {
        let p = paths("SPEC X\nEVENTS a: f(); u: upd();\nORDER a, u*");
        assert_eq!(p.len(), 2);
        assert!(p.contains(&vec!["a".to_owned()]));
        assert!(p.contains(&vec!["a".to_owned(), "u".to_owned()]));
    }

    #[test]
    fn plus_unrolls_to_exactly_once() {
        let p = paths("SPEC X\nEVENTS a: f(); u: upd();\nORDER a, u+");
        assert_eq!(p, vec![vec!["a".to_owned(), "u".to_owned()]]);
    }

    #[test]
    fn alternatives_and_aggregates_multiply() {
        let p = paths("SPEC X\nEVENTS g1: f(); g2: f(_); G := g1 | g2; n: next();\nORDER G, n");
        assert_eq!(p.len(), 2);
        assert!(p.contains(&vec!["g1".to_owned(), "n".to_owned()]));
        assert!(p.contains(&vec!["g2".to_owned(), "n".to_owned()]));
    }

    #[test]
    fn no_order_gives_declaration_order() {
        let p = paths("SPEC X\nEVENTS b: g(); a: f();");
        assert_eq!(p, vec![vec!["b".to_owned(), "a".to_owned()]]);
    }

    #[test]
    fn every_enumerated_path_is_accepted_by_the_dfa() {
        // Non-starred patterns: the unrolled language is a sublanguage of
        // the full one, so the DFA (built without unrolling) must accept.
        let rule =
            parse_rule("SPEC X\nEVENTS a: f(); b: g(); c: h(); d: i();\nORDER a, (b | c)+, d?, b*")
                .unwrap();
        let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
        let all = enumerate(&rule, PathLimit::default()).unwrap();
        assert!(!all.is_empty());
        for path in &all {
            let word: Vec<&str> = path.iter().map(String::as_str).collect();
            assert!(dfa.accepts(word.iter().copied()), "rejected: {path:?}");
        }
    }

    #[test]
    fn limit_is_enforced() {
        // 2^12 paths from twelve optionals exceeds a limit of 100.
        let events: String = (0..12).map(|i| format!("e{i}: f{i}(); ")).collect();
        let order: Vec<String> = (0..12).map(|i| format!("e{i}?")).collect();
        let src = format!("SPEC X\nEVENTS {events}\nORDER {}", order.join(", "));
        let rule = parse_rule(&src).unwrap();
        let err = enumerate(&rule, PathLimit(100)).unwrap_err();
        assert_eq!(err, StateMachineError::TooManyPaths { limit: 100 });
    }
}
