//! The `.crpack` on-disk format: a versioned, checksummed container
//! holding a validated [`RuleSet`] plus every rule's precompiled ORDER
//! artefact.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            4 bytes   "CRPK"
//! format version   u32       PACK_VERSION
//! pack name        u32-length-prefixed UTF-8 ([`PackManifest::name`])
//! pack version     u32       ([`PackManifest::version`])
//! rule count       u32
//! rules            rule count × crysl::binfmt rule encoding
//! artefact count   u32
//! artefacts        artefact count × statemachine::serial encoding,
//!                  one per distinct order_fingerprint, ascending
//! checksum         u64       FNV-1a-64 over every preceding byte,
//!                            folded 8 bytes at a time ([`pack_checksum`])
//! ```
//!
//! Decoding verifies the checksum before any structural read, so a
//! bit flip anywhere surfaces as one typed error, re-validates every
//! decoded rule with the same pass the parser runs, and enforces the
//! seeding invariant: the artefact fingerprint set must equal the rule
//! fingerprint set, so a decoded pack always pre-seeds the
//! [`statemachine::OrderCache`] with exactly the artefacts its rules
//! will look up — a pack-booted engine can never compile.

use std::collections::BTreeMap;

use crysl::binfmt::{Reader, Writer};
use crysl::{validate, CryslError, RuleSet};
use statemachine::serial::{read_compiled_order, write_compiled_order};
use statemachine::{order_fingerprint, CompiledOrder};

/// File magic of a compiled rule pack.
pub const PACK_MAGIC: [u8; 4] = *b"CRPK";

/// Current pack format version. Bump on any layout change; a loader
/// only accepts its own version, so stale packs fail fast with a typed
/// error telling the operator to recompile. Version 2 added the pack
/// manifest (name + pack version) between the format version and the
/// rule table.
pub const PACK_VERSION: u32 = 2;

/// Smallest byte count any structurally plausible pack can have:
/// magic + format version + empty manifest + two zero counts + checksum.
const MIN_PACK_BYTES: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8;

/// The pack manifest: which named catalog pack (at which rule-set
/// version) the file was compiled from. Distinct from the *format*
/// version ([`PACK_VERSION`]), which describes the byte layout: two
/// packs `jca@v1` and `jca@v2` both use format version 2 but carry
/// manifests `("jca", 1)` and `("jca", 2)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackManifest {
    /// Catalog pack name (e.g. `"jca"`); ad-hoc source-dir compiles
    /// use the directory stem.
    pub name: String,
    /// Rule-set version within the named pack line.
    pub version: u32,
}

impl PackManifest {
    /// Creates a manifest.
    pub fn new(name: impl Into<String>, version: u32) -> Self {
        PackManifest {
            name: name.into(),
            version,
        }
    }
}

impl std::fmt::Display for PackManifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// The pack trailer checksum: FNV-1a-64 folding 8-byte little-endian
/// words, then the remaining tail bytes one at a time.
///
/// Word-wise folding does one xor/multiply per 8 bytes instead of per
/// byte, which matters because decoding hashes the whole file before
/// any structural read — the checksum is on every cold-start path. It
/// is a different function from the byte-wise
/// [`statemachine::compile::fnv1a_64`]; the pack format has used the
/// word-folded variant since [`PACK_VERSION`] 1.
pub fn pack_checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().expect("chunks_exact yields 8-byte words"));
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in words.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes a rule set plus freshly compiled ORDER artefacts into
/// the `.crpack` byte format.
///
/// # Errors
///
/// [`CryslError::Pack`] when a rule's ORDER fails to compile (state
/// blow-up past the DFA limit or path-enumeration failure).
pub fn encode(rules: &RuleSet, manifest: &PackManifest) -> Result<Vec<u8>, CryslError> {
    let mut artefacts: BTreeMap<u64, CompiledOrder> = BTreeMap::new();
    for rule in rules.iter() {
        let fp = order_fingerprint(rule);
        if let std::collections::btree_map::Entry::Vacant(slot) = artefacts.entry(fp) {
            let artefact = CompiledOrder::compile(rule).map_err(|e| {
                CryslError::pack(format!("compiling ORDER of {}: {e}", rule.class_name))
            })?;
            slot.insert(artefact);
        }
    }
    let mut w = Writer::new();
    w.raw(&PACK_MAGIC);
    w.u32(PACK_VERSION);
    w.str(&manifest.name);
    w.u32(manifest.version);
    w.count(rules.len());
    for rule in rules.iter() {
        crysl::binfmt::write_rule(&mut w, rule);
    }
    w.count(artefacts.len());
    for artefact in artefacts.values() {
        write_compiled_order(&mut w, artefact);
    }
    let mut bytes = w.into_bytes();
    let checksum = pack_checksum(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    Ok(bytes)
}

/// A successfully decoded pack: the re-validated rules, the format
/// version the file declared, and the precompiled artefacts destined
/// for the [`statemachine::OrderCache`].
#[derive(Debug, Clone)]
pub struct DecodedPack {
    /// Decoded and re-validated rules.
    pub rules: RuleSet,
    /// Format version read from the file (always [`PACK_VERSION`]).
    pub version: u32,
    /// Manifest read from the file.
    pub manifest: PackManifest,
    /// One artefact per distinct rule fingerprint.
    pub artefacts: Vec<CompiledOrder>,
}

/// Decodes and fully verifies `.crpack` bytes.
///
/// # Errors
///
/// [`CryslError::Pack`] on truncation, bad magic, an unsupported
/// version, a checksum mismatch, structural corruption, or an
/// artefact/rule fingerprint mismatch; [`CryslError::Validate`] when a
/// decoded rule fails re-validation. Never panics on hostile input.
pub fn decode(bytes: &[u8]) -> Result<DecodedPack, CryslError> {
    if bytes.len() < MIN_PACK_BYTES {
        return Err(CryslError::pack(format!(
            "pack of {} bytes is smaller than the {MIN_PACK_BYTES}-byte minimum",
            bytes.len()
        )));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(trailer.try_into().expect("split_at leaves 8 bytes"));
    let actual = pack_checksum(payload);
    if declared != actual {
        return Err(CryslError::pack(format!(
            "checksum mismatch: file declares {declared:#018x}, content hashes to {actual:#018x}"
        )));
    }

    let mut r = Reader::new(payload);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8()?;
    }
    if magic != PACK_MAGIC {
        return Err(CryslError::pack(format!(
            "bad magic {magic:?}: not a compiled rule pack"
        )));
    }
    let version = r.u32()?;
    if version != PACK_VERSION {
        return Err(CryslError::pack(format!(
            "unsupported pack format version {version} (this build reads {PACK_VERSION}); recompile the pack"
        )));
    }

    let manifest = PackManifest {
        name: r.str()?,
        version: r.u32()?,
    };

    let rule_count = r.count()?;
    let mut rules = RuleSet::new();
    for _ in 0..rule_count {
        let rule = crysl::binfmt::read_rule(&mut r)?;
        // Defense in depth: the checksum proves integrity, not honesty.
        // A well-formed pack built from a malicious writer must still
        // satisfy every invariant the parser enforces.
        validate::validate(&rule)?;
        rules.add(rule)?;
    }

    let artefact_count = r.count()?;
    let mut artefacts = Vec::with_capacity(artefact_count);
    for _ in 0..artefact_count {
        artefacts.push(read_compiled_order(&mut r)?);
    }
    r.expect_end()?;

    let mut rule_fps: Vec<u64> = rules.iter().map(order_fingerprint).collect();
    rule_fps.sort_unstable();
    rule_fps.dedup();
    let artefact_fps: Vec<u64> = artefacts.iter().map(|a| a.fingerprint).collect();
    if artefact_fps != rule_fps {
        return Err(CryslError::pack(format!(
            "artefact fingerprints do not match the rule set ({} artefacts vs {} distinct rule orders): the pack cannot guarantee an all-hit cold start",
            artefact_fps.len(),
            rule_fps.len()
        )));
    }

    Ok(DecodedPack {
        rules,
        version,
        manifest,
        artefacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> PackManifest {
        PackManifest::new("test", 1)
    }

    fn embedded() -> RuleSet {
        let mut set = RuleSet::new();
        for (_, src) in crate::RULE_SOURCES {
            set.add_source(src).unwrap();
        }
        set
    }

    #[test]
    fn encode_decode_is_the_identity_on_the_embedded_set() {
        let rules = embedded();
        let bytes = encode(&rules, &manifest()).unwrap();
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.version, PACK_VERSION);
        assert_eq!(decoded.manifest, manifest());
        assert_eq!(decoded.rules, rules);
        assert_eq!(decoded.artefacts.len(), {
            let mut fps: Vec<u64> = rules.iter().map(order_fingerprint).collect();
            fps.sort_unstable();
            fps.dedup();
            fps.len()
        });
        // Every artefact matches a from-scratch compile of its rule.
        for rule in rules.iter() {
            let fresh = CompiledOrder::compile(rule).unwrap();
            let stored = decoded
                .artefacts
                .iter()
                .find(|a| a.fingerprint == fresh.fingerprint)
                .expect("artefact present");
            assert_eq!(*stored, fresh, "{}", rule.class_name);
        }
    }

    #[test]
    fn checksum_catches_any_single_bit_flip() {
        let bytes = encode(&embedded(), &manifest()).unwrap();
        // Sampled offsets (every byte would be slow at ~50KB × O(n)
        // re-hash per flip); stride covers header, rules, artefacts and
        // trailer regions.
        let mut corrupted = bytes.clone();
        for offset in (0..bytes.len()).step_by(211) {
            corrupted[offset] ^= 0x01;
            let err = decode(&corrupted).unwrap_err();
            assert!(
                matches!(err, CryslError::Pack { .. }),
                "offset {offset}: {err}"
            );
            corrupted[offset] = bytes[offset];
        }
        // Flipping a bit in the checksum itself is also caught.
        let last = bytes.len() - 1;
        corrupted[last] ^= 0x80;
        assert!(decode(&corrupted).is_err());
    }

    #[test]
    fn truncation_is_always_a_typed_error() {
        let bytes = encode(&embedded(), &manifest()).unwrap();
        for end in [
            0,
            1,
            7,
            MIN_PACK_BYTES - 1,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let err = decode(&bytes[..end]).unwrap_err();
            assert!(matches!(err, CryslError::Pack { .. }), "end {end}: {err}");
        }
    }

    #[test]
    fn version_skew_is_rejected_with_a_recompile_hint() {
        let mut bytes = encode(&embedded(), &manifest()).unwrap();
        bytes[4..8].copy_from_slice(&(PACK_VERSION + 1).to_le_bytes());
        let len = bytes.len();
        let checksum = pack_checksum(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("recompile"), "{err}");
    }

    #[test]
    fn missing_artefact_violates_the_all_hit_invariant() {
        // Re-encode with one artefact dropped (and a fixed-up checksum):
        // structurally valid, but it can no longer guarantee a zero-
        // compile boot, so it must be rejected.
        let rules = embedded();
        let mut artefacts: Vec<CompiledOrder> = {
            let mut by_fp = BTreeMap::new();
            for rule in rules.iter() {
                by_fp
                    .entry(order_fingerprint(rule))
                    .or_insert_with(|| CompiledOrder::compile(rule).unwrap());
            }
            by_fp.into_values().collect()
        };
        artefacts.pop();
        let mut w = Writer::new();
        w.raw(&PACK_MAGIC);
        w.u32(PACK_VERSION);
        w.str("test");
        w.u32(1);
        w.count(rules.len());
        for rule in rules.iter() {
            crysl::binfmt::write_rule(&mut w, rule);
        }
        w.count(artefacts.len());
        for a in &artefacts {
            write_compiled_order(&mut w, a);
        }
        let mut bytes = w.into_bytes();
        let checksum = pack_checksum(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("all-hit"), "{err}");
    }
}
