//! The JCA CrySL rule sets shipped with this reproduction, behind one
//! unified loading API.
//!
//! Sixteen rules cover every class the catalogued use cases touch.
//! They are adaptations of the publicly maintained CrySL rules for the
//! Java Cryptography Architecture, rewritten in this crate's CrySL dialect
//! and tuned as the paper describes (§4): `in`-constraint literals ordered
//! by generation preference, predicate first arguments holding operation
//! results, and `instanceof` constraints distinguishing symmetric from
//! asymmetric Cipher usage.
//!
//! The rules are organized as *versioned packs* ([`PACK_CATALOG`]): the
//! full `jca` line (whose latest version is what [`PackSource::Embedded`]
//! serves) plus focused subsets (`aead`, `agreement`, `token`) that carry
//! only the rules their use-case families need. `jca@v1` is the legacy
//! rule set kept for versioning coverage — it still prefers 1024-bit RSA
//! keys, which `jca@v2` raised to 2048.
//!
//! Every way to load rules goes through [`open`] with a [`PackSource`]:
//! the embedded JCA set, a named catalog pack (`jca@v1`, `aead`, …), a
//! directory of `*.crysl` sources, or a precompiled `.crpack` binary
//! produced by `cognicryptgen compile-rules`. All four return the same
//! [`RulePack`] handle; a compiled pack additionally carries every
//! rule's precompiled ORDER artefact, so [`RulePack::seed`] can
//! pre-fill an [`statemachine::OrderCache`] and a cold boot compiles
//! nothing.
//!
//! # Example
//!
//! ```
//! let pack = rules::open(rules::PackSource::Embedded)?;
//! assert!(pack.rules.by_name("javax.crypto.Cipher").is_some());
//! assert_eq!(pack.rules.len(), 16);
//! assert_eq!(pack.fingerprints.len(), 16);
//! assert_eq!(pack.manifest.to_string(), "jca@v2");
//! # Ok::<(), rules::PackError>(())
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use crysl::{CryslError, RuleSet};
use statemachine::compile::fnv1a_64;
use statemachine::{order_fingerprint, CompiledOrder, OrderCache};

mod pack;

pub use pack::{pack_checksum, PackManifest, PACK_MAGIC, PACK_VERSION};

const SRC_SECURE_RANDOM: (&str, &str) = ("SecureRandom", include_str!("../jca/SecureRandom.crysl"));
const SRC_PBE_KEY_SPEC: (&str, &str) = ("PBEKeySpec", include_str!("../jca/PBEKeySpec.crysl"));
const SRC_SECRET_KEY_FACTORY: (&str, &str) = (
    "SecretKeyFactory",
    include_str!("../jca/SecretKeyFactory.crysl"),
);
const SRC_SECRET_KEY: (&str, &str) = ("SecretKey", include_str!("../jca/SecretKey.crysl"));
const SRC_SECRET_KEY_SPEC: (&str, &str) =
    ("SecretKeySpec", include_str!("../jca/SecretKeySpec.crysl"));
const SRC_KEY_GENERATOR: (&str, &str) = ("KeyGenerator", include_str!("../jca/KeyGenerator.crysl"));
const SRC_CIPHER: (&str, &str) = ("Cipher", include_str!("../jca/Cipher.crysl"));
const SRC_IV_PARAMETER_SPEC: (&str, &str) = (
    "IvParameterSpec",
    include_str!("../jca/IvParameterSpec.crysl"),
);
const SRC_GCM_PARAMETER_SPEC: (&str, &str) = (
    "GCMParameterSpec",
    include_str!("../jca/GCMParameterSpec.crysl"),
);
const SRC_MESSAGE_DIGEST: (&str, &str) =
    ("MessageDigest", include_str!("../jca/MessageDigest.crysl"));
const SRC_SIGNATURE: (&str, &str) = ("Signature", include_str!("../jca/Signature.crysl"));
const SRC_KEY_PAIR_GENERATOR: (&str, &str) = (
    "KeyPairGenerator",
    include_str!("../jca/KeyPairGenerator.crysl"),
);
const SRC_KEY_PAIR: (&str, &str) = ("KeyPair", include_str!("../jca/KeyPair.crysl"));
const SRC_MAC: (&str, &str) = ("Mac", include_str!("../jca/Mac.crysl"));
const SRC_KEY_AGREEMENT: (&str, &str) = ("KeyAgreement", include_str!("../jca/KeyAgreement.crysl"));
const SRC_KDF: (&str, &str) = ("KDF", include_str!("../jca/KDF.crysl"));

/// The legacy (v1) KeyPairGenerator rule: 1024-bit RSA minimum.
const SRC_KEY_PAIR_GENERATOR_V1: (&str, &str) = (
    "KeyPairGenerator",
    include_str!("../jca_v1/KeyPairGenerator.crysl"),
);

/// Name and source text of every shipped rule — the `jca` pack at its
/// latest version, which is also what [`PackSource::Embedded`] serves.
pub const RULE_SOURCES: &[(&str, &str)] = &[
    SRC_SECURE_RANDOM,
    SRC_PBE_KEY_SPEC,
    SRC_SECRET_KEY_FACTORY,
    SRC_SECRET_KEY,
    SRC_SECRET_KEY_SPEC,
    SRC_KEY_GENERATOR,
    SRC_CIPHER,
    SRC_IV_PARAMETER_SPEC,
    SRC_GCM_PARAMETER_SPEC,
    SRC_MESSAGE_DIGEST,
    SRC_SIGNATURE,
    SRC_KEY_PAIR_GENERATOR,
    SRC_KEY_PAIR,
    SRC_MAC,
    SRC_KEY_AGREEMENT,
    SRC_KDF,
];

/// `jca@v1`: the same class coverage with the legacy KeyPairGenerator
/// rule (1024-bit RSA preference).
const JCA_V1_RULE_SOURCES: &[(&str, &str)] = &[
    SRC_SECURE_RANDOM,
    SRC_PBE_KEY_SPEC,
    SRC_SECRET_KEY_FACTORY,
    SRC_SECRET_KEY,
    SRC_SECRET_KEY_SPEC,
    SRC_KEY_GENERATOR,
    SRC_CIPHER,
    SRC_IV_PARAMETER_SPEC,
    SRC_GCM_PARAMETER_SPEC,
    SRC_MESSAGE_DIGEST,
    SRC_SIGNATURE,
    SRC_KEY_PAIR_GENERATOR_V1,
    SRC_KEY_PAIR,
    SRC_MAC,
    SRC_KEY_AGREEMENT,
    SRC_KDF,
];

/// `aead@v1`: the authenticated-encryption family.
const AEAD_V1_RULE_SOURCES: &[(&str, &str)] = &[
    SRC_SECURE_RANDOM,
    SRC_SECRET_KEY,
    SRC_SECRET_KEY_SPEC,
    SRC_KEY_GENERATOR,
    SRC_CIPHER,
    SRC_IV_PARAMETER_SPEC,
    SRC_GCM_PARAMETER_SPEC,
];

/// `agreement@v1`: the key-agreement family (DH/ECDH → KDF → AEAD/MAC).
const AGREEMENT_V1_RULE_SOURCES: &[(&str, &str)] = &[
    SRC_SECURE_RANDOM,
    SRC_SECRET_KEY_SPEC,
    SRC_CIPHER,
    SRC_IV_PARAMETER_SPEC,
    SRC_GCM_PARAMETER_SPEC,
    SRC_KEY_PAIR_GENERATOR,
    SRC_KEY_PAIR,
    SRC_MAC,
    SRC_KEY_AGREEMENT,
    SRC_KDF,
];

/// `token@v1`: the MAC/HKDF token family.
const TOKEN_V1_RULE_SOURCES: &[(&str, &str)] = &[
    SRC_SECURE_RANDOM,
    SRC_PBE_KEY_SPEC,
    SRC_SECRET_KEY_FACTORY,
    SRC_SECRET_KEY,
    SRC_SECRET_KEY_SPEC,
    SRC_KEY_GENERATOR,
    SRC_CIPHER,
    SRC_IV_PARAMETER_SPEC,
    SRC_MAC,
    SRC_KDF,
];

/// A named, versioned rule pack in the shipped catalog.
#[derive(Debug, Clone, Copy)]
pub struct PackSpec {
    /// Pack name (`jca`, `aead`, `agreement`, `token`).
    pub name: &'static str,
    /// Rule-set version within this pack line.
    pub version: u32,
    /// Name and source text of each member rule.
    pub rules: &'static [(&'static str, &'static str)],
    /// Catalogued use-case ids this pack can generate
    /// (`usecases::all_use_cases` numbering).
    pub use_cases: &'static [u8],
}

impl PackSpec {
    /// The manifest a compile of this spec carries.
    pub fn manifest(&self) -> PackManifest {
        PackManifest::new(self.name, self.version)
    }
}

/// Every named pack this build ships, all versions. Within one name,
/// entries are ordered ascending by version; the last one is the
/// latest.
pub const PACK_CATALOG: &[PackSpec] = &[
    PackSpec {
        name: "jca",
        version: 1,
        rules: JCA_V1_RULE_SOURCES,
        // The agreement family (17–21) needs DH/EC key pairs, which the
        // legacy RSA-only KeyPairGenerator rule cannot justify.
        use_cases: &[
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 22, 23, 24, 25, 26,
        ],
    },
    PackSpec {
        name: "jca",
        version: 2,
        rules: RULE_SOURCES,
        use_cases: &[
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
            25, 26,
        ],
    },
    PackSpec {
        name: "aead",
        version: 1,
        rules: AEAD_V1_RULE_SOURCES,
        use_cases: &[4, 12, 13, 14, 15, 16, 26],
    },
    PackSpec {
        name: "agreement",
        version: 1,
        rules: AGREEMENT_V1_RULE_SOURCES,
        use_cases: &[17, 18, 19, 20, 21],
    },
    PackSpec {
        name: "token",
        version: 1,
        rules: TOKEN_V1_RULE_SOURCES,
        use_cases: &[22, 23, 24, 25, 26],
    },
];

/// Looks up a catalog pack by name, at an explicit version or (with
/// `None`) the latest one.
pub fn catalog_pack(name: &str, version: Option<u32>) -> Option<&'static PackSpec> {
    match version {
        Some(v) => PACK_CATALOG
            .iter()
            .find(|p| p.name == name && p.version == v),
        None => PACK_CATALOG.iter().rfind(|p| p.name == name),
    }
}

/// Where a rule pack comes from — the single argument of [`open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackSource {
    /// The sixteen JCA rules compiled into this binary
    /// ([`RULE_SOURCES`], the latest `jca` catalog version).
    Embedded,
    /// A named pack from [`PACK_CATALOG`], version-pinned. `version`
    /// `None` means the latest shipped version of that name.
    Catalog {
        /// Pack name (`jca`, `aead`, …).
        name: String,
        /// Pinned version, or `None` for the latest.
        version: Option<u32>,
    },
    /// A directory of `*.crysl` source files, read in file-name order.
    SourceDir(PathBuf),
    /// A precompiled `.crpack` binary written by [`RulePack::to_bytes`]
    /// (the `compile-rules` subcommand).
    Compiled(PathBuf),
}

impl PackSource {
    /// Classifies a `--rules` argument: an existing directory is a
    /// source pack; a non-path spelling of a catalog name (`jca`,
    /// `aead@v1`, …) is a catalog pack; anything else is treated as a
    /// compiled pack file (and will fail with a typed error if it is
    /// not). A version-suffixed catalog name is recognized even at an
    /// unknown version, so `jca@v9` fails at [`open`] with a typed
    /// unknown-version error instead of a confusing file-not-found.
    pub fn detect(path: impl Into<PathBuf>) -> PackSource {
        let path = path.into();
        if path.is_dir() {
            return PackSource::SourceDir(path);
        }
        if !path.exists() {
            if let Some(spec) = path.to_str().and_then(parse_catalog_spec) {
                return spec;
            }
        }
        PackSource::Compiled(path)
    }

    /// Stable short label for telemetry (`embedded`, `catalog`,
    /// `source-dir`, `compiled`).
    pub fn kind(&self) -> &'static str {
        match self {
            PackSource::Embedded => "embedded",
            PackSource::Catalog { .. } => "catalog",
            PackSource::SourceDir(_) => "source-dir",
            PackSource::Compiled(_) => "compiled",
        }
    }

    /// The filesystem path behind this source, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            PackSource::Embedded | PackSource::Catalog { .. } => None,
            PackSource::SourceDir(p) | PackSource::Compiled(p) => Some(p),
        }
    }
}

/// Parses `name` or `name@vN` into a [`PackSource::Catalog`] when
/// `name` is a shipped catalog name. Returns `None` for anything that
/// does not look like a catalog reference (so paths keep failing as
/// paths).
fn parse_catalog_spec(s: &str) -> Option<PackSource> {
    let (name, version) = match s.split_once('@') {
        Some((name, v)) => {
            let v = v.strip_prefix('v')?.parse::<u32>().ok()?;
            (name, Some(v))
        }
        None => (s, None),
    };
    if PACK_CATALOG.iter().any(|p| p.name == name) {
        Some(PackSource::Catalog {
            name: name.to_owned(),
            version,
        })
    } else {
        None
    }
}

impl fmt::Display for PackSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackSource::Embedded => f.write_str("embedded"),
            PackSource::Catalog { name, version } => match version {
                Some(v) => write!(f, "catalog:{name}@v{v}"),
                None => write!(f, "catalog:{name}"),
            },
            PackSource::SourceDir(p) => write!(f, "source-dir:{}", p.display()),
            PackSource::Compiled(p) => write!(f, "compiled:{}", p.display()),
        }
    }
}

/// Everything [`open`] can fail with. The facade maps `Io` to its
/// I/O class (exit 5), `Invalid` to invalid-input (exit 6) and
/// `Crysl` — parse, validation and pack corruption alike — to the
/// rules class (exit 3).
#[derive(Debug)]
pub enum PackError {
    /// A filesystem read failed.
    Io {
        /// What was being read.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The source is structurally unusable (e.g. a directory with no
    /// `*.crysl` file).
    Invalid(String),
    /// Lexing, parsing, validation, or pack decoding failed.
    Crysl(CryslError),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            PackError::Invalid(msg) => f.write_str(msg),
            PackError::Crysl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PackError::Io { source, .. } => Some(source),
            PackError::Invalid(_) => None,
            PackError::Crysl(e) => Some(e),
        }
    }
}

impl From<CryslError> for PackError {
    fn from(e: CryslError) -> Self {
        PackError::Crysl(e)
    }
}

/// A loaded rule pack: the rules, their ORDER fingerprints, the pack
/// format version, and where it all came from. Returned by [`open`]
/// for every [`PackSource`]; only a [`PackSource::Compiled`] origin
/// carries precompiled artefacts (see [`RulePack::seed`]).
#[derive(Debug, Clone)]
pub struct RulePack {
    /// The parsed (or decoded) and validated rules.
    pub rules: RuleSet,
    /// [`order_fingerprint`] of every distinct rule ORDER, ascending.
    pub fingerprints: Vec<u64>,
    /// The `.crpack` format version this pack has (or would serialize
    /// to): always [`PACK_VERSION`] in this build.
    pub version: u32,
    /// Pack manifest: the named catalog line and rule-set version this
    /// pack belongs to. Ad-hoc source-dir packs carry their directory
    /// stem at version 0.
    pub manifest: PackManifest,
    /// The source this pack was opened from.
    pub origin: PackSource,
    /// Precompiled ORDER artefacts, one per fingerprint, already
    /// reference-counted so seeding a cache shares rather than deep-
    /// copies them. Empty unless the origin is a compiled pack.
    artefacts: Vec<Arc<CompiledOrder>>,
}

impl RulePack {
    fn from_rule_set(
        rules: RuleSet,
        manifest: PackManifest,
        origin: PackSource,
        artefacts: Vec<Arc<CompiledOrder>>,
    ) -> RulePack {
        let mut fingerprints: Vec<u64> = rules.iter().map(order_fingerprint).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        RulePack {
            rules,
            fingerprints,
            version: PACK_VERSION,
            manifest,
            origin,
            artefacts,
        }
    }

    /// Whether this pack carries precompiled ORDER artefacts for every
    /// rule (true exactly when the origin is [`PackSource::Compiled`]).
    pub fn is_precompiled(&self) -> bool {
        !self.artefacts.is_empty()
    }

    /// Pre-seeds `cache` with this pack's precompiled artefacts,
    /// returning how many entries were inserted. For a compiled pack
    /// this is the whole point: after seeding, an engine warm-up over
    /// these rules is all cache hits and compiles nothing. For a
    /// source-origin pack there is nothing to seed and this returns 0.
    pub fn seed(&self, cache: &OrderCache) -> usize {
        cache.seed(self.artefacts.iter().cloned())
    }

    /// Content fingerprint of the whole pack: FNV-1a-64 over the sorted
    /// rule fingerprints. Two packs agree exactly when their rules'
    /// compilation inputs agree; surfaced in `/loadz`, `/metrics` and
    /// the Table-1 report so operators can tell which pack a daemon
    /// actually serves.
    pub fn pack_fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.fingerprints.len() * 8);
        for fp in &self.fingerprints {
            bytes.extend_from_slice(&fp.to_le_bytes());
        }
        fnv1a_64(&bytes)
    }

    /// Serializes this pack — rules plus freshly compiled ORDER
    /// artefacts — into the versioned, checksummed `.crpack` byte
    /// format ([`pack`] module docs spell out the layout).
    ///
    /// # Errors
    ///
    /// [`CryslError::Pack`] when a rule's ORDER fails to compile.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CryslError> {
        pack::encode(&self.rules, &self.manifest)
    }
}

/// Opens a rule pack from any [`PackSource`] — the single loading
/// entry point for the whole workspace.
///
/// [`PackSource::Embedded`] is parsed at most once per process and
/// served from a shared copy afterwards (the cost of a call after the
/// first is one `RuleSet` clone). Filesystem sources are re-read on
/// every call, which is what lets `serve` hot-reload them.
///
/// # Errors
///
/// See [`PackError`]; malformed sources and corrupt packs are typed
/// errors, never panics.
pub fn open(source: PackSource) -> Result<RulePack, PackError> {
    match source {
        PackSource::Embedded => {
            let shared = embedded_shared()?;
            Ok(RulePack::from_rule_set(
                shared.clone(),
                embedded_manifest(),
                PackSource::Embedded,
                Vec::new(),
            ))
        }
        other => open_uncached(other),
    }
}

/// The manifest the embedded rule set carries: the latest `jca`
/// catalog entry.
fn embedded_manifest() -> PackManifest {
    catalog_pack("jca", None)
        .expect("catalog always ships a jca pack")
        .manifest()
}

/// [`open`] without the process-wide embedded cache: every call — for
/// every source kind — lexes, parses and validates (or decodes) from
/// scratch. This is the cold path benchmarks measure; ordinary callers
/// want [`open`].
///
/// # Errors
///
/// See [`PackError`].
pub fn open_uncached(source: PackSource) -> Result<RulePack, PackError> {
    match source {
        PackSource::Embedded => {
            let rules = parse_embedded()?;
            Ok(RulePack::from_rule_set(
                rules,
                embedded_manifest(),
                PackSource::Embedded,
                Vec::new(),
            ))
        }
        PackSource::Catalog { name, version } => {
            let spec = catalog_pack(&name, version).ok_or_else(|| {
                let shipped: Vec<String> = PACK_CATALOG
                    .iter()
                    .map(|p| format!("{}@v{}", p.name, p.version))
                    .collect();
                PackError::Crysl(CryslError::pack(match version {
                    Some(v) => format!(
                        "unknown rule-pack version {name}@v{v}; this build ships {}",
                        shipped.join(", ")
                    ),
                    None => format!(
                        "unknown rule pack {name}; this build ships {}",
                        shipped.join(", ")
                    ),
                }))
            })?;
            let mut set = RuleSet::new();
            for (_, src) in spec.rules {
                set.add_source(src)?;
            }
            Ok(RulePack::from_rule_set(
                set,
                spec.manifest(),
                PackSource::Catalog { name, version },
                Vec::new(),
            ))
        }
        PackSource::SourceDir(dir) => {
            let rules = parse_source_dir(&dir)?;
            let stem = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "source".to_owned());
            Ok(RulePack::from_rule_set(
                rules,
                PackManifest::new(stem, 0),
                PackSource::SourceDir(dir),
                Vec::new(),
            ))
        }
        PackSource::Compiled(path) => {
            let bytes = std::fs::read(&path).map_err(|e| PackError::Io {
                path: path.clone(),
                source: e,
            })?;
            let mut opened = open_bytes(&bytes)?;
            opened.origin = PackSource::Compiled(path);
            Ok(opened)
        }
    }
}

/// Decodes a `.crpack` byte image already in memory — what
/// [`PackSource::Compiled`] does after its file read. This is the
/// hostile-input surface: the bytes are checksum-verified and
/// length-capped before any structure is trusted, and *any* corruption
/// — truncation, bit flips, forged counts — is a typed
/// [`CryslError::Pack`], never a panic. The fuzzer drives this
/// directly with mutated pack images.
///
/// # Errors
///
/// [`PackError::Crysl`] wrapping the decode failure.
pub fn open_bytes(bytes: &[u8]) -> Result<RulePack, PackError> {
    let decoded = pack::decode(bytes)?;
    // The decoder already enforced that the artefact fingerprints equal
    // the distinct rule fingerprints in ascending order, so they *are*
    // the pack's fingerprint list — re-deriving it from the rules would
    // repeat per-rule hashing the decode just paid for.
    let fingerprints = decoded.artefacts.iter().map(|a| a.fingerprint).collect();
    Ok(RulePack {
        rules: decoded.rules,
        fingerprints,
        version: decoded.version,
        manifest: decoded.manifest,
        origin: PackSource::Compiled(PathBuf::from("<bytes>")),
        artefacts: decoded.artefacts.into_iter().map(Arc::new).collect(),
    })
}

/// The process-wide parsed embedded rule set: parsed on first access,
/// shared forever after. Only a successful parse is cached; after a
/// failure the next call re-parses and surfaces the error again.
fn embedded_shared() -> Result<&'static RuleSet, CryslError> {
    static SHARED: OnceLock<RuleSet> = OnceLock::new();
    if let Some(set) = SHARED.get() {
        return Ok(set);
    }
    let parsed = parse_embedded()?;
    Ok(SHARED.get_or_init(|| parsed))
}

fn parse_embedded() -> Result<RuleSet, CryslError> {
    let mut set = RuleSet::new();
    for (_, src) in RULE_SOURCES {
        set.add_source(src)?;
    }
    Ok(set)
}

/// Parses a rule pack from a directory of `*.crysl` files, sorted by
/// file name so the pack's rule order — and therefore everything
/// downstream — is independent of directory-iteration order.
fn parse_source_dir(dir: &Path) -> Result<RuleSet, PackError> {
    let io_err = |path: &Path, e: std::io::Error| PackError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "crysl") {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(PackError::Invalid(format!(
            "rule pack {} holds no .crysl file",
            dir.display()
        )));
    }
    files.sort();
    let mut set = RuleSet::new();
    for path in &files {
        let source = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        set.add_source(&source)?;
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::ast::{Constraint, Literal, PredArg};
    use statemachine::paths::{enumerate, PathLimit};
    use statemachine::{Dfa, Nfa};

    fn embedded() -> RuleSet {
        open(PackSource::Embedded).unwrap().rules
    }

    #[test]
    fn all_rules_parse_and_validate() {
        let pack = open_uncached(PackSource::Embedded).unwrap();
        assert_eq!(pack.rules.len(), RULE_SOURCES.len());
        assert_eq!(pack.origin, PackSource::Embedded);
        assert!(!pack.is_precompiled());
    }

    #[test]
    fn embedded_opens_share_one_parse() {
        let a = open(PackSource::Embedded).unwrap();
        let b = open(PackSource::Embedded).unwrap();
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.pack_fingerprint(), b.pack_fingerprint());
        // Both opens ride the same process-wide parse.
        let shared = embedded_shared().unwrap();
        assert_eq!(*shared, a.rules);
    }

    #[test]
    fn source_dir_and_compiled_pack_agree_with_embedded() {
        let dir = std::env::temp_dir().join(format!("rules-open-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, src) in RULE_SOURCES {
            std::fs::write(dir.join(format!("{name}.crysl")), src).unwrap();
        }
        let from_dir = open(PackSource::detect(&dir)).unwrap();
        assert!(matches!(from_dir.origin, PackSource::SourceDir(_)));

        let embedded = open(PackSource::Embedded).unwrap();
        assert_eq!(from_dir.rules, embedded.rules);
        assert_eq!(from_dir.pack_fingerprint(), embedded.pack_fingerprint());

        let crpack = dir.join("jca.crpack");
        std::fs::write(&crpack, embedded.to_bytes().unwrap()).unwrap();
        let compiled = open(PackSource::detect(&crpack)).unwrap();
        assert!(matches!(compiled.origin, PackSource::Compiled(_)));
        assert!(compiled.is_precompiled());
        assert_eq!(compiled.rules, embedded.rules);
        assert_eq!(compiled.fingerprints, embedded.fingerprints);
        assert_eq!(compiled.pack_fingerprint(), embedded.pack_fingerprint());

        // Seeding an empty cache inserts one artefact per fingerprint;
        // a source pack seeds nothing.
        let cache = OrderCache::new();
        assert_eq!(compiled.seed(&cache), compiled.fingerprints.len());
        assert_eq!(embedded.seed(&cache), 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_errors_are_typed_not_panics() {
        let missing = PathBuf::from("/nonexistent/path/jca.crpack");
        assert!(matches!(
            open(PackSource::Compiled(missing)).unwrap_err(),
            PackError::Io { .. }
        ));

        let empty = std::env::temp_dir().join(format!("rules-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            open(PackSource::SourceDir(empty.clone())).unwrap_err(),
            PackError::Invalid(_)
        ));
        // A source file that is not a pack decodes to a typed error.
        let bogus = empty.join("not-a-pack");
        std::fs::write(&bogus, b"hello world, definitely not CRPK").unwrap();
        assert!(matches!(
            open(PackSource::Compiled(bogus)).unwrap_err(),
            PackError::Crysl(CryslError::Pack { .. })
        ));
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn malformed_rule_source_surfaces_a_crysl_error_not_a_panic() {
        // Regression test for the panic-free loading path: a malformed
        // source must come back as Err, and a duplicate of a shipped
        // rule is also an error, not a panic.
        let dir = std::env::temp_dir().join(format!("rules-malformed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.crysl"), RULE_SOURCES[0].1).unwrap();
        std::fs::write(dir.join("bad.crysl"), "SPEC \nEVENTS ???").unwrap();
        let err = open(PackSource::SourceDir(dir.clone())).unwrap_err();
        assert!(matches!(err, PackError::Crysl(_)));
        assert!(!err.to_string().is_empty());

        std::fs::remove_file(dir.join("bad.crysl")).unwrap();
        std::fs::write(dir.join("dup.crysl"), RULE_SOURCES[0].1).unwrap();
        assert!(open(PackSource::SourceDir(dir.clone())).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pbekeyspec_matches_paper_figure_2() {
        let set = embedded();
        let r = set.by_name("javax.crypto.spec.PBEKeySpec").unwrap();
        assert_eq!(r.objects.len(), 4);
        assert!(r
            .method_event("c1")
            .unwrap()
            .is_constructor_of("PBEKeySpec"));
        assert_eq!(r.requires[0].name, "randomized");
        assert_eq!(r.ensures[0].predicate.name, "speccedKey");
        assert_eq!(r.ensures[0].after.as_deref(), Some("c1"));
        assert_eq!(r.negates[0].name, "speccedKey");
        assert_eq!(r.negates[0].args[1], PredArg::Wildcard);
        // iterationCount >= 10000 present
        assert!(r.constraints.iter().any(|c| matches!(
            c,
            Constraint::Cmp { left: crysl::ast::Atom::Var(v), .. } if v == "iterationCount"
        )));
        assert_eq!(r.forbidden.len(), 1);
    }

    #[test]
    fn every_rule_has_a_finite_generation_path_set() {
        let set = embedded();
        for rule in set.iter() {
            let paths = enumerate(rule, PathLimit::default())
                .unwrap_or_else(|e| panic!("{}: {e}", rule.class_name));
            assert!(!paths.is_empty(), "{} has no paths", rule.class_name);
            // Every enumerated path must be accepted by the rule's DFA.
            let dfa = Dfa::from_nfa(&Nfa::from_rule(rule).unwrap());
            for p in &paths {
                let word: Vec<&str> = p.iter().map(String::as_str).collect();
                assert!(
                    dfa.accepts(word.iter().copied()),
                    "{}: path {p:?} rejected",
                    rule.class_name
                );
            }
        }
    }

    #[test]
    fn cipher_has_instanceof_guarded_transformations() {
        let set = embedded();
        let cipher = set.by_name("javax.crypto.Cipher").unwrap();
        let mut symmetric = None;
        let mut asymmetric = 0;
        for c in &cipher.constraints {
            if let Constraint::Implies {
                antecedent,
                consequent,
            } = c
            {
                if let Constraint::InstanceOf { java_type, .. } = antecedent.as_ref() {
                    if java_type.as_str() == "javax.crypto.SecretKey" {
                        symmetric = Some(consequent.clone());
                    } else {
                        asymmetric += 1;
                    }
                }
            }
        }
        assert_eq!(asymmetric, 2);
        match symmetric.as_deref() {
            Some(Constraint::In { choices, .. }) => {
                assert_eq!(choices[0], Literal::Str("AES/CBC/PKCS5Padding".into()));
            }
            other => panic!("expected In constraint, got {other:?}"),
        }
    }

    #[test]
    fn signature_paths_split_on_sign_and_verify() {
        let set = embedded();
        let sig = set.by_name("java.security.Signature").unwrap();
        let paths = enumerate(sig, PathLimit::default()).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.contains(&"s1".to_owned())));
        assert!(paths.iter().any(|p| p.contains(&"v1".to_owned())));
    }

    #[test]
    fn predicate_graph_links_pbe_chain() {
        let set = embedded();
        // randomized: SecureRandom -> PBEKeySpec / IvParameterSpec / GCM
        assert_eq!(set.ensurers_of("randomized").len(), 1);
        // speccedKey: PBEKeySpec -> SecretKeyFactory
        assert_eq!(set.ensurers_of("speccedKey").len(), 1);
        // generatedKey: SecretKeyFactory, SecretKeySpec, KeyGenerator,
        // KeyPair, and Cipher (unwrap).
        assert_eq!(set.ensurers_of("generatedKey").len(), 5);
        // preparedIV: IvParameterSpec, GCMParameterSpec
        assert_eq!(set.ensurers_of("preparedIV").len(), 2);
    }

    #[test]
    fn every_shipped_rule_roundtrips_through_the_printer() {
        // parse → print → parse is the identity on rule semantics.
        for (name, src) in RULE_SOURCES {
            let rule = crysl::parse_rule(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = crysl::printer::print_rule(&rule);
            let reparsed = crysl::parse_rule(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse: {e}\n---\n{printed}"));
            assert_eq!(rule, reparsed, "{name} changed across the round trip");
        }
    }

    #[test]
    fn catalog_packs_all_parse_and_declare_use_cases() {
        for spec in PACK_CATALOG {
            let pack = open(PackSource::Catalog {
                name: spec.name.to_owned(),
                version: Some(spec.version),
            })
            .unwrap_or_else(|e| panic!("{}@v{}: {e}", spec.name, spec.version));
            assert_eq!(pack.rules.len(), spec.rules.len());
            assert_eq!(pack.manifest, spec.manifest());
            assert!(
                !spec.use_cases.is_empty(),
                "{}@v{} declares no use cases",
                spec.name,
                spec.version
            );
            let mut sorted = spec.use_cases.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.as_slice(), spec.use_cases, "{} ids", spec.name);
        }
        // The union of pack-declared use cases covers the ≥25 scale-out.
        let mut all: Vec<u8> = PACK_CATALOG
            .iter()
            .flat_map(|p| p.use_cases.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert!(all.len() >= 25, "only {} use cases catalogued", all.len());
    }

    #[test]
    fn embedded_is_the_latest_jca_catalog_pack() {
        let embedded = open(PackSource::Embedded).unwrap();
        let latest = catalog_pack("jca", None).unwrap();
        let from_catalog = open(PackSource::Catalog {
            name: "jca".to_owned(),
            version: None,
        })
        .unwrap();
        assert_eq!(embedded.manifest, latest.manifest());
        assert_eq!(embedded.rules, from_catalog.rules);
        assert_eq!(embedded.pack_fingerprint(), from_catalog.pack_fingerprint());
    }

    #[test]
    fn jca_versions_diverge_only_in_the_key_pair_generator() {
        let v1 = open(PackSource::Catalog {
            name: "jca".to_owned(),
            version: Some(1),
        })
        .unwrap();
        let v2 = open(PackSource::Catalog {
            name: "jca".to_owned(),
            version: Some(2),
        })
        .unwrap();
        assert_eq!(v1.rules.len(), v2.rules.len());
        // The ORDER automata agree (the divergence is in CONSTRAINTS),
        // so the packs are told apart by manifest, not fingerprint.
        assert_ne!(v1.manifest, v2.manifest);
        assert_ne!(v1.rules, v2.rules);
        let kpg1 = v1.rules.by_name("java.security.KeyPairGenerator").unwrap();
        let kpg2 = v2.rules.by_name("java.security.KeyPairGenerator").unwrap();
        assert_eq!(kpg1.in_choices("keySize").unwrap()[0], Literal::Int(1024));
        assert_eq!(kpg2.in_choices("keySize").unwrap()[0], Literal::Int(2048));
        for rule in v1.rules.iter() {
            let name = rule.class_name.as_str();
            if name != "java.security.KeyPairGenerator" {
                assert_eq!(Some(rule), v2.rules.by_name(name));
            }
        }
    }

    #[test]
    fn detect_recognizes_catalog_names_but_not_paths() {
        // (The bare name "jca" would shadow this crate's own jca/
        // source directory under the test cwd — existing paths win —
        // so the bare-name case uses a catalog name with no such dir.)
        assert_eq!(
            PackSource::detect("agreement"),
            PackSource::Catalog {
                name: "agreement".to_owned(),
                version: None
            }
        );
        assert_eq!(
            PackSource::detect("aead@v1"),
            PackSource::Catalog {
                name: "aead".to_owned(),
                version: Some(1)
            }
        );
        // Unknown versions still classify as catalog so open() can
        // report them as version errors rather than missing files.
        assert_eq!(
            PackSource::detect("jca@v9"),
            PackSource::Catalog {
                name: "jca".to_owned(),
                version: Some(9)
            }
        );
        // Non-catalog spellings keep their path semantics.
        assert!(matches!(
            PackSource::detect("no-such-pack.crpack"),
            PackSource::Compiled(_)
        ));
        assert!(matches!(
            PackSource::detect("some/dir/jca"),
            PackSource::Compiled(_)
        ));
    }

    #[test]
    fn unknown_catalog_version_is_a_typed_error() {
        let err = open(PackSource::Catalog {
            name: "jca".to_owned(),
            version: Some(9),
        })
        .unwrap_err();
        assert!(matches!(err, PackError::Crysl(CryslError::Pack { .. })));
        assert!(err.to_string().contains("jca@v9"), "{err}");
        assert!(err.to_string().contains("jca@v2"), "{err}");

        let err = open(PackSource::Catalog {
            name: "nope".to_owned(),
            version: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown rule pack"), "{err}");
    }

    #[test]
    fn compiled_catalog_packs_round_trip_their_manifest() {
        for spec in PACK_CATALOG {
            let pack = open(PackSource::Catalog {
                name: spec.name.to_owned(),
                version: Some(spec.version),
            })
            .unwrap();
            let bytes = pack.to_bytes().unwrap();
            let reopened = open_bytes(&bytes).unwrap();
            assert_eq!(reopened.manifest, spec.manifest());
            assert_eq!(reopened.rules, pack.rules);
            assert_eq!(reopened.pack_fingerprint(), pack.pack_fingerprint());
            assert!(reopened.is_precompiled());
        }
    }

    #[test]
    fn preference_order_lists_cbc_first_and_sha256_only() {
        let set = embedded();
        let md = set.by_name("java.security.MessageDigest").unwrap();
        assert_eq!(
            md.in_choices("alg").unwrap(),
            &[Literal::Str("SHA-256".into())]
        );
        let kg = set.by_name("javax.crypto.KeyGenerator").unwrap();
        assert_eq!(kg.in_choices("keySize").unwrap()[0], Literal::Int(128));
    }
}
