//! The JCA CrySL rule set shipped with this reproduction.
//!
//! Fourteen rules cover every class the paper's eleven use cases touch.
//! They are adaptations of the publicly maintained CrySL rules for the
//! Java Cryptography Architecture, rewritten in this crate's CrySL dialect
//! and tuned as the paper describes (§4): `in`-constraint literals ordered
//! by generation preference, predicate first arguments holding operation
//! results, and `instanceof` constraints distinguishing symmetric from
//! asymmetric Cipher usage.
//!
//! # Example
//!
//! ```
//! let set = rules::load()?;
//! assert!(set.by_name("javax.crypto.Cipher").is_some());
//! assert_eq!(set.len(), 14);
//! # Ok::<(), crysl::CryslError>(())
//! ```

use std::sync::OnceLock;

use crysl::{CryslError, RuleSet};

/// Name and source text of every shipped rule.
pub const RULE_SOURCES: &[(&str, &str)] = &[
    ("SecureRandom", include_str!("../jca/SecureRandom.crysl")),
    ("PBEKeySpec", include_str!("../jca/PBEKeySpec.crysl")),
    (
        "SecretKeyFactory",
        include_str!("../jca/SecretKeyFactory.crysl"),
    ),
    ("SecretKey", include_str!("../jca/SecretKey.crysl")),
    ("SecretKeySpec", include_str!("../jca/SecretKeySpec.crysl")),
    ("KeyGenerator", include_str!("../jca/KeyGenerator.crysl")),
    ("Cipher", include_str!("../jca/Cipher.crysl")),
    (
        "IvParameterSpec",
        include_str!("../jca/IvParameterSpec.crysl"),
    ),
    (
        "GCMParameterSpec",
        include_str!("../jca/GCMParameterSpec.crysl"),
    ),
    ("MessageDigest", include_str!("../jca/MessageDigest.crysl")),
    ("Signature", include_str!("../jca/Signature.crysl")),
    (
        "KeyPairGenerator",
        include_str!("../jca/KeyPairGenerator.crysl"),
    ),
    ("KeyPair", include_str!("../jca/KeyPair.crysl")),
    ("Mac", include_str!("../jca/Mac.crysl")),
];

/// Loads the shipped JCA rule set — the single entry point. The
/// embedded sources are lexed and parsed at most once per process (see
/// [`load_shared`]); every call after the first is a cheap clone of the
/// already-parsed set.
///
/// # Errors
///
/// Returns the first [`CryslError`] hit while parsing/validating a rule.
/// Parse failures are remembered per process: after a failure the next
/// call re-parses and surfaces the error again rather than panicking.
pub fn load() -> Result<RuleSet, CryslError> {
    load_shared().cloned()
}

/// The process-wide parsed JCA rule set, behind a [`OnceLock`]: parsed
/// on first access, shared (by reference) forever after. This is what
/// the generation engine holds, so concurrent sessions read one set.
///
/// # Errors
///
/// Returns the first [`CryslError`] hit while parsing/validating a rule.
/// Only a successful parse is cached; a later call retries.
pub fn load_shared() -> Result<&'static RuleSet, CryslError> {
    static SHARED: OnceLock<RuleSet> = OnceLock::new();
    if let Some(set) = SHARED.get() {
        return Ok(set);
    }
    let parsed = load_uncached()?;
    Ok(SHARED.get_or_init(|| parsed))
}

/// Parses the shipped rule set from source, bypassing the process-wide
/// cache. This is the cold path benchmarks and differential tests
/// measure against; ordinary callers want [`load`].
///
/// # Errors
///
/// Returns the first [`CryslError`] hit while parsing/validating a rule.
pub fn load_uncached() -> Result<RuleSet, CryslError> {
    rule_set_from_sources(RULE_SOURCES.iter().map(|(_, src)| *src))
}

/// Parses a rule set from raw CrySL sources — the loading path behind
/// [`load_uncached`], exposed so alternative rule sets load with the
/// same error discipline.
///
/// # Errors
///
/// Returns the first [`CryslError`] hit while parsing/validating a rule;
/// malformed sources never panic.
pub fn rule_set_from_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
) -> Result<RuleSet, CryslError> {
    let mut set = RuleSet::new();
    for src in sources {
        set.add_source(src)?;
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::ast::{Constraint, Literal, PredArg};
    use statemachine::paths::{enumerate, PathLimit};
    use statemachine::{Dfa, Nfa};

    #[test]
    fn all_rules_parse_and_validate() {
        let set = load_uncached().unwrap();
        assert_eq!(set.len(), RULE_SOURCES.len());
    }

    #[test]
    fn shared_set_is_parsed_once_and_load_clones_it() {
        let a = load_shared().unwrap();
        let b = load_shared().unwrap();
        assert!(std::ptr::eq(a, b), "OnceLock must hand out one instance");
        assert_eq!(load().unwrap().len(), a.len());
    }

    #[test]
    fn malformed_rule_source_surfaces_a_crysl_error_not_a_panic() {
        // Regression test for the panic-free loading path: a malformed
        // source must come back as Err(CryslError) through the same
        // loader the shipped set uses.
        let mut sources: Vec<&str> = RULE_SOURCES.iter().map(|(_, s)| *s).collect();
        sources.push("SPEC \nEVENTS ???");
        let err = rule_set_from_sources(sources).unwrap_err();
        let _: &CryslError = &err; // the concrete error type, not a panic
        assert!(!err.to_string().is_empty());

        // A duplicate of a shipped rule is also an error, not a panic.
        let twice = [RULE_SOURCES[0].1, RULE_SOURCES[0].1];
        assert!(rule_set_from_sources(twice).is_err());
    }

    #[test]
    fn pbekeyspec_matches_paper_figure_2() {
        let set = load().unwrap();
        let r = set.by_name("javax.crypto.spec.PBEKeySpec").unwrap();
        assert_eq!(r.objects.len(), 4);
        assert!(r
            .method_event("c1")
            .unwrap()
            .is_constructor_of("PBEKeySpec"));
        assert_eq!(r.requires[0].name, "randomized");
        assert_eq!(r.ensures[0].predicate.name, "speccedKey");
        assert_eq!(r.ensures[0].after.as_deref(), Some("c1"));
        assert_eq!(r.negates[0].name, "speccedKey");
        assert_eq!(r.negates[0].args[1], PredArg::Wildcard);
        // iterationCount >= 10000 present
        assert!(r.constraints.iter().any(|c| matches!(
            c,
            Constraint::Cmp { left: crysl::ast::Atom::Var(v), .. } if v == "iterationCount"
        )));
        assert_eq!(r.forbidden.len(), 1);
    }

    #[test]
    fn every_rule_has_a_finite_generation_path_set() {
        let set = load().unwrap();
        for rule in set.iter() {
            let paths = enumerate(rule, PathLimit::default())
                .unwrap_or_else(|e| panic!("{}: {e}", rule.class_name));
            assert!(!paths.is_empty(), "{} has no paths", rule.class_name);
            // Every enumerated path must be accepted by the rule's DFA.
            let dfa = Dfa::from_nfa(&Nfa::from_rule(rule).unwrap());
            for p in &paths {
                let word: Vec<&str> = p.iter().map(String::as_str).collect();
                assert!(
                    dfa.accepts(word.iter().copied()),
                    "{}: path {p:?} rejected",
                    rule.class_name
                );
            }
        }
    }

    #[test]
    fn cipher_has_instanceof_guarded_transformations() {
        let set = load().unwrap();
        let cipher = set.by_name("javax.crypto.Cipher").unwrap();
        let mut symmetric = None;
        let mut asymmetric = 0;
        for c in &cipher.constraints {
            if let Constraint::Implies {
                antecedent,
                consequent,
            } = c
            {
                if let Constraint::InstanceOf { java_type, .. } = antecedent.as_ref() {
                    if java_type.as_str() == "javax.crypto.SecretKey" {
                        symmetric = Some(consequent.clone());
                    } else {
                        asymmetric += 1;
                    }
                }
            }
        }
        assert_eq!(asymmetric, 2);
        match symmetric.as_deref() {
            Some(Constraint::In { choices, .. }) => {
                assert_eq!(choices[0], Literal::Str("AES/CBC/PKCS5Padding".into()));
            }
            other => panic!("expected In constraint, got {other:?}"),
        }
    }

    #[test]
    fn signature_paths_split_on_sign_and_verify() {
        let set = load().unwrap();
        let sig = set.by_name("java.security.Signature").unwrap();
        let paths = enumerate(sig, PathLimit::default()).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.contains(&"s1".to_owned())));
        assert!(paths.iter().any(|p| p.contains(&"v1".to_owned())));
    }

    #[test]
    fn predicate_graph_links_pbe_chain() {
        let set = load().unwrap();
        // randomized: SecureRandom -> PBEKeySpec / IvParameterSpec / GCM
        assert_eq!(set.ensurers_of("randomized").len(), 1);
        // speccedKey: PBEKeySpec -> SecretKeyFactory
        assert_eq!(set.ensurers_of("speccedKey").len(), 1);
        // generatedKey: SecretKeyFactory, SecretKeySpec, KeyGenerator,
        // KeyPair, and Cipher (unwrap).
        assert_eq!(set.ensurers_of("generatedKey").len(), 5);
        // preparedIV: IvParameterSpec, GCMParameterSpec
        assert_eq!(set.ensurers_of("preparedIV").len(), 2);
    }

    #[test]
    fn every_shipped_rule_roundtrips_through_the_printer() {
        // parse → print → parse is the identity on rule semantics.
        for (name, src) in RULE_SOURCES {
            let rule = crysl::parse_rule(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = crysl::printer::print_rule(&rule);
            let reparsed = crysl::parse_rule(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse: {e}\n---\n{printed}"));
            assert_eq!(rule, reparsed, "{name} changed across the round trip");
        }
    }

    #[test]
    fn preference_order_lists_cbc_first_and_sha256_only() {
        let set = load().unwrap();
        let md = set.by_name("java.security.MessageDigest").unwrap();
        assert_eq!(
            md.in_choices("alg").unwrap(),
            &[Literal::Str("SHA-256".into())]
        );
        let kg = set.by_name("javax.crypto.KeyGenerator").unwrap();
        assert_eq!(kg.in_choices("keySize").unwrap()[0], Literal::Int(128));
    }
}
