//! The JCA CrySL rule set shipped with this reproduction, behind one
//! unified loading API.
//!
//! Fourteen rules cover every class the paper's eleven use cases touch.
//! They are adaptations of the publicly maintained CrySL rules for the
//! Java Cryptography Architecture, rewritten in this crate's CrySL dialect
//! and tuned as the paper describes (§4): `in`-constraint literals ordered
//! by generation preference, predicate first arguments holding operation
//! results, and `instanceof` constraints distinguishing symmetric from
//! asymmetric Cipher usage.
//!
//! Every way to load rules goes through [`open`] with a [`PackSource`]:
//! the embedded JCA set, a directory of `*.crysl` sources, or a
//! precompiled `.crpack` binary produced by `cognicryptgen
//! compile-rules`. All three return the same [`RulePack`] handle; a
//! compiled pack additionally carries every rule's precompiled ORDER
//! artefact, so [`RulePack::seed`] can pre-fill an
//! [`statemachine::OrderCache`] and a cold boot compiles nothing.
//!
//! # Example
//!
//! ```
//! let pack = rules::open(rules::PackSource::Embedded)?;
//! assert!(pack.rules.by_name("javax.crypto.Cipher").is_some());
//! assert_eq!(pack.rules.len(), 14);
//! assert_eq!(pack.fingerprints.len(), 14);
//! # Ok::<(), rules::PackError>(())
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use crysl::{CryslError, RuleSet};
use statemachine::compile::fnv1a_64;
use statemachine::{order_fingerprint, CompiledOrder, OrderCache};

mod pack;

pub use pack::{pack_checksum, PACK_MAGIC, PACK_VERSION};

/// Name and source text of every shipped rule.
pub const RULE_SOURCES: &[(&str, &str)] = &[
    ("SecureRandom", include_str!("../jca/SecureRandom.crysl")),
    ("PBEKeySpec", include_str!("../jca/PBEKeySpec.crysl")),
    (
        "SecretKeyFactory",
        include_str!("../jca/SecretKeyFactory.crysl"),
    ),
    ("SecretKey", include_str!("../jca/SecretKey.crysl")),
    ("SecretKeySpec", include_str!("../jca/SecretKeySpec.crysl")),
    ("KeyGenerator", include_str!("../jca/KeyGenerator.crysl")),
    ("Cipher", include_str!("../jca/Cipher.crysl")),
    (
        "IvParameterSpec",
        include_str!("../jca/IvParameterSpec.crysl"),
    ),
    (
        "GCMParameterSpec",
        include_str!("../jca/GCMParameterSpec.crysl"),
    ),
    ("MessageDigest", include_str!("../jca/MessageDigest.crysl")),
    ("Signature", include_str!("../jca/Signature.crysl")),
    (
        "KeyPairGenerator",
        include_str!("../jca/KeyPairGenerator.crysl"),
    ),
    ("KeyPair", include_str!("../jca/KeyPair.crysl")),
    ("Mac", include_str!("../jca/Mac.crysl")),
];

/// Where a rule pack comes from — the single argument of [`open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackSource {
    /// The fourteen JCA rules compiled into this binary
    /// ([`RULE_SOURCES`]).
    Embedded,
    /// A directory of `*.crysl` source files, read in file-name order.
    SourceDir(PathBuf),
    /// A precompiled `.crpack` binary written by [`RulePack::to_bytes`]
    /// (the `compile-rules` subcommand).
    Compiled(PathBuf),
}

impl PackSource {
    /// Classifies a filesystem path the way `--rules` flags do: a
    /// directory is a source pack, anything else is treated as a
    /// compiled pack (and will fail with a typed error if it is not).
    pub fn detect(path: impl Into<PathBuf>) -> PackSource {
        let path = path.into();
        if path.is_dir() {
            PackSource::SourceDir(path)
        } else {
            PackSource::Compiled(path)
        }
    }

    /// Stable short label for telemetry (`embedded`, `source-dir`,
    /// `compiled`).
    pub fn kind(&self) -> &'static str {
        match self {
            PackSource::Embedded => "embedded",
            PackSource::SourceDir(_) => "source-dir",
            PackSource::Compiled(_) => "compiled",
        }
    }

    /// The filesystem path behind this source, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            PackSource::Embedded => None,
            PackSource::SourceDir(p) | PackSource::Compiled(p) => Some(p),
        }
    }
}

impl fmt::Display for PackSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackSource::Embedded => f.write_str("embedded"),
            PackSource::SourceDir(p) => write!(f, "source-dir:{}", p.display()),
            PackSource::Compiled(p) => write!(f, "compiled:{}", p.display()),
        }
    }
}

/// Everything [`open`] can fail with. The facade maps `Io` to its
/// I/O class (exit 5), `Invalid` to invalid-input (exit 6) and
/// `Crysl` — parse, validation and pack corruption alike — to the
/// rules class (exit 3).
#[derive(Debug)]
pub enum PackError {
    /// A filesystem read failed.
    Io {
        /// What was being read.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The source is structurally unusable (e.g. a directory with no
    /// `*.crysl` file).
    Invalid(String),
    /// Lexing, parsing, validation, or pack decoding failed.
    Crysl(CryslError),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            PackError::Invalid(msg) => f.write_str(msg),
            PackError::Crysl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PackError::Io { source, .. } => Some(source),
            PackError::Invalid(_) => None,
            PackError::Crysl(e) => Some(e),
        }
    }
}

impl From<CryslError> for PackError {
    fn from(e: CryslError) -> Self {
        PackError::Crysl(e)
    }
}

/// A loaded rule pack: the rules, their ORDER fingerprints, the pack
/// format version, and where it all came from. Returned by [`open`]
/// for every [`PackSource`]; only a [`PackSource::Compiled`] origin
/// carries precompiled artefacts (see [`RulePack::seed`]).
#[derive(Debug, Clone)]
pub struct RulePack {
    /// The parsed (or decoded) and validated rules.
    pub rules: RuleSet,
    /// [`order_fingerprint`] of every distinct rule ORDER, ascending.
    pub fingerprints: Vec<u64>,
    /// The `.crpack` format version this pack has (or would serialize
    /// to): always [`PACK_VERSION`] in this build.
    pub version: u32,
    /// The source this pack was opened from.
    pub origin: PackSource,
    /// Precompiled ORDER artefacts, one per fingerprint, already
    /// reference-counted so seeding a cache shares rather than deep-
    /// copies them. Empty unless the origin is a compiled pack.
    artefacts: Vec<Arc<CompiledOrder>>,
}

impl RulePack {
    fn from_rule_set(
        rules: RuleSet,
        origin: PackSource,
        artefacts: Vec<Arc<CompiledOrder>>,
    ) -> RulePack {
        let mut fingerprints: Vec<u64> = rules.iter().map(order_fingerprint).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        RulePack {
            rules,
            fingerprints,
            version: PACK_VERSION,
            origin,
            artefacts,
        }
    }

    /// Whether this pack carries precompiled ORDER artefacts for every
    /// rule (true exactly when the origin is [`PackSource::Compiled`]).
    pub fn is_precompiled(&self) -> bool {
        !self.artefacts.is_empty()
    }

    /// Pre-seeds `cache` with this pack's precompiled artefacts,
    /// returning how many entries were inserted. For a compiled pack
    /// this is the whole point: after seeding, an engine warm-up over
    /// these rules is all cache hits and compiles nothing. For a
    /// source-origin pack there is nothing to seed and this returns 0.
    pub fn seed(&self, cache: &OrderCache) -> usize {
        cache.seed(self.artefacts.iter().cloned())
    }

    /// Content fingerprint of the whole pack: FNV-1a-64 over the sorted
    /// rule fingerprints. Two packs agree exactly when their rules'
    /// compilation inputs agree; surfaced in `/loadz`, `/metrics` and
    /// the Table-1 report so operators can tell which pack a daemon
    /// actually serves.
    pub fn pack_fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.fingerprints.len() * 8);
        for fp in &self.fingerprints {
            bytes.extend_from_slice(&fp.to_le_bytes());
        }
        fnv1a_64(&bytes)
    }

    /// Serializes this pack — rules plus freshly compiled ORDER
    /// artefacts — into the versioned, checksummed `.crpack` byte
    /// format ([`pack`] module docs spell out the layout).
    ///
    /// # Errors
    ///
    /// [`CryslError::Pack`] when a rule's ORDER fails to compile.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CryslError> {
        pack::encode(&self.rules)
    }
}

/// Opens a rule pack from any [`PackSource`] — the single loading
/// entry point for the whole workspace.
///
/// [`PackSource::Embedded`] is parsed at most once per process and
/// served from a shared copy afterwards (the cost of a call after the
/// first is one `RuleSet` clone). Filesystem sources are re-read on
/// every call, which is what lets `serve` hot-reload them.
///
/// # Errors
///
/// See [`PackError`]; malformed sources and corrupt packs are typed
/// errors, never panics.
pub fn open(source: PackSource) -> Result<RulePack, PackError> {
    match source {
        PackSource::Embedded => {
            let shared = embedded_shared()?;
            Ok(RulePack::from_rule_set(
                shared.clone(),
                PackSource::Embedded,
                Vec::new(),
            ))
        }
        other => open_uncached(other),
    }
}

/// [`open`] without the process-wide embedded cache: every call — for
/// every source kind — lexes, parses and validates (or decodes) from
/// scratch. This is the cold path benchmarks measure; ordinary callers
/// want [`open`].
///
/// # Errors
///
/// See [`PackError`].
pub fn open_uncached(source: PackSource) -> Result<RulePack, PackError> {
    match source {
        PackSource::Embedded => {
            let rules = parse_embedded()?;
            Ok(RulePack::from_rule_set(
                rules,
                PackSource::Embedded,
                Vec::new(),
            ))
        }
        PackSource::SourceDir(dir) => {
            let rules = parse_source_dir(&dir)?;
            Ok(RulePack::from_rule_set(
                rules,
                PackSource::SourceDir(dir),
                Vec::new(),
            ))
        }
        PackSource::Compiled(path) => {
            let bytes = std::fs::read(&path).map_err(|e| PackError::Io {
                path: path.clone(),
                source: e,
            })?;
            let mut opened = open_bytes(&bytes)?;
            opened.origin = PackSource::Compiled(path);
            Ok(opened)
        }
    }
}

/// Decodes a `.crpack` byte image already in memory — what
/// [`PackSource::Compiled`] does after its file read. This is the
/// hostile-input surface: the bytes are checksum-verified and
/// length-capped before any structure is trusted, and *any* corruption
/// — truncation, bit flips, forged counts — is a typed
/// [`CryslError::Pack`], never a panic. The fuzzer drives this
/// directly with mutated pack images.
///
/// # Errors
///
/// [`PackError::Crysl`] wrapping the decode failure.
pub fn open_bytes(bytes: &[u8]) -> Result<RulePack, PackError> {
    let decoded = pack::decode(bytes)?;
    // The decoder already enforced that the artefact fingerprints equal
    // the distinct rule fingerprints in ascending order, so they *are*
    // the pack's fingerprint list — re-deriving it from the rules would
    // repeat per-rule hashing the decode just paid for.
    let fingerprints = decoded.artefacts.iter().map(|a| a.fingerprint).collect();
    Ok(RulePack {
        rules: decoded.rules,
        fingerprints,
        version: decoded.version,
        origin: PackSource::Compiled(PathBuf::from("<bytes>")),
        artefacts: decoded.artefacts.into_iter().map(Arc::new).collect(),
    })
}

/// The process-wide parsed embedded rule set: parsed on first access,
/// shared forever after. Only a successful parse is cached; after a
/// failure the next call re-parses and surfaces the error again.
fn embedded_shared() -> Result<&'static RuleSet, CryslError> {
    static SHARED: OnceLock<RuleSet> = OnceLock::new();
    if let Some(set) = SHARED.get() {
        return Ok(set);
    }
    let parsed = parse_embedded()?;
    Ok(SHARED.get_or_init(|| parsed))
}

fn parse_embedded() -> Result<RuleSet, CryslError> {
    let mut set = RuleSet::new();
    for (_, src) in RULE_SOURCES {
        set.add_source(src)?;
    }
    Ok(set)
}

/// Parses a rule pack from a directory of `*.crysl` files, sorted by
/// file name so the pack's rule order — and therefore everything
/// downstream — is independent of directory-iteration order.
fn parse_source_dir(dir: &Path) -> Result<RuleSet, PackError> {
    let io_err = |path: &Path, e: std::io::Error| PackError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "crysl") {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(PackError::Invalid(format!(
            "rule pack {} holds no .crysl file",
            dir.display()
        )));
    }
    files.sort();
    let mut set = RuleSet::new();
    for path in &files {
        let source = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        set.add_source(&source)?;
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crysl::ast::{Constraint, Literal, PredArg};
    use statemachine::paths::{enumerate, PathLimit};
    use statemachine::{Dfa, Nfa};

    fn embedded() -> RuleSet {
        open(PackSource::Embedded).unwrap().rules
    }

    #[test]
    fn all_rules_parse_and_validate() {
        let pack = open_uncached(PackSource::Embedded).unwrap();
        assert_eq!(pack.rules.len(), RULE_SOURCES.len());
        assert_eq!(pack.origin, PackSource::Embedded);
        assert!(!pack.is_precompiled());
    }

    #[test]
    fn embedded_opens_share_one_parse() {
        let a = open(PackSource::Embedded).unwrap();
        let b = open(PackSource::Embedded).unwrap();
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.pack_fingerprint(), b.pack_fingerprint());
        // Both opens ride the same process-wide parse.
        let shared = embedded_shared().unwrap();
        assert_eq!(*shared, a.rules);
    }

    #[test]
    fn source_dir_and_compiled_pack_agree_with_embedded() {
        let dir = std::env::temp_dir().join(format!("rules-open-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, src) in RULE_SOURCES {
            std::fs::write(dir.join(format!("{name}.crysl")), src).unwrap();
        }
        let from_dir = open(PackSource::detect(&dir)).unwrap();
        assert!(matches!(from_dir.origin, PackSource::SourceDir(_)));

        let embedded = open(PackSource::Embedded).unwrap();
        assert_eq!(from_dir.rules, embedded.rules);
        assert_eq!(from_dir.pack_fingerprint(), embedded.pack_fingerprint());

        let crpack = dir.join("jca.crpack");
        std::fs::write(&crpack, embedded.to_bytes().unwrap()).unwrap();
        let compiled = open(PackSource::detect(&crpack)).unwrap();
        assert!(matches!(compiled.origin, PackSource::Compiled(_)));
        assert!(compiled.is_precompiled());
        assert_eq!(compiled.rules, embedded.rules);
        assert_eq!(compiled.fingerprints, embedded.fingerprints);
        assert_eq!(compiled.pack_fingerprint(), embedded.pack_fingerprint());

        // Seeding an empty cache inserts one artefact per fingerprint;
        // a source pack seeds nothing.
        let cache = OrderCache::new();
        assert_eq!(compiled.seed(&cache), compiled.fingerprints.len());
        assert_eq!(embedded.seed(&cache), 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_errors_are_typed_not_panics() {
        let missing = PathBuf::from("/nonexistent/path/jca.crpack");
        assert!(matches!(
            open(PackSource::Compiled(missing)).unwrap_err(),
            PackError::Io { .. }
        ));

        let empty = std::env::temp_dir().join(format!("rules-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            open(PackSource::SourceDir(empty.clone())).unwrap_err(),
            PackError::Invalid(_)
        ));
        // A source file that is not a pack decodes to a typed error.
        let bogus = empty.join("not-a-pack");
        std::fs::write(&bogus, b"hello world, definitely not CRPK").unwrap();
        assert!(matches!(
            open(PackSource::Compiled(bogus)).unwrap_err(),
            PackError::Crysl(CryslError::Pack { .. })
        ));
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn malformed_rule_source_surfaces_a_crysl_error_not_a_panic() {
        // Regression test for the panic-free loading path: a malformed
        // source must come back as Err, and a duplicate of a shipped
        // rule is also an error, not a panic.
        let dir = std::env::temp_dir().join(format!("rules-malformed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.crysl"), RULE_SOURCES[0].1).unwrap();
        std::fs::write(dir.join("bad.crysl"), "SPEC \nEVENTS ???").unwrap();
        let err = open(PackSource::SourceDir(dir.clone())).unwrap_err();
        assert!(matches!(err, PackError::Crysl(_)));
        assert!(!err.to_string().is_empty());

        std::fs::remove_file(dir.join("bad.crysl")).unwrap();
        std::fs::write(dir.join("dup.crysl"), RULE_SOURCES[0].1).unwrap();
        assert!(open(PackSource::SourceDir(dir.clone())).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pbekeyspec_matches_paper_figure_2() {
        let set = embedded();
        let r = set.by_name("javax.crypto.spec.PBEKeySpec").unwrap();
        assert_eq!(r.objects.len(), 4);
        assert!(r
            .method_event("c1")
            .unwrap()
            .is_constructor_of("PBEKeySpec"));
        assert_eq!(r.requires[0].name, "randomized");
        assert_eq!(r.ensures[0].predicate.name, "speccedKey");
        assert_eq!(r.ensures[0].after.as_deref(), Some("c1"));
        assert_eq!(r.negates[0].name, "speccedKey");
        assert_eq!(r.negates[0].args[1], PredArg::Wildcard);
        // iterationCount >= 10000 present
        assert!(r.constraints.iter().any(|c| matches!(
            c,
            Constraint::Cmp { left: crysl::ast::Atom::Var(v), .. } if v == "iterationCount"
        )));
        assert_eq!(r.forbidden.len(), 1);
    }

    #[test]
    fn every_rule_has_a_finite_generation_path_set() {
        let set = embedded();
        for rule in set.iter() {
            let paths = enumerate(rule, PathLimit::default())
                .unwrap_or_else(|e| panic!("{}: {e}", rule.class_name));
            assert!(!paths.is_empty(), "{} has no paths", rule.class_name);
            // Every enumerated path must be accepted by the rule's DFA.
            let dfa = Dfa::from_nfa(&Nfa::from_rule(rule).unwrap());
            for p in &paths {
                let word: Vec<&str> = p.iter().map(String::as_str).collect();
                assert!(
                    dfa.accepts(word.iter().copied()),
                    "{}: path {p:?} rejected",
                    rule.class_name
                );
            }
        }
    }

    #[test]
    fn cipher_has_instanceof_guarded_transformations() {
        let set = embedded();
        let cipher = set.by_name("javax.crypto.Cipher").unwrap();
        let mut symmetric = None;
        let mut asymmetric = 0;
        for c in &cipher.constraints {
            if let Constraint::Implies {
                antecedent,
                consequent,
            } = c
            {
                if let Constraint::InstanceOf { java_type, .. } = antecedent.as_ref() {
                    if java_type.as_str() == "javax.crypto.SecretKey" {
                        symmetric = Some(consequent.clone());
                    } else {
                        asymmetric += 1;
                    }
                }
            }
        }
        assert_eq!(asymmetric, 2);
        match symmetric.as_deref() {
            Some(Constraint::In { choices, .. }) => {
                assert_eq!(choices[0], Literal::Str("AES/CBC/PKCS5Padding".into()));
            }
            other => panic!("expected In constraint, got {other:?}"),
        }
    }

    #[test]
    fn signature_paths_split_on_sign_and_verify() {
        let set = embedded();
        let sig = set.by_name("java.security.Signature").unwrap();
        let paths = enumerate(sig, PathLimit::default()).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.contains(&"s1".to_owned())));
        assert!(paths.iter().any(|p| p.contains(&"v1".to_owned())));
    }

    #[test]
    fn predicate_graph_links_pbe_chain() {
        let set = embedded();
        // randomized: SecureRandom -> PBEKeySpec / IvParameterSpec / GCM
        assert_eq!(set.ensurers_of("randomized").len(), 1);
        // speccedKey: PBEKeySpec -> SecretKeyFactory
        assert_eq!(set.ensurers_of("speccedKey").len(), 1);
        // generatedKey: SecretKeyFactory, SecretKeySpec, KeyGenerator,
        // KeyPair, and Cipher (unwrap).
        assert_eq!(set.ensurers_of("generatedKey").len(), 5);
        // preparedIV: IvParameterSpec, GCMParameterSpec
        assert_eq!(set.ensurers_of("preparedIV").len(), 2);
    }

    #[test]
    fn every_shipped_rule_roundtrips_through_the_printer() {
        // parse → print → parse is the identity on rule semantics.
        for (name, src) in RULE_SOURCES {
            let rule = crysl::parse_rule(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = crysl::printer::print_rule(&rule);
            let reparsed = crysl::parse_rule(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse: {e}\n---\n{printed}"));
            assert_eq!(rule, reparsed, "{name} changed across the round trip");
        }
    }

    #[test]
    fn preference_order_lists_cbc_first_and_sha256_only() {
        let set = embedded();
        let md = set.by_name("java.security.MessageDigest").unwrap();
        assert_eq!(
            md.in_choices("alg").unwrap(),
            &[Literal::Str("SHA-256".into())]
        );
        let kg = set.by_name("javax.crypto.KeyGenerator").unwrap();
        assert_eq!(kg.in_choices("keySize").unwrap()[0], Literal::Int(128));
    }
}
