//! Structural type checker for the Java subset.
//!
//! Checks a [`CompilationUnit`] against a [`TypeTable`]: every variable is
//! declared before use, every call resolves to a modelled method with
//! assignable argument types, declarations and returns are type-correct.
//! This is the reproduction of the paper's guarantee that generated code
//! "type-checks in Java".

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ast::*;
use crate::typetable::TypeTable;

/// A type error, with a human-readable description of the offending
/// construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description of the violation.
    pub message: String,
}

impl TypeError {
    fn new(message: impl Into<String>) -> Self {
        TypeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl Error for TypeError {}

/// The inferred type of an expression; `null` gets its own marker so it is
/// assignable to any reference type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inferred {
    /// An ordinary type.
    Ty(JavaType),
    /// The `null` literal.
    Null,
}

impl Inferred {
    fn assignable_to(&self, to: &JavaType, table: &TypeTable) -> bool {
        match self {
            Inferred::Null => to.is_reference(),
            Inferred::Ty(t) => table.is_assignable(t, to),
        }
    }
}

/// Checks every class and method of `unit` against `table`.
///
/// # Errors
///
/// Returns the first [`TypeError`] found, describing the method and
/// construct at fault. Methods of classes declared inside `unit` may call
/// each other through a synthetic local object; cross-class calls resolve
/// against the unit's own classes as well as the table.
pub fn check_unit(unit: &CompilationUnit, table: &TypeTable) -> Result<(), TypeError> {
    for class in &unit.classes {
        for method in &class.methods {
            check_method(unit, class, method, table).map_err(|e| {
                TypeError::new(format!("{}.{}: {}", class.name, method.name, e.message))
            })?;
        }
    }
    Ok(())
}

fn check_method(
    unit: &CompilationUnit,
    class: &ClassDecl,
    method: &MethodDecl,
    table: &TypeTable,
) -> Result<(), TypeError> {
    let mut env: HashMap<String, JavaType> = HashMap::new();
    for p in &method.params {
        if env.insert(p.name.clone(), p.ty.clone()).is_some() {
            return Err(TypeError::new(format!("duplicate parameter `{}`", p.name)));
        }
    }
    let ck = Checker { unit, class, table };
    ck.check_block(&method.body, &mut env, &method.return_type)
}

struct Checker<'a> {
    unit: &'a CompilationUnit,
    class: &'a ClassDecl,
    table: &'a TypeTable,
}

impl Checker<'_> {
    fn check_block(
        &self,
        stmts: &[Stmt],
        env: &mut HashMap<String, JavaType>,
        ret: &JavaType,
    ) -> Result<(), TypeError> {
        for s in stmts {
            self.check_stmt(s, env, ret)?;
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        s: &Stmt,
        env: &mut HashMap<String, JavaType>,
        ret: &JavaType,
    ) -> Result<(), TypeError> {
        match s {
            Stmt::Decl { ty, name, init } => {
                if env.contains_key(name) {
                    return Err(TypeError::new(format!("variable `{name}` redeclared")));
                }
                if let Some(e) = init {
                    let it = self.infer(e, env)?;
                    if !it.assignable_to(ty, self.table) {
                        return Err(TypeError::new(format!(
                            "cannot initialize `{name}: {ty}` with {it:?}"
                        )));
                    }
                }
                env.insert(name.clone(), ty.clone());
                Ok(())
            }
            Stmt::Assign { target, value } => {
                let Some(ty) = env.get(target).cloned() else {
                    return Err(TypeError::new(format!(
                        "assignment to undeclared `{target}`"
                    )));
                };
                let it = self.infer(value, env)?;
                if !it.assignable_to(&ty, self.table) {
                    return Err(TypeError::new(format!(
                        "cannot assign {it:?} to `{target}: {ty}`"
                    )));
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.infer(e, env)?;
                Ok(())
            }
            Stmt::Return(None) => {
                if *ret != JavaType::Void {
                    return Err(TypeError::new("missing return value"));
                }
                Ok(())
            }
            Stmt::Return(Some(e)) => {
                let it = self.infer(e, env)?;
                if *ret == JavaType::Void {
                    return Err(TypeError::new("void method returns a value"));
                }
                if !it.assignable_to(ret, self.table) {
                    return Err(TypeError::new(format!(
                        "return type mismatch: {it:?} vs `{ret}`"
                    )));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let it = self.infer(cond, env)?;
                if it != Inferred::Ty(JavaType::Boolean) {
                    return Err(TypeError::new("if-condition must be boolean"));
                }
                // Each branch introduces its own scope.
                let mut then_env = env.clone();
                self.check_block(then_body, &mut then_env, ret)?;
                let mut else_env = env.clone();
                self.check_block(else_body, &mut else_env, ret)
            }
            Stmt::Comment(_) => Ok(()),
        }
    }

    fn infer(&self, e: &Expr, env: &HashMap<String, JavaType>) -> Result<Inferred, TypeError> {
        match e {
            Expr::Lit(Lit::Int(_)) => Ok(Inferred::Ty(JavaType::Int)),
            Expr::Lit(Lit::Str(_)) => Ok(Inferred::Ty(JavaType::string())),
            Expr::Lit(Lit::Bool(_)) => Ok(Inferred::Ty(JavaType::Boolean)),
            Expr::Lit(Lit::Null) => Ok(Inferred::Null),
            Expr::Var(v) => env
                .get(v)
                .cloned()
                .map(Inferred::Ty)
                .ok_or_else(|| TypeError::new(format!("undeclared variable `{v}`"))),
            Expr::New { class, args } => {
                let arg_tys = self.infer_args(args, env)?;
                if self.table.resolve_ctor(class, &arg_tys).is_none() {
                    return Err(TypeError::new(format!(
                        "no constructor {class}({arg_tys:?})"
                    )));
                }
                Ok(Inferred::Ty(JavaType::class(class.clone())))
            }
            Expr::Call { recv, name, args } => {
                let recv_t = self.infer(recv, env)?;
                let Inferred::Ty(rt) = recv_t else {
                    return Err(TypeError::new(format!("call `{name}` on null")));
                };
                // Calls on classes declared in the unit itself (template
                // methods) resolve against the unit.
                if let Some(class_name) = rt.class_name() {
                    if let Some(local) = self.local_class(class_name) {
                        return self.infer_local_call(local, name, args, env);
                    }
                    let arg_tys = self.infer_args(args, env)?;
                    let m = self
                        .table
                        .resolve_method(class_name, name, false, &arg_tys)
                        .ok_or_else(|| {
                            TypeError::new(format!("no method {class_name}.{name}({arg_tys:?})"))
                        })?;
                    Ok(Inferred::Ty(m.ret.clone()))
                } else {
                    Err(TypeError::new(format!(
                        "method call `{name}` on non-class type `{rt}`"
                    )))
                }
            }
            Expr::StaticCall { class, name, args } => {
                let arg_tys = self.infer_args(args, env)?;
                let m = self
                    .table
                    .resolve_method(class, name, true, &arg_tys)
                    .ok_or_else(|| {
                        TypeError::new(format!("no static method {class}.{name}({arg_tys:?})"))
                    })?;
                Ok(Inferred::Ty(m.ret.clone()))
            }
            Expr::StaticField { class, field } => {
                let c = self
                    .table
                    .resolve_constant(class, field)
                    .ok_or_else(|| TypeError::new(format!("no constant {class}.{field}")))?;
                Ok(Inferred::Ty(c.ty.clone()))
            }
            Expr::NewArray { elem, len } => {
                let lt = self.infer(len, env)?;
                if lt != Inferred::Ty(JavaType::Int) {
                    return Err(TypeError::new("array length must be int"));
                }
                Ok(Inferred::Ty(JavaType::Array(Box::new(elem.clone()))))
            }
            Expr::ArrayLit { elem, elems } => {
                for el in elems {
                    let it = self.infer(el, env)?;
                    // Byte array literals are written with int literals,
                    // mirroring Java's implicit narrowing for constants.
                    let ok = match (&it, elem) {
                        (Inferred::Ty(JavaType::Int), JavaType::Byte | JavaType::Char) => true,
                        _ => it.assignable_to(elem, self.table),
                    };
                    if !ok {
                        return Err(TypeError::new(format!(
                            "array element {it:?} not assignable to `{elem}`"
                        )));
                    }
                }
                Ok(Inferred::Ty(JavaType::Array(Box::new(elem.clone()))))
            }
            Expr::Bin { op, lhs, rhs } => {
                let lt = self.infer(lhs, env)?;
                let rt = self.infer(rhs, env)?;
                match op {
                    BinOp::Add => {
                        if lt == Inferred::Ty(JavaType::Int) && rt == Inferred::Ty(JavaType::Int) {
                            Ok(Inferred::Ty(JavaType::Int))
                        } else if lt == Inferred::Ty(JavaType::string())
                            || rt == Inferred::Ty(JavaType::string())
                        {
                            Ok(Inferred::Ty(JavaType::string()))
                        } else {
                            Err(TypeError::new("`+` needs ints or a string"))
                        }
                    }
                    BinOp::Lt => {
                        if lt == Inferred::Ty(JavaType::Int) && rt == Inferred::Ty(JavaType::Int) {
                            Ok(Inferred::Ty(JavaType::Boolean))
                        } else {
                            Err(TypeError::new("`<` needs int operands"))
                        }
                    }
                    BinOp::Eq | BinOp::Ne => Ok(Inferred::Ty(JavaType::Boolean)),
                }
            }
            Expr::Cast { ty, expr } => {
                self.infer(expr, env)?;
                Ok(Inferred::Ty(ty.clone()))
            }
        }
    }

    fn infer_args(
        &self,
        args: &[Expr],
        env: &HashMap<String, JavaType>,
    ) -> Result<Vec<JavaType>, TypeError> {
        args.iter()
            .map(|a| match self.infer(a, env)? {
                Inferred::Ty(t) => Ok(t),
                // `null` arguments match any reference parameter; model as
                // Object, which our assignability accepts only for Object
                // parameters — stricter than Java but safe.
                Inferred::Null => Ok(JavaType::class("java.lang.Object")),
            })
            .collect()
    }

    fn local_class(&self, name: &str) -> Option<&ClassDecl> {
        // Local classes are referenced by simple name.
        self.unit
            .classes
            .iter()
            .find(|c| c.name == name)
            .or_else(|| {
                if self.class.name == name {
                    Some(self.class)
                } else {
                    None
                }
            })
    }

    fn infer_local_call(
        &self,
        class: &ClassDecl,
        name: &str,
        args: &[Expr],
        env: &HashMap<String, JavaType>,
    ) -> Result<Inferred, TypeError> {
        let m = class
            .find_method(name)
            .ok_or_else(|| TypeError::new(format!("no method {}.{}", class.name, name)))?;
        let arg_tys = self.infer_args(args, env)?;
        if m.params.len() != arg_tys.len() {
            return Err(TypeError::new(format!(
                "{}.{} expects {} arguments, got {}",
                class.name,
                name,
                m.params.len(),
                arg_tys.len()
            )));
        }
        for (p, a) in m.params.iter().zip(&arg_tys) {
            if !self.table.is_assignable(a, &p.ty) {
                return Err(TypeError::new(format!(
                    "{}.{}: argument `{a}` not assignable to `{}`",
                    class.name, name, p.ty
                )));
            }
        }
        Ok(Inferred::Ty(m.return_type.clone()))
    }
}

/// Resolves `new C()` of unit-local classes: the checker treats a local
/// class name as constructible with zero arguments (our templates only ever
/// use the implicit default constructor).
pub fn is_local_default_ctor(unit: &CompilationUnit, class: &str) -> bool {
    unit.classes.iter().any(|c| c.name == class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jca::jca_type_table;

    fn check_method_src(m: MethodDecl) -> Result<(), TypeError> {
        let unit = CompilationUnit::new("p").class(ClassDecl::new("C").method(m));
        check_unit(&unit, &jca_type_table())
    }

    #[test]
    fn accepts_well_typed_digest() {
        let m = MethodDecl::new("hash", JavaType::byte_array())
            .param(JavaType::byte_array(), "data")
            .statement(Stmt::decl_init(
                JavaType::class("java.security.MessageDigest"),
                "md",
                Expr::static_call(
                    "java.security.MessageDigest",
                    "getInstance",
                    vec![Expr::str("SHA-256")],
                ),
            ))
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("md"),
                "digest",
                vec![Expr::var("data")],
            ))));
        check_method_src(m).unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let m = MethodDecl::new("f", JavaType::Void).statement(Stmt::Expr(Expr::var("ghost")));
        let err = check_method_src(m).unwrap_err();
        assert!(err.message.contains("undeclared variable"));
    }

    #[test]
    fn rejects_bad_argument_type() {
        // MessageDigest.getInstance(int) does not exist.
        let m = MethodDecl::new("f", JavaType::Void).statement(Stmt::Expr(Expr::static_call(
            "java.security.MessageDigest",
            "getInstance",
            vec![Expr::int(5)],
        )));
        assert!(check_method_src(m).is_err());
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let m = MethodDecl::new("f", JavaType::Int).statement(Stmt::Return(Some(Expr::str("x"))));
        assert!(check_method_src(m).is_err());
    }

    #[test]
    fn rejects_redeclaration() {
        let m = MethodDecl::new("f", JavaType::Void)
            .statement(Stmt::decl(JavaType::Int, "x"))
            .statement(Stmt::decl(JavaType::Int, "x"));
        assert!(check_method_src(m).is_err());
    }

    #[test]
    fn null_assignable_to_reference_only() {
        let ok = MethodDecl::new("f", JavaType::Void).statement(Stmt::decl_init(
            JavaType::class("javax.crypto.SecretKey"),
            "k",
            Expr::null(),
        ));
        check_method_src(ok).unwrap();
        let bad = MethodDecl::new("f", JavaType::Void).statement(Stmt::decl_init(
            JavaType::Int,
            "k",
            Expr::null(),
        ));
        assert!(check_method_src(bad).is_err());
    }

    #[test]
    fn widening_to_interface_parameter() {
        // generateSecret takes KeySpec; PBEKeySpec implements it.
        let m = MethodDecl::new("f", JavaType::Void)
            .param(JavaType::char_array(), "pwd")
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.spec.PBEKeySpec"),
                "spec",
                Expr::new_object(
                    "javax.crypto.spec.PBEKeySpec",
                    vec![
                        Expr::var("pwd"),
                        Expr::new_array(JavaType::Byte, Expr::int(32)),
                        Expr::int(10000),
                        Expr::int(128),
                    ],
                ),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKeyFactory"),
                "skf",
                Expr::static_call(
                    "javax.crypto.SecretKeyFactory",
                    "getInstance",
                    vec![Expr::str("PBKDF2WithHmacSHA256")],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("skf"),
                "generateSecret",
                vec![Expr::var("spec")],
            )));
        check_method_src(m).unwrap();
    }

    #[test]
    fn calls_between_unit_classes_resolve() {
        let callee =
            MethodDecl::new("produce", JavaType::Int).statement(Stmt::Return(Some(Expr::int(1))));
        let caller = MethodDecl::new("consume", JavaType::Int)
            .statement(Stmt::decl_init(
                JavaType::class("Helper"),
                "h",
                Expr::new_object("Helper", vec![]),
            ))
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("h"),
                "produce",
                vec![],
            ))));
        let mut table = jca_type_table();
        // Local classes are constructible with their default constructor:
        // model `Helper` in the table for the `new` expression.
        table.add(crate::typetable::ClassDef::new("Helper").ctor(vec![]));
        let unit = CompilationUnit::new("p")
            .class(ClassDecl::new("Helper").method(callee))
            .class(ClassDecl::new("Main").method(caller));
        check_unit(&unit, &table).unwrap();
    }

    #[test]
    fn if_condition_must_be_boolean() {
        let m = MethodDecl::new("f", JavaType::Void).statement(Stmt::If {
            cond: Expr::int(1),
            then_body: vec![],
            else_body: vec![],
        });
        assert!(check_method_src(m).is_err());
    }

    #[test]
    fn byte_array_literal_accepts_int_constants() {
        let m = MethodDecl::new("f", JavaType::Void).statement(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::ArrayLit {
                elem: JavaType::Byte,
                elems: vec![Expr::int(15), Expr::int(-12)],
            },
        ));
        check_method_src(m).unwrap();
    }
}
