//! Abstract syntax tree for the Java subset the generator emits.
//!
//! The subset covers exactly what the eleven use cases of the paper need:
//! classes with fields and methods, local variable declarations,
//! assignments, method/constructor/static calls, array creation and
//! literals, `if`, `return`, and a small expression language. Builders on
//! the node types keep construction terse in the generator.

use std::fmt;

/// A Java type: primitives, arrays and class references.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JavaType {
    /// `void`
    Void,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `byte`
    Byte,
    /// `T[]`
    Array(Box<JavaType>),
    /// A class or interface, stored fully qualified
    /// (`javax.crypto.Cipher`).
    Class(String),
}

impl JavaType {
    /// Creates a class type from a fully-qualified name.
    pub fn class(name: impl Into<String>) -> Self {
        JavaType::Class(name.into())
    }

    /// `byte[]`
    pub fn byte_array() -> Self {
        JavaType::Array(Box::new(JavaType::Byte))
    }

    /// `char[]`
    pub fn char_array() -> Self {
        JavaType::Array(Box::new(JavaType::Char))
    }

    /// `java.lang.String`
    pub fn string() -> Self {
        JavaType::class("java.lang.String")
    }

    /// The simple (unqualified) name used when printing.
    pub fn simple_name(&self) -> String {
        match self {
            JavaType::Void => "void".into(),
            JavaType::Int => "int".into(),
            JavaType::Long => "long".into(),
            JavaType::Boolean => "boolean".into(),
            JavaType::Char => "char".into(),
            JavaType::Byte => "byte".into(),
            JavaType::Array(inner) => format!("{}[]", inner.simple_name()),
            JavaType::Class(n) => n.rsplit('.').next().unwrap_or(n).to_owned(),
        }
    }

    /// The fully-qualified name of the class behind this type, if any
    /// (unwraps arrays).
    pub fn class_name(&self) -> Option<&str> {
        match self {
            JavaType::Class(n) => Some(n),
            JavaType::Array(inner) => inner.class_name(),
            _ => None,
        }
    }

    /// Whether this is a reference type (class or array).
    pub fn is_reference(&self) -> bool {
        matches!(self, JavaType::Class(_) | JavaType::Array(_))
    }
}

impl fmt::Display for JavaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JavaType::Void => f.write_str("void"),
            JavaType::Int => f.write_str("int"),
            JavaType::Long => f.write_str("long"),
            JavaType::Boolean => f.write_str("boolean"),
            JavaType::Char => f.write_str("char"),
            JavaType::Byte => f.write_str("byte"),
            JavaType::Array(inner) => write!(f, "{inner}[]"),
            JavaType::Class(n) => f.write_str(n),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
}

impl Eq for Lit {}

/// Binary operators (the small set the use cases need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `+` (int addition or string concatenation)
    Add,
    /// `<`
    Lt,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Lit(Lit),
    /// A local variable or parameter reference.
    Var(String),
    /// `new C(args)`
    New {
        /// Fully-qualified class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `recv.name(args)`
    Call {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `C.name(args)` — static invocation.
    StaticCall {
        /// Fully-qualified class name.
        class: String,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `C.FIELD` — a static field/constant reference (e.g.
    /// `Cipher.ENCRYPT_MODE`).
    StaticField {
        /// Fully-qualified class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// `new T[len]`
    NewArray {
        /// Element type.
        elem: JavaType,
        /// Length expression.
        len: Box<Expr>,
    },
    /// `new T[] { ... }` / `{ ... }` initializer.
    ArrayLit {
        /// Element type.
        elem: JavaType,
        /// Elements.
        elems: Vec<Expr>,
    },
    /// `a op b`
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `(T) e`
    Cast {
        /// Target type.
        ty: JavaType,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Lit(Lit::Int(v))
    }

    /// String literal.
    pub fn str(v: impl Into<String>) -> Self {
        Expr::Lit(Lit::Str(v.into()))
    }

    /// Boolean literal.
    pub fn bool(v: bool) -> Self {
        Expr::Lit(Lit::Bool(v))
    }

    /// `null` literal.
    pub fn null() -> Self {
        Expr::Lit(Lit::Null)
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Instance method call.
    pub fn call(recv: Expr, name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::Call {
            recv: Box::new(recv),
            name: name.into(),
            args,
        }
    }

    /// Static method call.
    pub fn static_call(class: impl Into<String>, name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::StaticCall {
            class: class.into(),
            name: name.into(),
            args,
        }
    }

    /// Constructor invocation.
    pub fn new_object(class: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::New {
            class: class.into(),
            args,
        }
    }

    /// `new elem[len]`.
    pub fn new_array(elem: JavaType, len: Expr) -> Self {
        Expr::NewArray {
            elem,
            len: Box::new(len),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `T name = init;` (initializer optional)
    Decl {
        /// Declared type.
        ty: JavaType,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `target = value;`
    Assign {
        /// Assigned variable name.
        target: String,
        /// Right-hand side.
        value: Expr,
    },
    /// An expression used for its side effect.
    Expr(Expr),
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `if (cond) { then } else { else }`
    If {
        /// Condition (must be boolean).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// A line comment attached to the output (used for the generated
    /// `templateUsage` hints).
    Comment(String),
}

impl Stmt {
    /// `T name = init;`
    pub fn decl_init(ty: JavaType, name: impl Into<String>, init: Expr) -> Self {
        Stmt::Decl {
            ty,
            name: name.into(),
            init: Some(init),
        }
    }

    /// `T name;`
    pub fn decl(ty: JavaType, name: impl Into<String>) -> Self {
        Stmt::Decl {
            ty,
            name: name.into(),
            init: None,
        }
    }

    /// `target = value;`
    pub fn assign(target: impl Into<String>, value: Expr) -> Self {
        Stmt::Assign {
            target: target.into(),
            value,
        }
    }
}

/// A method parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: JavaType,
    /// Parameter name.
    pub name: String,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Return type.
    pub return_type: JavaType,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Whether the method is `static`.
    pub is_static: bool,
    /// The body.
    pub body: Vec<Stmt>,
}

impl MethodDecl {
    /// Creates an empty public instance method.
    pub fn new(name: impl Into<String>, return_type: JavaType) -> Self {
        MethodDecl {
            name: name.into(),
            return_type,
            params: Vec::new(),
            is_static: false,
            body: Vec::new(),
        }
    }

    /// Adds a parameter (builder style).
    pub fn param(mut self, ty: JavaType, name: impl Into<String>) -> Self {
        self.params.push(Param {
            ty,
            name: name.into(),
        });
        self
    }

    /// Appends a statement (builder style).
    pub fn statement(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Marks the method `static` (builder style).
    pub fn set_static(mut self) -> Self {
        self.is_static = true;
        self
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field type.
    pub ty: JavaType,
    /// Field name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    /// Simple class name.
    pub name: String,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
}

impl ClassDecl {
    /// Creates an empty public class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDecl {
            name: name.into(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Adds a method (builder style).
    pub fn method(mut self, m: MethodDecl) -> Self {
        self.methods.push(m);
        self
    }

    /// Looks up a method by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodDecl> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A compilation unit: a package with one or more classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilationUnit {
    /// Package name (dotted).
    pub package: String,
    /// Top-level classes.
    pub classes: Vec<ClassDecl>,
}

impl CompilationUnit {
    /// Creates an empty unit in `package`.
    pub fn new(package: impl Into<String>) -> Self {
        CompilationUnit {
            package: package.into(),
            classes: Vec::new(),
        }
    }

    /// Adds a class (builder style).
    pub fn class(mut self, c: ClassDecl) -> Self {
        self.classes.push(c);
        self
    }

    /// Looks up a class by simple name.
    pub fn find_class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_type_display_and_names() {
        assert_eq!(JavaType::byte_array().to_string(), "byte[]");
        assert_eq!(
            JavaType::class("javax.crypto.Cipher").simple_name(),
            "Cipher"
        );
        assert_eq!(
            JavaType::Array(Box::new(JavaType::class("a.B"))).class_name(),
            Some("a.B")
        );
        assert!(JavaType::byte_array().is_reference());
        assert!(!JavaType::Int.is_reference());
    }

    #[test]
    fn builders_compose() {
        let m = MethodDecl::new("go", JavaType::Void)
            .param(JavaType::Int, "x")
            .statement(Stmt::Return(None))
            .set_static();
        assert!(m.is_static);
        assert_eq!(m.params.len(), 1);
        let c = ClassDecl::new("C").method(m);
        assert!(c.find_method("go").is_some());
        let u = CompilationUnit::new("p").class(c);
        assert!(u.find_class("C").is_some());
        assert!(u.find_class("D").is_none());
    }
}
