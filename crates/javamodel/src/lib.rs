//! A Java-subset code model: AST, pretty printer, type table and checker.
//!
//! CogniCryptGEN generates Java code through the Eclipse JDT AST. This crate
//! is the Rust substitute: generated programs are values of [`ast`] types,
//! printed to Java source text by [`printer`], and verified against the
//! modelled class library ([`typetable`], [`jca`]) by [`typecheck`]. The
//! paper's guarantee that generated code "is free of syntax errors and
//! type-checks in Java" maps onto: the AST is syntactically well-formed by
//! construction, and [`typecheck::check_unit`] succeeds.
//!
//! # Example
//!
//! ```
//! use javamodel::ast::*;
//! use javamodel::jca::jca_type_table;
//! use javamodel::typecheck::check_unit;
//!
//! let method = MethodDecl::new("hash", JavaType::byte_array())
//!     .param(JavaType::byte_array(), "data")
//!     .statement(Stmt::decl_init(
//!         JavaType::class("java.security.MessageDigest"),
//!         "md",
//!         Expr::static_call(
//!             "java.security.MessageDigest",
//!             "getInstance",
//!             vec![Expr::str("SHA-256")],
//!         ),
//!     ))
//!     .statement(Stmt::Return(Some(Expr::call(
//!         Expr::var("md"),
//!         "digest",
//!         vec![Expr::var("data")],
//!     ))));
//! let unit = CompilationUnit::new("example")
//!     .class(ClassDecl::new("Hasher").method(method));
//! check_unit(&unit, &jca_type_table())?;
//! # Ok::<(), javamodel::typecheck::TypeError>(())
//! ```

pub mod ast;
pub mod jca;
pub mod parser;
pub mod printer;
pub mod typecheck;
pub mod typetable;

pub use ast::{ClassDecl, CompilationUnit, Expr, JavaType, MethodDecl, Stmt};
pub use typecheck::TypeError;
pub use typetable::TypeTable;
