//! A parser for the Java subset the pretty-printer emits.
//!
//! Together with [`crate::printer`] this gives the code model a textual
//! round trip: `parse(print(ast))` reproduces `ast`. That lets tests
//! treat generated Java source — not just the AST — as the artefact under
//! validation, and lets the misuse analyzer consume `.java`-style text.
//!
//! The grammar covers exactly the printer's output: one optional
//! `package` declaration, `public class` declarations with fields and
//! methods, the statement forms of [`crate::ast::Stmt`] and the
//! expression forms of [`crate::ast::Expr`]. Class references appear as
//! *simple* names in printed code, so the parser resolves them against a
//! [`TypeTable`]-derived map from simple to fully-qualified names.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ast::*;
use crate::typetable::TypeTable;

/// A parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for JavaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "java parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for JavaParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
    // Multi-char operators.
    EqEq,
    Ne,
    Comment(String),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> JavaParseError {
        JavaParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn tokens(mut self) -> Result<Vec<(Tok, u32)>, JavaParseError> {
        let mut out = Vec::new();
        loop {
            while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
                self.bump();
            }
            let line = self.line;
            let Some(c) = self.peek() else {
                out.push((Tok::Eof, line));
                return Ok(out);
            };
            match c {
                b'/' if self.src.get(self.i + 1) == Some(&b'/') => {
                    self.bump();
                    self.bump();
                    let mut text = String::new();
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        text.push(c as char);
                        self.bump();
                    }
                    out.push((Tok::Comment(text.trim().to_owned()), line));
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                other => return Err(self.err(format!("bad escape {other:?}"))),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    out.push((Tok::Str(s), line));
                }
                b'-' | b'0'..=b'9' => {
                    let neg = c == b'-';
                    if neg {
                        self.bump();
                        if !self.peek().is_some_and(|d| d.is_ascii_digit()) {
                            return Err(self.err("expected digits after `-`"));
                        }
                    }
                    let mut v: i64 = 0;
                    while let Some(d) = self.peek() {
                        if !d.is_ascii_digit() {
                            break;
                        }
                        self.bump();
                        v = v
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(i64::from(d - b'0')))
                            .ok_or_else(|| self.err("integer overflow"))?;
                    }
                    out.push((Tok::Int(if neg { -v } else { v }), line));
                }
                b'=' if self.src.get(self.i + 1) == Some(&b'=') => {
                    self.bump();
                    self.bump();
                    out.push((Tok::EqEq, line));
                }
                b'!' if self.src.get(self.i + 1) == Some(&b'=') => {
                    self.bump();
                    self.bump();
                    out.push((Tok::Ne, line));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push((Tok::Ident(s), line));
                }
                b'(' | b')' | b'{' | b'}' | b'[' | b']' | b';' | b',' | b'.' | b'=' | b'+'
                | b'<' => {
                    self.bump();
                    out.push((Tok::Punct(c as char), line));
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            }
        }
    }
}

/// The parser, resolving simple class names against a type table.
pub struct JavaParser {
    tokens: Vec<(Tok, u32)>,
    i: usize,
    simple_to_fqn: HashMap<String, String>,
    /// Classes declared in the unit being parsed (referenced by simple
    /// name without qualification).
    local_classes: Vec<String>,
}

impl JavaParser {
    /// Prepares a parser for `source`, resolving class names against
    /// `table`.
    ///
    /// # Errors
    ///
    /// Returns a lex error; class-name resolution errors surface during
    /// parsing.
    pub fn new(source: &str, table: &TypeTable) -> Result<Self, JavaParseError> {
        let tokens = Lexer::new(source).tokens()?;
        // Collect the simple-name map; ambiguous simple names are dropped
        // (our modelled JCA has none).
        let mut simple_to_fqn: HashMap<String, String> = HashMap::new();
        let mut ambiguous: Vec<String> = Vec::new();
        for fqn in table.class_names() {
            let simple = fqn.rsplit('.').next().unwrap_or(&fqn).to_owned();
            match simple_to_fqn.entry(simple.clone()) {
                std::collections::hash_map::Entry::Occupied(_) => ambiguous.push(simple),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(fqn);
                }
            }
        }
        for a in ambiguous {
            simple_to_fqn.remove(&a);
        }
        Ok(JavaParser {
            tokens,
            i: 0,
            simple_to_fqn,
            local_classes: Vec::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.i.min(self.tokens.len() - 1)].0
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.tokens[self.i.min(self.tokens.len() - 1)].1
    }

    fn err(&self, message: impl Into<String>) -> JavaParseError {
        JavaParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].0.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if *self.peek() == Tok::Punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), JavaParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), JavaParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, JavaParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses a complete compilation unit.
    ///
    /// # Errors
    ///
    /// [`JavaParseError`] at the first construct outside the subset.
    pub fn parse_unit(&mut self) -> Result<CompilationUnit, JavaParseError> {
        let mut package = String::new();
        if self.eat_kw("package") {
            package = self.expect_ident()?;
            while self.eat_punct('.') {
                package.push('.');
                package.push_str(&self.expect_ident()?);
            }
            self.expect_punct(';')?;
        }
        // Pre-scan class names so classes can reference each other.
        self.local_classes = self
            .tokens
            .iter()
            .enumerate()
            .filter_map(|(idx, (t, _))| {
                if matches!(t, Tok::Ident(s) if s == "class") {
                    match &self.tokens.get(idx + 1) {
                        Some((Tok::Ident(name), _)) => Some(name.clone()),
                        _ => None,
                    }
                } else {
                    None
                }
            })
            .collect();
        let mut unit = CompilationUnit::new(package);
        while *self.peek() != Tok::Eof {
            unit.classes.push(self.parse_class()?);
        }
        Ok(unit)
    }

    fn parse_class(&mut self) -> Result<ClassDecl, JavaParseError> {
        self.expect_kw("public")?;
        self.expect_kw("class")?;
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut class = ClassDecl::new(name);
        while !self.eat_punct('}') {
            if self.eat_kw("private") {
                // Field.
                let ty = self.parse_type()?;
                let fname = self.expect_ident()?;
                let init = if self.eat_punct('=') {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect_punct(';')?;
                class.fields.push(FieldDecl {
                    ty,
                    name: fname,
                    init,
                });
            } else {
                class.methods.push(self.parse_method()?);
            }
        }
        Ok(class)
    }

    fn parse_method(&mut self) -> Result<MethodDecl, JavaParseError> {
        self.expect_kw("public")?;
        let is_static = self.eat_kw("static");
        let return_type = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct('(')?;
        let mut m = MethodDecl::new(name, return_type);
        m.is_static = is_static;
        if !self.eat_punct(')') {
            loop {
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                m.params.push(Param { ty, name: pname });
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;
        m.body = self.parse_block()?;
        Ok(m)
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, JavaParseError> {
        let mut out = Vec::new();
        while !self.eat_punct('}') {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, JavaParseError> {
        if let Tok::Comment(text) = self.peek().clone() {
            self.bump();
            return Ok(Stmt::Comment(text));
        }
        if self.eat_kw("return") {
            if self.eat_punct(';') {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("if") {
            self.expect_punct('(')?;
            let cond = self.parse_expr()?;
            self.expect_punct(')')?;
            self.expect_punct('{')?;
            let then_body = self.parse_block()?;
            let else_body = if self.eat_kw("else") {
                self.expect_punct('{')?;
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        // Declaration vs. assignment vs. expression statement. A
        // declaration starts with a type followed by an identifier.
        if self.at_type_then_ident() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let init = if self.eat_punct('=') {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(';')?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        // Assignment: `ident = expr;`
        if let (Tok::Ident(name), Tok::Punct('=')) = (self.peek().clone(), self.peek2().clone()) {
            self.bump();
            self.bump();
            let value = self.parse_expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Assign {
                target: name,
                value,
            });
        }
        let e = self.parse_expr()?;
        self.expect_punct(';')?;
        Ok(Stmt::Expr(e))
    }

    /// Lookahead: does a type followed by an identifier start here?
    fn at_type_then_ident(&self) -> bool {
        let Tok::Ident(first) = self.peek() else {
            return false;
        };
        let primitive = matches!(
            first.as_str(),
            "void" | "int" | "long" | "boolean" | "char" | "byte"
        );
        let class_like =
            self.simple_to_fqn.contains_key(first) || self.local_classes.iter().any(|c| c == first);
        if !primitive && !class_like {
            return false;
        }
        match self.peek2() {
            Tok::Ident(_) => true,
            // `T[] name`
            Tok::Punct('[') => matches!(
                self.tokens.get(self.i + 2).map(|(t, _)| t),
                Some(Tok::Punct(']'))
            ),
            _ => false,
        }
    }

    fn parse_type(&mut self) -> Result<JavaType, JavaParseError> {
        let name = self.expect_ident()?;
        let base = match name.as_str() {
            "void" => JavaType::Void,
            "int" => JavaType::Int,
            "long" => JavaType::Long,
            "boolean" => JavaType::Boolean,
            "char" => JavaType::Char,
            "byte" => JavaType::Byte,
            other => JavaType::Class(self.resolve_class(other)?),
        };
        let mut ty = base;
        while *self.peek() == Tok::Punct('[')
            && matches!(
                self.tokens.get(self.i + 1).map(|(t, _)| t),
                Some(Tok::Punct(']'))
            )
        {
            self.bump();
            self.bump();
            ty = JavaType::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn resolve_class(&self, simple: &str) -> Result<String, JavaParseError> {
        if self.local_classes.iter().any(|c| c == simple) {
            return Ok(simple.to_owned());
        }
        self.simple_to_fqn
            .get(simple)
            .cloned()
            .ok_or_else(|| self.err(format!("unknown class `{simple}` (not in the type table)")))
    }

    // Expressions. Precedence: comparison (==, !=, <) < additive (+) <
    // unary/primary with postfix `.name(args)` chains.
    fn parse_expr(&mut self) -> Result<Expr, JavaParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Punct('<') => Some(BinOp::Lt),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, JavaParseError> {
        let mut lhs = self.parse_postfix()?;
        while self.eat_punct('+') {
            let rhs = self.parse_postfix()?;
            lhs = Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_postfix(&mut self) -> Result<Expr, JavaParseError> {
        let mut e = self.parse_primary()?;
        while *self.peek() == Tok::Punct('.') {
            self.bump();
            let name = self.expect_ident()?;
            if self.eat_punct('(') {
                let args = self.parse_args()?;
                e = match e {
                    // `Simple.m(args)` where Simple resolved to a class.
                    Expr::Var(v) if self.is_class_name(&v) => Expr::StaticCall {
                        class: self.resolve_class(&v)?,
                        name,
                        args,
                    },
                    recv => Expr::Call {
                        recv: Box::new(recv),
                        name,
                        args,
                    },
                };
            } else {
                // `Simple.FIELD` — a static constant.
                e = match e {
                    Expr::Var(v) if self.is_class_name(&v) => Expr::StaticField {
                        class: self.resolve_class(&v)?,
                        field: name,
                    },
                    other => {
                        return Err(
                            self.err(format!("field access on non-class expression {other:?}"))
                        )
                    }
                };
            }
        }
        Ok(e)
    }

    fn is_class_name(&self, name: &str) -> bool {
        self.simple_to_fqn.contains_key(name) || self.local_classes.iter().any(|c| c == name)
    }

    fn parse_primary(&mut self) -> Result<Expr, JavaParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::str(s))
            }
            Tok::Ident(kw) if kw == "true" => {
                self.bump();
                Ok(Expr::bool(true))
            }
            Tok::Ident(kw) if kw == "false" => {
                self.bump();
                Ok(Expr::bool(false))
            }
            Tok::Ident(kw) if kw == "null" => {
                self.bump();
                Ok(Expr::null())
            }
            Tok::Ident(kw) if kw == "new" => {
                self.bump();
                let tyname = self.expect_ident()?;
                // `new byte[...]` / `new byte[] {...}` array forms.
                let elem = match tyname.as_str() {
                    "int" => Some(JavaType::Int),
                    "long" => Some(JavaType::Long),
                    "boolean" => Some(JavaType::Boolean),
                    "char" => Some(JavaType::Char),
                    "byte" => Some(JavaType::Byte),
                    _ => None,
                };
                if *self.peek() == Tok::Punct('[') {
                    let elem = match elem {
                        Some(t) => t,
                        None => JavaType::Class(self.resolve_class(&tyname)?),
                    };
                    self.bump();
                    if self.eat_punct(']') {
                        // `new T[] { ... }`
                        self.expect_punct('{')?;
                        let mut elems = Vec::new();
                        if !self.eat_punct('}') {
                            loop {
                                elems.push(self.parse_expr()?);
                                if self.eat_punct('}') {
                                    break;
                                }
                                self.expect_punct(',')?;
                            }
                        }
                        return Ok(Expr::ArrayLit { elem, elems });
                    }
                    let len = self.parse_expr()?;
                    self.expect_punct(']')?;
                    return Ok(Expr::NewArray {
                        elem,
                        len: Box::new(len),
                    });
                }
                // Constructor call.
                self.expect_punct('(')?;
                let args = self.parse_args()?;
                Ok(Expr::New {
                    class: self.resolve_class(&tyname)?,
                    args,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            Tok::Punct('(') => {
                // Either a cast `(T) expr` or a parenthesized expression.
                self.bump();
                if let Tok::Ident(name) = self.peek().clone() {
                    let is_type =
                        matches!(name.as_str(), "int" | "long" | "boolean" | "char" | "byte")
                            || self.is_class_name(&name);
                    // A cast has `)` (possibly after `[]`) right after the
                    // type, followed by a primary.
                    if is_type {
                        let save = self.i;
                        if let Ok(ty) = self.parse_type() {
                            if self.eat_punct(')') {
                                let inner = self.parse_postfix()?;
                                return Ok(Expr::Cast {
                                    ty,
                                    expr: Box::new(inner),
                                });
                            }
                        }
                        self.i = save;
                    }
                }
                let e = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>, JavaParseError> {
        let mut args = Vec::new();
        if self.eat_punct(')') {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr()?);
            if self.eat_punct(')') {
                return Ok(args);
            }
            self.expect_punct(',')?;
        }
    }
}

/// Parses Java source text (the printer's subset) into a compilation
/// unit, resolving class names against `table`.
///
/// # Errors
///
/// [`JavaParseError`] for any construct outside the subset.
pub fn parse_java(source: &str, table: &TypeTable) -> Result<CompilationUnit, JavaParseError> {
    JavaParser::new(source, table)?.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jca::jca_type_table;
    use crate::printer::print_unit;

    fn roundtrip(unit: &CompilationUnit) {
        let printed = print_unit(unit);
        let reparsed = parse_java(&printed, &jca_type_table())
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        assert_eq!(print_unit(&reparsed), printed);
    }

    #[test]
    fn parses_a_minimal_class() {
        let unit = parse_java(
            "package p;\npublic class C {\n    public int f(int x) {\n        return x;\n    }\n}\n",
            &jca_type_table(),
        )
        .unwrap();
        assert_eq!(unit.package, "p");
        let m = unit.find_class("C").unwrap().find_method("f").unwrap();
        assert_eq!(m.return_type, JavaType::Int);
        assert_eq!(m.body, vec![Stmt::Return(Some(Expr::var("x")))]);
    }

    #[test]
    fn resolves_simple_class_names_to_fqn() {
        let unit = parse_java(
            "public class C {\n    public void f() {\n        MessageDigest md = MessageDigest.getInstance(\"SHA-256\");\n        md.digest();\n    }\n}\n",
            &jca_type_table(),
        )
        .unwrap();
        let m = unit.find_class("C").unwrap().find_method("f").unwrap();
        match &m.body[0] {
            Stmt::Decl { ty, init, .. } => {
                assert_eq!(*ty, JavaType::class("java.security.MessageDigest"));
                assert!(matches!(
                    init,
                    Some(Expr::StaticCall { class, .. }) if class == "java.security.MessageDigest"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_static_fields_casts_and_array_forms() {
        let src = "public class C {\n    public void f(byte[] data) {\n        int m = Cipher.ENCRYPT_MODE;\n        byte[] a = new byte[16];\n        byte[] b = new byte[] {1, -2, 3};\n        SecretKey k = (SecretKey) null;\n        if (m == 1) {\n            return;\n        }\n    }\n}\n";
        let unit = parse_java(src, &jca_type_table()).unwrap();
        let m = unit.find_class("C").unwrap().find_method("f").unwrap();
        assert!(matches!(
            &m.body[0],
            Stmt::Decl { init: Some(Expr::StaticField { class, field }), .. }
                if class == "javax.crypto.Cipher" && field == "ENCRYPT_MODE"
        ));
        assert!(matches!(
            &m.body[1],
            Stmt::Decl {
                init: Some(Expr::NewArray { .. }),
                ..
            }
        ));
        assert!(
            matches!(&m.body[2], Stmt::Decl { init: Some(Expr::ArrayLit { elems, .. }), .. } if elems.len() == 3)
        );
        assert!(matches!(
            &m.body[3],
            Stmt::Decl {
                init: Some(Expr::Cast { .. }),
                ..
            }
        ));
        assert!(matches!(&m.body[4], Stmt::If { .. }));
    }

    #[test]
    fn roundtrips_a_hand_built_unit() {
        let m = MethodDecl::new("go", JavaType::byte_array())
            .param(JavaType::char_array(), "pwd")
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(JavaType::Byte, Expr::int(32)),
            ))
            .statement(Stmt::Comment("a comment".into()))
            .statement(Stmt::assign("salt", Expr::var("salt")))
            .statement(Stmt::Return(Some(Expr::var("salt"))));
        let unit = CompilationUnit::new("de.crypto").class(ClassDecl::new("K").method(m));
        roundtrip(&unit);
    }

    #[test]
    fn rejects_unknown_classes_and_garbage() {
        assert!(parse_java(
            "public class C { public Unknown f() { return null; } }",
            &jca_type_table()
        )
        .is_err());
        assert!(parse_java("class C {}", &jca_type_table()).is_err()); // missing public
        assert!(parse_java(
            "public class C { public void f() { @ } }",
            &jca_type_table()
        )
        .is_err());
        assert!(parse_java(
            "public class C { public void f() { return 1 } }",
            &jca_type_table()
        )
        .is_err());
    }

    #[test]
    fn string_concat_parses_left_associative() {
        let unit = parse_java(
            "public class C {\n    public String f(String a) {\n        return a + \":\" + a;\n    }\n}\n",
            &jca_type_table(),
        )
        .unwrap();
        let m = unit.find_class("C").unwrap().find_method("f").unwrap();
        match &m.body[0] {
            Stmt::Return(Some(Expr::Bin {
                op: BinOp::Add,
                lhs,
                ..
            })) => {
                assert!(matches!(lhs.as_ref(), Expr::Bin { op: BinOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
