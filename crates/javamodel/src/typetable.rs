//! A class database modelling the Java standard library surface the
//! generated programs use, with subtyping and overload resolution.

use std::collections::HashMap;

use crate::ast::JavaType;

/// A method (or constructor) signature in the class database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name; constructors use the class's simple name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<JavaType>,
    /// Return type (`Void` for constructors; the checker substitutes the
    /// class type at `new` expressions).
    pub ret: JavaType,
    /// Whether the method is `static`.
    pub is_static: bool,
}

/// A static constant (e.g. `Cipher.ENCRYPT_MODE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantDef {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: JavaType,
    /// The integer value, when the constant is an `int` (used by the
    /// interpreter).
    pub int_value: Option<i64>,
}

/// A class or interface definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Fully-qualified name.
    pub name: String,
    /// Superclass (fully qualified), `None` only for `java.lang.Object`.
    pub superclass: Option<String>,
    /// Implemented/extended interfaces (fully qualified).
    pub interfaces: Vec<String>,
    /// Whether this is an interface.
    pub is_interface: bool,
    /// Constructors.
    pub constructors: Vec<MethodSig>,
    /// Methods (instance and static).
    pub methods: Vec<MethodSig>,
    /// Static constants.
    pub constants: Vec<ConstantDef>,
}

impl ClassDef {
    /// Creates a class extending `java.lang.Object` with no members.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let superclass = if name == "java.lang.Object" {
            None
        } else {
            Some("java.lang.Object".to_owned())
        };
        ClassDef {
            name,
            superclass,
            interfaces: Vec::new(),
            is_interface: false,
            constructors: Vec::new(),
            methods: Vec::new(),
            constants: Vec::new(),
        }
    }

    /// Marks this definition as an interface (builder style).
    pub fn interface(mut self) -> Self {
        self.is_interface = true;
        self
    }

    /// Sets the superclass (builder style).
    pub fn extends(mut self, superclass: impl Into<String>) -> Self {
        self.superclass = Some(superclass.into());
        self
    }

    /// Adds an implemented interface (builder style).
    pub fn implements(mut self, iface: impl Into<String>) -> Self {
        self.interfaces.push(iface.into());
        self
    }

    /// Adds a constructor (builder style).
    pub fn ctor(mut self, params: Vec<JavaType>) -> Self {
        let simple = self
            .name
            .rsplit('.')
            .next()
            .expect("class names are non-empty")
            .to_owned();
        self.constructors.push(MethodSig {
            name: simple,
            params,
            ret: JavaType::Void,
            is_static: false,
        });
        self
    }

    /// Adds an instance method (builder style).
    pub fn method(mut self, name: impl Into<String>, params: Vec<JavaType>, ret: JavaType) -> Self {
        self.methods.push(MethodSig {
            name: name.into(),
            params,
            ret,
            is_static: false,
        });
        self
    }

    /// Adds a static method (builder style).
    pub fn static_method(
        mut self,
        name: impl Into<String>,
        params: Vec<JavaType>,
        ret: JavaType,
    ) -> Self {
        self.methods.push(MethodSig {
            name: name.into(),
            params,
            ret,
            is_static: true,
        });
        self
    }

    /// Adds an `int` constant (builder style).
    pub fn int_constant(mut self, name: impl Into<String>, value: i64) -> Self {
        self.constants.push(ConstantDef {
            name: name.into(),
            ty: JavaType::Int,
            int_value: Some(value),
        });
        self
    }
}

/// The class database: fully-qualified name → definition, with subtype
/// queries and overload resolution.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    classes: HashMap<String, ClassDef>,
}

impl TypeTable {
    /// Creates an empty table containing only `java.lang.Object`.
    pub fn new() -> Self {
        let mut t = TypeTable {
            classes: HashMap::new(),
        };
        t.add(ClassDef::new("java.lang.Object"));
        t
    }

    /// Inserts a class definition, replacing any previous one of the same
    /// name.
    pub fn add(&mut self, def: ClassDef) {
        self.classes.insert(def.name.clone(), def);
    }

    /// Looks up a class by fully-qualified name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Number of classes in the table.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All fully-qualified class names in the table (unordered).
    pub fn class_names(&self) -> Vec<String> {
        self.classes.keys().cloned().collect()
    }

    /// Whether `sub` names a class that is `sup` or a transitive
    /// subclass/implementor of `sup`.
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        let Some(def) = self.classes.get(sub) else {
            return false;
        };
        if let Some(s) = &def.superclass {
            if self.is_subclass_of(s, sup) {
                return true;
            }
        }
        def.interfaces.iter().any(|i| self.is_subclass_of(i, sup))
    }

    /// Java-style assignability for our subset: identical primitives,
    /// covariant-free arrays with identical element types, class widening
    /// along the subtype graph, and `null` → any reference type (the
    /// checker encodes `null` as `Class("java.lang.Object")` plus a flag,
    /// so it calls this only for non-null).
    pub fn is_assignable(&self, from: &JavaType, to: &JavaType) -> bool {
        match (from, to) {
            (a, b) if a == b => true,
            (JavaType::Class(f), JavaType::Class(t)) => self.is_subclass_of(f, t),
            (JavaType::Array(_), JavaType::Class(t)) => t == "java.lang.Object",
            _ => false,
        }
    }

    /// Resolves a constructor of `class` applicable to `args`.
    pub fn resolve_ctor(&self, class: &str, args: &[JavaType]) -> Option<&MethodSig> {
        let def = self.classes.get(class)?;
        def.constructors
            .iter()
            .find(|c| self.applicable(&c.params, args))
    }

    /// Resolves a method of `class` (searching superclasses and
    /// interfaces) by name, staticness and applicability to `args`.
    pub fn resolve_method(
        &self,
        class: &str,
        name: &str,
        is_static: bool,
        args: &[JavaType],
    ) -> Option<&MethodSig> {
        let def = self.classes.get(class)?;
        if let Some(m) = def.methods.iter().find(|m| {
            m.name == name && m.is_static == is_static && self.applicable(&m.params, args)
        }) {
            return Some(m);
        }
        if let Some(s) = &def.superclass {
            if let Some(m) = self.resolve_method(s, name, is_static, args) {
                return Some(m);
            }
        }
        for i in &def.interfaces {
            if let Some(m) = self.resolve_method(i, name, is_static, args) {
                return Some(m);
            }
        }
        None
    }

    /// Looks up a static constant on `class`.
    pub fn resolve_constant(&self, class: &str, field: &str) -> Option<&ConstantDef> {
        self.classes
            .get(class)?
            .constants
            .iter()
            .find(|c| c.name == field)
    }

    fn applicable(&self, params: &[JavaType], args: &[JavaType]) -> bool {
        params.len() == args.len()
            && params
                .iter()
                .zip(args)
                .all(|(p, a)| self.is_assignable(a, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TypeTable {
        let mut t = TypeTable::new();
        t.add(ClassDef::new("a.Key").interface());
        t.add(ClassDef::new("a.SecretKey").interface().implements("a.Key"));
        t.add(
            ClassDef::new("a.SecretKeySpec")
                .implements("a.SecretKey")
                .ctor(vec![JavaType::byte_array(), JavaType::string()]),
        );
        t.add(
            ClassDef::new("a.Cipher")
                .static_method(
                    "getInstance",
                    vec![JavaType::string()],
                    JavaType::class("a.Cipher"),
                )
                .method(
                    "init",
                    vec![JavaType::Int, JavaType::class("a.Key")],
                    JavaType::Void,
                )
                .int_constant("ENCRYPT_MODE", 1),
        );
        t
    }

    #[test]
    fn subtyping_walks_interfaces() {
        let t = sample();
        assert!(t.is_subclass_of("a.SecretKeySpec", "a.SecretKey"));
        assert!(t.is_subclass_of("a.SecretKeySpec", "a.Key"));
        assert!(t.is_subclass_of("a.SecretKeySpec", "java.lang.Object"));
        assert!(!t.is_subclass_of("a.Key", "a.SecretKey"));
    }

    #[test]
    fn assignability() {
        let t = sample();
        assert!(t.is_assignable(
            &JavaType::class("a.SecretKeySpec"),
            &JavaType::class("a.Key")
        ));
        assert!(!t.is_assignable(
            &JavaType::class("a.Key"),
            &JavaType::class("a.SecretKeySpec")
        ));
        assert!(t.is_assignable(&JavaType::Int, &JavaType::Int));
        assert!(!t.is_assignable(&JavaType::Int, &JavaType::Long));
        assert!(t.is_assignable(
            &JavaType::byte_array(),
            &JavaType::class("java.lang.Object")
        ));
    }

    #[test]
    fn overload_resolution_uses_assignability() {
        let t = sample();
        let m = t
            .resolve_method(
                "a.Cipher",
                "init",
                false,
                &[JavaType::Int, JavaType::class("a.SecretKeySpec")],
            )
            .unwrap();
        assert_eq!(m.params[1], JavaType::class("a.Key"));
        assert!(t
            .resolve_method("a.Cipher", "init", false, &[JavaType::Int, JavaType::Int])
            .is_none());
    }

    #[test]
    fn ctor_and_constant_lookup() {
        let t = sample();
        assert!(t
            .resolve_ctor(
                "a.SecretKeySpec",
                &[JavaType::byte_array(), JavaType::string()]
            )
            .is_some());
        assert!(t.resolve_ctor("a.SecretKeySpec", &[]).is_none());
        let c = t.resolve_constant("a.Cipher", "ENCRYPT_MODE").unwrap();
        assert_eq!(c.int_value, Some(1));
    }

    #[test]
    fn method_lookup_searches_supertypes() {
        let mut t = sample();
        t.add(ClassDef::new("a.Base").method("go", vec![], JavaType::Void));
        t.add(ClassDef::new("a.Derived").extends("a.Base"));
        assert!(t.resolve_method("a.Derived", "go", false, &[]).is_some());
    }
}
