//! The modelled Java Cryptography Architecture (JCA) surface.
//!
//! This is the class database the generated programs are type-checked
//! against. It covers every class the paper's eleven use cases touch:
//! key specification and derivation, symmetric/asymmetric ciphers,
//! digests, MACs, signatures, key generation, and the small utility
//! surface (strings, files) the glue code needs.

use crate::ast::JavaType;
use crate::typetable::{ClassDef, TypeTable};

/// Fully-qualified names of the modelled JCA classes, as constants so the
/// generator, rules and analyzers agree on spelling.
pub mod names {
    /// `java.lang.String`
    pub const STRING: &str = "java.lang.String";
    /// `java.lang.Object`
    pub const OBJECT: &str = "java.lang.Object";
    /// `java.security.SecureRandom`
    pub const SECURE_RANDOM: &str = "java.security.SecureRandom";
    /// `javax.crypto.spec.PBEKeySpec`
    pub const PBE_KEY_SPEC: &str = "javax.crypto.spec.PBEKeySpec";
    /// `javax.crypto.SecretKeyFactory`
    pub const SECRET_KEY_FACTORY: &str = "javax.crypto.SecretKeyFactory";
    /// `javax.crypto.SecretKey`
    pub const SECRET_KEY: &str = "javax.crypto.SecretKey";
    /// `javax.crypto.spec.SecretKeySpec`
    pub const SECRET_KEY_SPEC: &str = "javax.crypto.spec.SecretKeySpec";
    /// `javax.crypto.KeyGenerator`
    pub const KEY_GENERATOR: &str = "javax.crypto.KeyGenerator";
    /// `javax.crypto.Cipher`
    pub const CIPHER: &str = "javax.crypto.Cipher";
    /// `javax.crypto.spec.IvParameterSpec`
    pub const IV_PARAMETER_SPEC: &str = "javax.crypto.spec.IvParameterSpec";
    /// `javax.crypto.spec.GCMParameterSpec`
    pub const GCM_PARAMETER_SPEC: &str = "javax.crypto.spec.GCMParameterSpec";
    /// `java.security.MessageDigest`
    pub const MESSAGE_DIGEST: &str = "java.security.MessageDigest";
    /// `java.security.Signature`
    pub const SIGNATURE: &str = "java.security.Signature";
    /// `java.security.KeyPairGenerator`
    pub const KEY_PAIR_GENERATOR: &str = "java.security.KeyPairGenerator";
    /// `java.security.KeyPair`
    pub const KEY_PAIR: &str = "java.security.KeyPair";
    /// `java.security.Key`
    pub const KEY: &str = "java.security.Key";
    /// `java.security.PrivateKey`
    pub const PRIVATE_KEY: &str = "java.security.PrivateKey";
    /// `java.security.PublicKey`
    pub const PUBLIC_KEY: &str = "java.security.PublicKey";
    /// `javax.crypto.Mac`
    pub const MAC: &str = "javax.crypto.Mac";
    /// `javax.crypto.KeyAgreement`
    pub const KEY_AGREEMENT: &str = "javax.crypto.KeyAgreement";
    /// `javax.crypto.KDF` (HKDF, modelled after the JDK 24 KDF API with
    /// a positional `deriveData` instead of `HKDFParameterSpec`)
    pub const KDF: &str = "javax.crypto.KDF";
    /// `java.security.spec.KeySpec`
    pub const KEY_SPEC: &str = "java.security.spec.KeySpec";
    /// `java.security.spec.AlgorithmParameterSpec`
    pub const ALGORITHM_PARAMETER_SPEC: &str = "java.security.spec.AlgorithmParameterSpec";
    /// `java.io.File`
    pub const FILE: &str = "java.io.File";
    /// `java.nio.file.Files` (modelled static helpers)
    pub const FILES: &str = "java.nio.file.Files";
    /// `java.util.Arrays`
    pub const ARRAYS: &str = "java.util.Arrays";
    /// `java.util.Base64` (modelled as static encode/decode helpers)
    pub const BASE64: &str = "java.util.Base64";
    /// `de.cognicrypt.util.ByteArrays` — glue helper for IV/ciphertext
    /// framing (the paper's templates use `System.arraycopy`; we model the
    /// same capability as a small utility class)
    pub const BYTE_ARRAYS: &str = "de.cognicrypt.util.ByteArrays";
}

use names::*;

fn cls(n: &str) -> JavaType {
    JavaType::class(n)
}

/// Builds the modelled JCA type table.
///
/// The table is deterministic; callers may cache it. See the
/// [crate-level docs](crate) for an end-to-end example.
pub fn jca_type_table() -> TypeTable {
    let mut t = TypeTable::new();

    t.add(
        ClassDef::new(STRING)
            .ctor(vec![JavaType::byte_array()])
            .ctor(vec![JavaType::char_array()])
            .method("getBytes", vec![], JavaType::byte_array())
            .method("toCharArray", vec![], JavaType::char_array())
            .method("equals", vec![cls(OBJECT)], JavaType::Boolean)
            .method("length", vec![], JavaType::Int),
    );

    // --- interfaces -----------------------------------------------------
    t.add(
        ClassDef::new(KEY)
            .interface()
            .method("getEncoded", vec![], JavaType::byte_array())
            .method("getAlgorithm", vec![], cls(STRING)),
    );
    t.add(ClassDef::new(SECRET_KEY).interface().implements(KEY));
    t.add(ClassDef::new(PRIVATE_KEY).interface().implements(KEY));
    t.add(ClassDef::new(PUBLIC_KEY).interface().implements(KEY));
    t.add(ClassDef::new(KEY_SPEC).interface());
    t.add(ClassDef::new(ALGORITHM_PARAMETER_SPEC).interface());

    // --- randomness -----------------------------------------------------
    t.add(
        ClassDef::new(SECURE_RANDOM)
            .static_method("getInstance", vec![cls(STRING)], cls(SECURE_RANDOM))
            .method("nextBytes", vec![JavaType::byte_array()], JavaType::Void)
            .method("nextInt", vec![JavaType::Int], JavaType::Int),
    );

    // --- key specification & derivation ----------------------------------
    t.add(
        ClassDef::new(PBE_KEY_SPEC)
            .implements(KEY_SPEC)
            .ctor(vec![JavaType::char_array()])
            .ctor(vec![
                JavaType::char_array(),
                JavaType::byte_array(),
                JavaType::Int,
                JavaType::Int,
            ])
            .method("clearPassword", vec![], JavaType::Void),
    );
    t.add(
        ClassDef::new(SECRET_KEY_FACTORY)
            .static_method("getInstance", vec![cls(STRING)], cls(SECRET_KEY_FACTORY))
            .method("generateSecret", vec![cls(KEY_SPEC)], cls(SECRET_KEY)),
    );
    t.add(
        ClassDef::new(SECRET_KEY_SPEC)
            .implements(SECRET_KEY)
            .implements(KEY_SPEC)
            .ctor(vec![JavaType::byte_array(), cls(STRING)]),
    );
    t.add(
        ClassDef::new(KEY_GENERATOR)
            .static_method("getInstance", vec![cls(STRING)], cls(KEY_GENERATOR))
            .method("init", vec![JavaType::Int], JavaType::Void)
            .method(
                "init",
                vec![JavaType::Int, cls(SECURE_RANDOM)],
                JavaType::Void,
            )
            .method("generateKey", vec![], cls(SECRET_KEY)),
    );

    // --- ciphers ----------------------------------------------------------
    t.add(
        ClassDef::new(CIPHER)
            .static_method("getInstance", vec![cls(STRING)], cls(CIPHER))
            .method("init", vec![JavaType::Int, cls(KEY)], JavaType::Void)
            .method(
                "init",
                vec![JavaType::Int, cls(KEY), cls(ALGORITHM_PARAMETER_SPEC)],
                JavaType::Void,
            )
            .method(
                "doFinal",
                vec![JavaType::byte_array()],
                JavaType::byte_array(),
            )
            .method(
                "update",
                vec![JavaType::byte_array()],
                JavaType::byte_array(),
            )
            .method("getIV", vec![], JavaType::byte_array())
            .method("wrap", vec![cls(KEY)], JavaType::byte_array())
            .method(
                "unwrap",
                vec![JavaType::byte_array(), cls(STRING), JavaType::Int],
                cls(KEY),
            )
            .int_constant("ENCRYPT_MODE", 1)
            .int_constant("DECRYPT_MODE", 2)
            .int_constant("WRAP_MODE", 3)
            .int_constant("UNWRAP_MODE", 4)
            .int_constant("SECRET_KEY", 3)
            .int_constant("PRIVATE_KEY", 2)
            .int_constant("PUBLIC_KEY", 1),
    );
    t.add(
        ClassDef::new(IV_PARAMETER_SPEC)
            .implements(ALGORITHM_PARAMETER_SPEC)
            .ctor(vec![JavaType::byte_array()]),
    );
    t.add(
        ClassDef::new(GCM_PARAMETER_SPEC)
            .implements(ALGORITHM_PARAMETER_SPEC)
            .ctor(vec![JavaType::Int, JavaType::byte_array()]),
    );

    // --- digests, MACs, signatures ---------------------------------------
    t.add(
        ClassDef::new(MESSAGE_DIGEST)
            .static_method("getInstance", vec![cls(STRING)], cls(MESSAGE_DIGEST))
            .method("update", vec![JavaType::byte_array()], JavaType::Void)
            .method("digest", vec![], JavaType::byte_array())
            .method(
                "digest",
                vec![JavaType::byte_array()],
                JavaType::byte_array(),
            ),
    );
    t.add(
        ClassDef::new(MAC)
            .static_method("getInstance", vec![cls(STRING)], cls(MAC))
            .method("init", vec![cls(KEY)], JavaType::Void)
            .method(
                "doFinal",
                vec![JavaType::byte_array()],
                JavaType::byte_array(),
            ),
    );
    t.add(
        ClassDef::new(SIGNATURE)
            .static_method("getInstance", vec![cls(STRING)], cls(SIGNATURE))
            .method("initSign", vec![cls(PRIVATE_KEY)], JavaType::Void)
            .method("initVerify", vec![cls(PUBLIC_KEY)], JavaType::Void)
            .method("update", vec![JavaType::byte_array()], JavaType::Void)
            .method("sign", vec![], JavaType::byte_array())
            .method("verify", vec![JavaType::byte_array()], JavaType::Boolean),
    );

    // --- key agreement & derivation ----------------------------------------
    t.add(
        ClassDef::new(KEY_AGREEMENT)
            .static_method("getInstance", vec![cls(STRING)], cls(KEY_AGREEMENT))
            .method("init", vec![cls(PRIVATE_KEY)], JavaType::Void)
            .method("doPhase", vec![cls(PUBLIC_KEY)], JavaType::Void)
            .method("generateSecret", vec![], JavaType::byte_array()),
    );
    t.add(
        ClassDef::new(KDF)
            .static_method("getInstance", vec![cls(STRING)], cls(KDF))
            .method(
                "deriveData",
                vec![
                    JavaType::byte_array(),
                    JavaType::byte_array(),
                    JavaType::byte_array(),
                    JavaType::Int,
                ],
                JavaType::byte_array(),
            ),
    );

    // --- key pairs ---------------------------------------------------------
    t.add(
        ClassDef::new(KEY_PAIR_GENERATOR)
            .static_method("getInstance", vec![cls(STRING)], cls(KEY_PAIR_GENERATOR))
            .method("initialize", vec![JavaType::Int], JavaType::Void)
            .method(
                "initialize",
                vec![JavaType::Int, cls(SECURE_RANDOM)],
                JavaType::Void,
            )
            .method("generateKeyPair", vec![], cls(KEY_PAIR)),
    );
    t.add(
        ClassDef::new(KEY_PAIR)
            .method("getPrivate", vec![], cls(PRIVATE_KEY))
            .method("getPublic", vec![], cls(PUBLIC_KEY)),
    );

    // --- glue-code helpers --------------------------------------------------
    t.add(ClassDef::new(FILE).ctor(vec![cls(STRING)]));
    t.add(
        ClassDef::new(FILES)
            .static_method("readAllBytes", vec![cls(STRING)], JavaType::byte_array())
            .static_method(
                "write",
                vec![cls(STRING), JavaType::byte_array()],
                JavaType::Void,
            ),
    );
    t.add(
        ClassDef::new(ARRAYS)
            .static_method(
                "fill",
                vec![JavaType::char_array(), JavaType::Char],
                JavaType::Void,
            )
            .static_method(
                "equals",
                vec![JavaType::byte_array(), JavaType::byte_array()],
                JavaType::Boolean,
            ),
    );
    t.add(
        ClassDef::new(BASE64)
            .static_method("encode", vec![JavaType::byte_array()], cls(STRING))
            .static_method("decode", vec![cls(STRING)], JavaType::byte_array()),
    );
    t.add(
        ClassDef::new(BYTE_ARRAYS)
            .static_method(
                "concat",
                vec![JavaType::byte_array(), JavaType::byte_array()],
                JavaType::byte_array(),
            )
            .static_method(
                "slice",
                vec![JavaType::byte_array(), JavaType::Int, JavaType::Int],
                JavaType::byte_array(),
            )
            .static_method("length", vec![JavaType::byte_array()], JavaType::Int),
    );

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_use_case_classes() {
        let t = jca_type_table();
        for n in [
            SECURE_RANDOM,
            PBE_KEY_SPEC,
            SECRET_KEY_FACTORY,
            SECRET_KEY,
            SECRET_KEY_SPEC,
            KEY_GENERATOR,
            CIPHER,
            IV_PARAMETER_SPEC,
            GCM_PARAMETER_SPEC,
            MESSAGE_DIGEST,
            MAC,
            SIGNATURE,
            KEY_PAIR_GENERATOR,
            KEY_PAIR,
            KEY_AGREEMENT,
            KDF,
        ] {
            assert!(t.class(n).is_some(), "missing {n}");
        }
        assert!(t.len() >= 20);
    }

    #[test]
    fn secret_key_spec_is_a_key_and_a_key_spec() {
        let t = jca_type_table();
        assert!(t.is_subclass_of(SECRET_KEY_SPEC, SECRET_KEY));
        assert!(t.is_subclass_of(SECRET_KEY_SPEC, KEY));
        assert!(t.is_subclass_of(SECRET_KEY_SPEC, KEY_SPEC));
        assert!(t.is_subclass_of(PBE_KEY_SPEC, KEY_SPEC));
        assert!(!t.is_subclass_of(PBE_KEY_SPEC, KEY));
    }

    #[test]
    fn cipher_init_overloads_resolve() {
        let t = jca_type_table();
        assert!(t
            .resolve_method(CIPHER, "init", false, &[JavaType::Int, cls(SECRET_KEY)])
            .is_some());
        assert!(t
            .resolve_method(
                CIPHER,
                "init",
                false,
                &[JavaType::Int, cls(SECRET_KEY), cls(IV_PARAMETER_SPEC)]
            )
            .is_some());
        assert!(t
            .resolve_method(CIPHER, "init", false, &[cls(SECRET_KEY)])
            .is_none());
    }

    #[test]
    fn constants_present() {
        let t = jca_type_table();
        assert_eq!(
            t.resolve_constant(CIPHER, "ENCRYPT_MODE")
                .unwrap()
                .int_value,
            Some(1)
        );
        assert_eq!(
            t.resolve_constant(CIPHER, "DECRYPT_MODE")
                .unwrap()
                .int_value,
            Some(2)
        );
    }
}
