//! Pretty-printer emitting Java source text from the AST.
//!
//! Output uses fully-qualified type names (no import management), four-space
//! indentation, and one statement per line — the same style the paper's
//! generated listings use.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a compilation unit as Java source text.
pub fn print_unit(unit: &CompilationUnit) -> String {
    let mut out = String::new();
    if !unit.package.is_empty() {
        let _ = writeln!(out, "package {};", unit.package);
        out.push('\n');
    }
    for (i, c) in unit.classes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_class(&mut out, c);
    }
    out
}

/// Renders a single class.
pub fn print_class(out: &mut String, class: &ClassDecl) {
    let _ = writeln!(out, "public class {} {{", class.name);
    for f in &class.fields {
        let _ = write!(out, "    private {} {}", f.ty.simple_or_qualified(), f.name);
        if let Some(init) = &f.init {
            let _ = write!(out, " = {}", print_expr(init));
        }
        let _ = writeln!(out, ";");
    }
    for (i, m) in class.methods.iter().enumerate() {
        if i > 0 || !class.fields.is_empty() {
            out.push('\n');
        }
        print_method(out, m);
    }
    let _ = writeln!(out, "}}");
}

fn print_method(out: &mut String, m: &MethodDecl) {
    let stat = if m.is_static { "static " } else { "" };
    let params: Vec<String> = m
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty.simple_or_qualified(), p.name))
        .collect();
    let _ = writeln!(
        out,
        "    public {}{} {}({}) {{",
        stat,
        m.return_type.simple_or_qualified(),
        m.name,
        params.join(", ")
    );
    for s in &m.body {
        print_stmt(out, s, 2);
    }
    let _ = writeln!(out, "    }}");
}

/// Renders one statement at the given indentation level (four spaces per
/// level), appending to `out`. Public so template renderers can reuse the
/// exact statement syntax of generated code.
pub fn print_stmt_to(out: &mut String, s: &Stmt, level: usize) {
    print_stmt(out, s, level);
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Decl { ty, name, init } => {
            indent(out, level);
            let _ = write!(out, "{} {}", ty.simple_or_qualified(), name);
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            let _ = writeln!(out, ";");
        }
        Stmt::Assign { target, value } => {
            indent(out, level);
            let _ = writeln!(out, "{} = {};", target, print_expr(value));
        }
        Stmt::Expr(e) => {
            indent(out, level);
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::Return(None) => {
            indent(out, level);
            let _ = writeln!(out, "return;");
        }
        Stmt::Return(Some(e)) => {
            indent(out, level);
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in then_body {
                print_stmt(out, s, level + 1);
            }
            if else_body.is_empty() {
                indent(out, level);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, level);
                let _ = writeln!(out, "}} else {{");
                for s in else_body {
                    print_stmt(out, s, level + 1);
                }
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::Comment(text) => {
            indent(out, level);
            let _ = writeln!(out, "// {text}");
        }
    }
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(Lit::Int(i)) => i.to_string(),
        Expr::Lit(Lit::Str(s)) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::Lit(Lit::Bool(b)) => b.to_string(),
        Expr::Lit(Lit::Null) => "null".into(),
        Expr::Var(v) => v.clone(),
        Expr::New { class, args } => {
            format!("new {}({})", simple(class), print_args(args))
        }
        Expr::Call { recv, name, args } => {
            format!("{}.{}({})", print_expr(recv), name, print_args(args))
        }
        Expr::StaticCall { class, name, args } => {
            format!("{}.{}({})", simple(class), name, print_args(args))
        }
        Expr::StaticField { class, field } => format!("{}.{}", simple(class), field),
        Expr::NewArray { elem, len } => {
            format!("new {}[{}]", elem.simple_or_qualified(), print_expr(len))
        }
        Expr::ArrayLit { elem, elems } => {
            format!(
                "new {}[] {{{}}}",
                elem.simple_or_qualified(),
                print_args(elems)
            )
        }
        Expr::Bin { op, lhs, rhs } => {
            let o = match op {
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Add => "+",
                BinOp::Lt => "<",
            };
            format!("{} {} {}", print_expr(lhs), o, print_expr(rhs))
        }
        Expr::Cast { ty, expr } => {
            format!("({}) {}", ty.simple_or_qualified(), print_expr(expr))
        }
    }
}

fn print_args(args: &[Expr]) -> String {
    args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
}

fn simple(fqn: &str) -> &str {
    fqn.rsplit('.').next().unwrap_or(fqn)
}

impl JavaType {
    /// The name used in printed source: simple names for classes (the
    /// printed code reads like the paper's listings), primitive names
    /// otherwise.
    pub fn simple_or_qualified(&self) -> String {
        self.simple_name()
    }
}

/// Counts the non-blank lines of a printed artefact — the measure used by
/// the paper's Table 2 (RQ4).
pub fn count_loc(source: &str) -> usize {
    source.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_paper_style_pbe_snippet() {
        let m = MethodDecl::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .param(JavaType::char_array(), "pwd")
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "salt",
                Expr::new_array(JavaType::Byte, Expr::int(32)),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("java.security.SecureRandom"),
                "secureRandom",
                Expr::static_call(
                    "java.security.SecureRandom",
                    "getInstance",
                    vec![Expr::str("SHA1PRNG")],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("secureRandom"),
                "nextBytes",
                vec![Expr::var("salt")],
            )))
            .statement(Stmt::Return(Some(Expr::null())));
        let unit = CompilationUnit::new("de.crypto.cognicrypt")
            .class(ClassDecl::new("TemplateClass").method(m));
        let src = print_unit(&unit);
        assert!(src.contains("package de.crypto.cognicrypt;"));
        assert!(src.contains("public class TemplateClass {"));
        assert!(src.contains("public SecretKey generateKey(char[] pwd) {"));
        assert!(src.contains("byte[] salt = new byte[32];"));
        assert!(src.contains("SecureRandom secureRandom = SecureRandom.getInstance(\"SHA1PRNG\");"));
        assert!(src.contains("secureRandom.nextBytes(salt);"));
        assert!(src.contains("return null;"));
    }

    #[test]
    fn prints_control_flow_and_operators() {
        let m = MethodDecl::new("check", JavaType::Boolean)
            .param(JavaType::Int, "x")
            .statement(Stmt::If {
                cond: Expr::Bin {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::var("x")),
                    rhs: Box::new(Expr::int(10)),
                },
                then_body: vec![Stmt::Return(Some(Expr::bool(true)))],
                else_body: vec![Stmt::Return(Some(Expr::bool(false)))],
            });
        let mut out = String::new();
        print_class(&mut out, &ClassDecl::new("C").method(m));
        assert!(out.contains("if (x < 10) {"));
        assert!(out.contains("} else {"));
        assert!(out.contains("return true;"));
    }

    #[test]
    fn prints_static_field_cast_and_array_literal() {
        assert_eq!(
            print_expr(&Expr::StaticField {
                class: "javax.crypto.Cipher".into(),
                field: "ENCRYPT_MODE".into()
            }),
            "Cipher.ENCRYPT_MODE"
        );
        assert_eq!(
            print_expr(&Expr::Cast {
                ty: JavaType::class("javax.crypto.SecretKey"),
                expr: Box::new(Expr::var("k"))
            }),
            "(SecretKey) k"
        );
        assert_eq!(
            print_expr(&Expr::ArrayLit {
                elem: JavaType::Byte,
                elems: vec![Expr::int(1), Expr::int(2)]
            }),
            "new byte[] {1, 2}"
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(print_expr(&Expr::str("a\"b\\c")), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn loc_counts_nonblank_lines() {
        assert_eq!(count_loc("a\n\n  \nb\nc\n"), 3);
    }

    #[test]
    fn comments_print_as_line_comments() {
        let mut out = String::new();
        print_stmt(
            &mut out,
            &Stmt::Comment("call with a real password".into()),
            0,
        );
        assert_eq!(out, "// call with a real password\n");
    }
}
