//! Use cases 5–7: hybrid encryption on files, strings and byte arrays.
//!
//! Hybrid encryption generates a fresh AES session key per payload,
//! encrypts the payload symmetrically, and wraps the session key under the
//! recipient's RSA public key. The `instanceof` constraints of the Cipher
//! rule (paper §4) make the generator pick a symmetric transformation for
//! the data cipher and the asymmetric one for the key-wrapping cipher.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::pbe::{decrypt_chain, encrypt_chain};
use crate::symmetric::generate_key_chain;
use crate::PACKAGE;

/// Chain generating the RSA key pair.
pub fn key_pair_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::KEY_PAIR_GENERATOR)
        .consider_crysl_rule(names::KEY_PAIR)
        .add_return_object("keyPair")
        .build()
}

/// Chain wrapping the session key under the recipient's public key.
pub fn wrap_key_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("mode", "encmode")
        .add_parameter("publicKey", "key")
        .add_parameter("sessionKey", "wrappedKeyIn")
        .add_return_object("wrapped")
        .build()
}

/// Chain unwrapping the session key with the private key.
pub fn unwrap_key_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("mode", "encmode")
        .add_parameter("privateKey", "key")
        .add_parameter("wrapped", "wrappedKeyBytes")
        .add_return_object("sessionKey")
        .build()
}

/// Template methods shared by all three hybrid variants: key-pair
/// generation, session-key generation, wrapping and unwrapping.
fn shared_methods() -> Vec<TemplateMethod> {
    let generate_key_pair =
        TemplateMethod::new("generateKeyPair", JavaType::class(names::KEY_PAIR))
            .pre(Stmt::decl_init(
                JavaType::class(names::KEY_PAIR),
                "keyPair",
                Expr::null(),
            ))
            .chain(key_pair_chain())
            .post(Stmt::Return(Some(Expr::var("keyPair"))));

    let generate_session_key =
        TemplateMethod::new("generateSessionKey", JavaType::class(names::SECRET_KEY))
            .pre(Stmt::decl_init(
                JavaType::class(names::SECRET_KEY),
                "key",
                Expr::null(),
            ))
            .chain(generate_key_chain())
            .post(Stmt::Return(Some(Expr::var("key"))));

    let wrap_key = TemplateMethod::new("wrapSessionKey", JavaType::byte_array())
        .param(JavaType::class(names::SECRET_KEY), "sessionKey")
        .param(JavaType::class(names::PUBLIC_KEY), "publicKey")
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(3)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "wrapped",
            Expr::null(),
        ))
        .chain(wrap_key_chain())
        .post(Stmt::Return(Some(Expr::var("wrapped"))));

    let unwrap_key = TemplateMethod::new("unwrapSessionKey", JavaType::class(names::SECRET_KEY))
        .param(JavaType::byte_array(), "wrapped")
        .param(JavaType::class(names::PRIVATE_KEY), "privateKey")
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(4)))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "sessionKey",
            Expr::null(),
        ))
        .chain(unwrap_key_chain())
        .post(Stmt::Return(Some(Expr::var("sessionKey"))));

    vec![
        generate_key_pair,
        generate_session_key,
        wrap_key,
        unwrap_key,
    ]
}

/// Use case 7: hybrid encryption of byte arrays.
pub fn hybrid_byte_arrays() -> Template {
    let encrypt = TemplateMethod::new("encryptData", JavaType::byte_array())
        .param(JavaType::byte_array(), "plainText")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(encrypt_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("ivBytes"), Expr::var("cipherText")],
        ))));

    let decrypt = TemplateMethod::new("decryptData", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(16)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(16),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(decrypt_chain())
        .post(Stmt::Return(Some(Expr::var("decrypted"))));

    let mut t = Template::new(PACKAGE, "HybridByteArrayEncryptor");
    for m in shared_methods() {
        t = t.method(m);
    }
    t.method(encrypt).method(decrypt)
}

/// Use case 6: hybrid encryption of strings.
pub fn hybrid_strings() -> Template {
    let encrypt = TemplateMethod::new("encryptData", JavaType::byte_array())
        .param(JavaType::string(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "plainText",
            Expr::call(Expr::var("data"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(encrypt_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("ivBytes"), Expr::var("cipherText")],
        ))));

    let decrypt = TemplateMethod::new("decryptData", JavaType::string())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(16)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(16),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(decrypt_chain())
        .post(Stmt::Return(Some(Expr::new_object(
            names::STRING,
            vec![Expr::var("decrypted")],
        ))));

    let mut t = Template::new(PACKAGE, "HybridStringEncryptor");
    for m in shared_methods() {
        t = t.method(m);
    }
    t.method(encrypt).method(decrypt)
}

/// Use case 5: hybrid encryption of files.
pub fn hybrid_files() -> Template {
    let encrypt = TemplateMethod::new("encryptFile", JavaType::Void)
        .param(JavaType::string(), "inPath")
        .param(JavaType::string(), "outPath")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "plainText",
            Expr::static_call(names::FILES, "readAllBytes", vec![Expr::var("inPath")]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(encrypt_chain())
        .post(Stmt::Expr(Expr::static_call(
            names::FILES,
            "write",
            vec![
                Expr::var("outPath"),
                Expr::static_call(
                    names::BYTE_ARRAYS,
                    "concat",
                    vec![Expr::var("ivBytes"), Expr::var("cipherText")],
                ),
            ],
        )));

    let decrypt = TemplateMethod::new("decryptFile", JavaType::Void)
        .param(JavaType::string(), "inPath")
        .param(JavaType::string(), "outPath")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "data",
            Expr::static_call(names::FILES, "readAllBytes", vec![Expr::var("inPath")]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(16)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(16),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(decrypt_chain())
        .post(Stmt::Expr(Expr::static_call(
            names::FILES,
            "write",
            vec![Expr::var("outPath"), Expr::var("decrypted")],
        )));

    let mut t = Template::new(PACKAGE, "HybridFileEncryptor");
    for m in shared_methods() {
        t = t.method(m);
    }
    t.method(encrypt).method(decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn instanceof_steers_transformations() {
        let generated = generate(
            &hybrid_byte_arrays(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        // Data cipher: symmetric; key-wrapping cipher: asymmetric.
        assert!(
            src.contains("Cipher.getInstance(\"AES/CBC/PKCS5Padding\")"),
            "{src}"
        );
        assert!(
            src.contains("Cipher.getInstance(\"RSA/ECB/PKCS1Padding\")"),
            "{src}"
        );
        assert!(src.contains(".wrap(sessionKey)"), "{src}");
        assert!(src.contains(".unwrap(wrapped, \"AES\", 3)"), "{src}");
    }

    #[test]
    fn hybrid_full_protocol_roundtrip() {
        let generated = generate(
            &hybrid_byte_arrays(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "HybridByteArrayEncryptor";
        let key_pair = interp
            .call_static_style(cls, "generateKeyPair", vec![])
            .unwrap();
        // KeyPair accessors run through a tiny helper program.
        let pub_key = native_call(key_pair.clone(), "getPublic");
        let priv_key = native_call(key_pair, "getPrivate");

        let session = interp
            .call_static_style(cls, "generateSessionKey", vec![])
            .unwrap();
        let ct = interp
            .call_static_style(
                cls,
                "encryptData",
                vec![Value::bytes(b"hybrid payload".to_vec()), session.clone()],
            )
            .unwrap();
        let wrapped = interp
            .call_static_style(cls, "wrapSessionKey", vec![session, pub_key])
            .unwrap();
        let recovered = interp
            .call_static_style(cls, "unwrapSessionKey", vec![wrapped, priv_key])
            .unwrap();
        let pt = interp
            .call_static_style(cls, "decryptData", vec![ct, recovered])
            .unwrap();
        assert_eq!(pt.as_bytes().unwrap(), b"hybrid payload");
    }

    /// Invokes a `KeyPair` accessor through a one-off helper program; key
    /// values are self-contained, so they move freely between
    /// interpreters.
    fn native_call(recv: Value, name: &str) -> Value {
        use javamodel::ast::*;
        let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
            .param(JavaType::class("java.security.KeyPair"), "kp")
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("kp"),
                name,
                vec![],
            ))));
        let unit = CompilationUnit::new("q").class(ClassDecl::new("Acc").method(m));
        let mut helper = Interpreter::new(&unit);
        helper.call_static_style("Acc", "acc", vec![recv]).unwrap()
    }

    #[test]
    fn hybrid_strings_and_files_generate_sast_clean() {
        for t in [hybrid_strings(), hybrid_files()] {
            let generated = generate(
                &t,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table(),
            )
            .unwrap();
            let misuses = sast::analyze_unit(
                &generated.unit,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table(),
                sast::AnalyzerOptions::default(),
            );
            assert!(misuses.is_empty(), "{misuses:?}");
        }
    }
}
