//! Use case 9: secure user-password storage.
//!
//! Passwords are never stored; a random salt and a PBKDF2 hash are. The
//! verifier re-derives the hash and compares it. Both derivation chains
//! are the paper's PBE pipeline minus the final `SecretKeySpec` (the raw
//! key material *is* the stored hash).

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::PACKAGE;

/// Chain creating a fresh random salt.
pub fn create_salt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SECURE_RANDOM)
        .add_parameter("salt", "out")
        .build()
}

/// Chain deriving the stored hash from password and salt.
pub fn hash_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::PBE_KEY_SPEC)
        .add_parameter("pwd", "password")
        .add_parameter("salt", "salt")
        .consider_crysl_rule(names::SECRET_KEY_FACTORY)
        .consider_crysl_rule(names::SECRET_KEY)
        .add_return_object("hash")
        .build()
}

/// The use-case template: `createSalt`, `hashPassword`, `verifyPassword`.
pub fn password_storage() -> Template {
    let create_salt = TemplateMethod::new("createSalt", JavaType::byte_array())
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::new_array(JavaType::Byte, Expr::int(32)),
        ))
        .chain(create_salt_chain())
        .post(Stmt::Return(Some(Expr::var("salt"))));

    let hash_password = TemplateMethod::new("hashPassword", JavaType::byte_array())
        .param(JavaType::char_array(), "pwd")
        .param(JavaType::byte_array(), "salt")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "hash",
            Expr::null(),
        ))
        .chain(hash_chain())
        .post(Stmt::Return(Some(Expr::var("hash"))));

    let verify_password = TemplateMethod::new("verifyPassword", JavaType::Boolean)
        .param(JavaType::char_array(), "pwd")
        .param(JavaType::byte_array(), "salt")
        .param(JavaType::byte_array(), "expectedHash")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "hash",
            Expr::null(),
        ))
        .chain(hash_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::ARRAYS,
            "equals",
            vec![Expr::var("hash"), Expr::var("expectedHash")],
        ))));

    Template::new(PACKAGE, "SecurePasswordStore")
        .method(create_salt)
        .method(hash_password)
        .method(verify_password)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn generated_code_uses_pbkdf2_and_clears_password() {
        let generated = generate(
            &password_storage(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        assert!(
            src.contains("SecretKeyFactory.getInstance(\"PBKDF2WithHmacSHA256\")"),
            "{src}"
        );
        assert!(src.contains(".clearPassword();"), "{src}");
        assert!(
            src.contains("new PBEKeySpec(pwd, salt, 10000, 128)"),
            "{src}"
        );
    }

    #[test]
    fn store_and_verify_roundtrip() {
        let generated = generate(
            &password_storage(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "SecurePasswordStore";
        let salt = interp.call_static_style(cls, "createSalt", vec![]).unwrap();
        let pwd = || Value::chars("s3cret!".chars().collect());
        let hash = interp
            .call_static_style(cls, "hashPassword", vec![pwd(), salt.clone()])
            .unwrap();
        assert_eq!(hash.as_bytes().unwrap().len(), 16); // 128-bit hash
        let ok = interp
            .call_static_style(
                cls,
                "verifyPassword",
                vec![pwd(), salt.clone(), hash.clone()],
            )
            .unwrap();
        assert!(ok.as_bool().unwrap());
        let bad = interp
            .call_static_style(
                cls,
                "verifyPassword",
                vec![Value::chars("wrong".chars().collect()), salt, hash],
            )
            .unwrap();
        assert!(!bad.as_bool().unwrap());
    }

    #[test]
    fn different_salts_give_different_hashes() {
        let generated = generate(
            &password_storage(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "SecurePasswordStore";
        let s1 = interp.call_static_style(cls, "createSalt", vec![]).unwrap();
        let s2 = interp.call_static_style(cls, "createSalt", vec![]).unwrap();
        assert_ne!(s1.as_bytes().unwrap(), s2.as_bytes().unwrap());
        let pwd = || Value::chars("same".chars().collect());
        let h1 = interp
            .call_static_style(cls, "hashPassword", vec![pwd(), s1])
            .unwrap();
        let h2 = interp
            .call_static_style(cls, "hashPassword", vec![pwd(), s2])
            .unwrap();
        assert_ne!(h1.as_bytes().unwrap(), h2.as_bytes().unwrap());
    }

    #[test]
    fn generated_password_code_is_sast_clean() {
        let generated = generate(
            &password_storage(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
