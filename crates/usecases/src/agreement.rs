//! Use cases 17–21: key agreement and derivation chains.
//!
//! Diffie-Hellman (finite-field and elliptic-curve) agreement feeds HKDF
//! key derivation, which feeds either an AEAD cipher or a MAC. These are
//! the longest predicate chains in the catalogue:
//! `generatedKeyPair → generatedKey → rawKey → rawKey → generatedKey`,
//! crossing four rules before the payload operation runs.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::aead::{open_method, seal_method};
use crate::PACKAGE;

/// Chain generating a key pair with the algorithm pinned by the template
/// (the rule's own preference is RSA, which cannot do agreement).
pub fn pinned_key_pair_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::KEY_PAIR_GENERATOR)
        .add_parameter("kpAlg", "alg")
        .consider_crysl_rule(names::KEY_PAIR)
        .add_return_object("keyPair")
        .build()
}

/// `generateKeyPair()` for a pinned agreement algorithm (`"DH"` / `"EC"`).
fn key_pair_method(alg: &str) -> TemplateMethod {
    TemplateMethod::new("generateKeyPair", JavaType::class(names::KEY_PAIR))
        .pre(Stmt::decl_init(JavaType::string(), "kpAlg", Expr::str(alg)))
        .pre(Stmt::decl_init(
            JavaType::class(names::KEY_PAIR),
            "keyPair",
            Expr::null(),
        ))
        .chain(pinned_key_pair_chain())
        .post(Stmt::Return(Some(Expr::var("keyPair"))))
}

/// `generateSalt()`: a fresh random salt for the derivation step. The
/// chain has no return object — `nextBytes` fills the pre-declared array.
fn salt_method() -> TemplateMethod {
    TemplateMethod::new("generateSalt", JavaType::byte_array())
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::SECURE_RANDOM)
                .add_parameter("salt", "out")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("salt"))))
}

/// Raw agreement chain: `KeyAgreement` with both keys supplied by the
/// caller, optionally pinned to a non-default algorithm.
fn agreement_chain(pin_alg: bool) -> GeneratorChain {
    let mut g = CrySlCodeGenerator::get_instance().consider_crysl_rule(names::KEY_AGREEMENT);
    if pin_alg {
        g = g.add_parameter("kaAlg", "alg");
    }
    g.add_parameter("own", "ownKey")
        .add_parameter("peer", "peerKey")
        .add_return_object("secret")
        .build()
}

/// `deriveSecret(own, peer) -> byte[]` for a raw-agreement use case.
fn derive_secret_method(pin_alg: Option<&str>) -> TemplateMethod {
    let mut m = TemplateMethod::new("deriveSecret", JavaType::byte_array())
        .param(JavaType::class(names::PRIVATE_KEY), "own")
        .param(JavaType::class(names::PUBLIC_KEY), "peer");
    if let Some(alg) = pin_alg {
        m = m.pre(Stmt::decl_init(JavaType::string(), "kaAlg", Expr::str(alg)));
    }
    m.pre(Stmt::decl_init(
        JavaType::byte_array(),
        "secret",
        Expr::null(),
    ))
    .chain(agreement_chain(pin_alg.is_some()))
    .post(Stmt::Return(Some(Expr::var("secret"))))
}

/// Use case 17: finite-field Diffie-Hellman shared-secret derivation.
pub fn dh_agreement() -> Template {
    Template::new(PACKAGE, "DhKeyAgreement")
        .method(key_pair_method("DH"))
        .method(derive_secret_method(None))
}

/// Use case 18: elliptic-curve Diffie-Hellman shared-secret derivation.
pub fn ecdh_agreement() -> Template {
    Template::new(PACKAGE, "EcdhKeyAgreement")
        .method(key_pair_method("EC"))
        .method(derive_secret_method(Some("ECDH")))
}

/// Full session-key derivation: agreement → HKDF → `SecretKeySpec`. The
/// salt travels as a parameter so both sides can derive the same key; the
/// HKDF output length and the key algorithm steer which cipher the session
/// key fits.
fn session_key_chain(pin_ka: bool, pin_out_len: bool, pin_key_alg: bool) -> GeneratorChain {
    let mut g = CrySlCodeGenerator::get_instance().consider_crysl_rule(names::KEY_AGREEMENT);
    if pin_ka {
        g = g.add_parameter("kaAlg", "alg");
    }
    g = g
        .add_parameter("own", "ownKey")
        .add_parameter("peer", "peerKey")
        .consider_crysl_rule(names::KDF)
        .add_parameter("salt", "salt")
        .add_parameter("info", "info");
    if pin_out_len {
        g = g.add_parameter("outLen", "outLen");
    }
    g = g.consider_crysl_rule(names::SECRET_KEY_SPEC);
    if pin_key_alg {
        g = g.add_parameter("keyAlg", "alg");
    }
    g.add_return_object("sessionKey").build()
}

/// `deriveSessionKey(own, peer, salt) -> SecretKey` with the given
/// pinnings and context string.
fn session_key_method(
    info: &str,
    ka_alg: Option<&str>,
    out_len: Option<i64>,
    key_alg: Option<&str>,
) -> TemplateMethod {
    let mut m = TemplateMethod::new("deriveSessionKey", JavaType::class(names::SECRET_KEY))
        .param(JavaType::class(names::PRIVATE_KEY), "own")
        .param(JavaType::class(names::PUBLIC_KEY), "peer")
        .param(JavaType::byte_array(), "salt")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "info",
            Expr::call(Expr::str(info), "getBytes", vec![]),
        ));
    if let Some(alg) = ka_alg {
        m = m.pre(Stmt::decl_init(JavaType::string(), "kaAlg", Expr::str(alg)));
    }
    if let Some(len) = out_len {
        m = m.pre(Stmt::decl_init(JavaType::Int, "outLen", Expr::int(len)));
    }
    if let Some(alg) = key_alg {
        m = m.pre(Stmt::decl_init(
            JavaType::string(),
            "keyAlg",
            Expr::str(alg),
        ));
    }
    m.pre(Stmt::decl_init(
        JavaType::class(names::SECRET_KEY),
        "sessionKey",
        Expr::null(),
    ))
    .chain(session_key_chain(
        ka_alg.is_some(),
        out_len.is_some(),
        key_alg.is_some(),
    ))
    .post(Stmt::Return(Some(Expr::var("sessionKey"))))
}

/// Use case 19: DH-agreed AES-GCM session encryption. The HKDF output is
/// pinned to 16 bytes because the simulated provider only implements
/// AES-128.
pub fn dh_session_encryption() -> Template {
    Template::new(PACKAGE, "DhSessionEncryptor")
        .method(key_pair_method("DH"))
        .method(salt_method())
        .method(session_key_method("dh-session", None, Some(16), None))
        .method(seal_method(
            "AES/GCM/NoPadding",
            names::GCM_PARAMETER_SPEC,
            12,
        ))
        .method(open_method(
            "AES/GCM/NoPadding",
            names::GCM_PARAMETER_SPEC,
            12,
        ))
}

/// Use case 20: ECDH-agreed ChaCha20-Poly1305 session encryption (the
/// KDF's default 32-byte output is exactly a ChaCha20 key).
pub fn ecdh_session_encryption() -> Template {
    Template::new(PACKAGE, "EcdhSessionEncryptor")
        .method(key_pair_method("EC"))
        .method(salt_method())
        .method(session_key_method(
            "ecdh-session",
            Some("ECDH"),
            None,
            Some("ChaCha20"),
        ))
        .method(seal_method(
            "ChaCha20-Poly1305",
            names::IV_PARAMETER_SPEC,
            12,
        ))
        .method(open_method(
            "ChaCha20-Poly1305",
            names::IV_PARAMETER_SPEC,
            12,
        ))
}

/// Use case 21: message authentication under an agreed key — ECDH → HKDF
/// → HMAC, the pattern of an authenticated channel without encryption.
pub fn agreed_mac() -> Template {
    let authenticate = TemplateMethod::new("authenticate", JavaType::byte_array())
        .param(JavaType::byte_array(), "message")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(JavaType::byte_array(), "tag", Expr::null()))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::MAC)
                .add_parameter("key", "key")
                .add_parameter("message", "input")
                .add_return_object("tag")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("tag"))));

    Template::new(PACKAGE, "AgreedMacAuthenticator")
        .method(key_pair_method("EC"))
        .method(salt_method())
        .method({
            let mut m = session_key_method("agreed-mac", Some("ECDH"), None, Some("HmacSHA256"));
            m.name = "deriveMacKey".into();
            m
        })
        .method(authenticate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    fn generated(t: &Template) -> cognicrypt_core::Generated {
        generate(
            t,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap()
    }

    /// Invokes a `KeyPair` accessor through a one-off helper program.
    fn accessor(recv: Value, name: &str) -> Value {
        use javamodel::ast::*;
        let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
            .param(JavaType::class(names::KEY_PAIR), "kp")
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("kp"),
                name,
                vec![],
            ))));
        let unit = CompilationUnit::new("q").class(ClassDecl::new("Acc").method(m));
        let mut helper = Interpreter::new(&unit);
        helper.call_static_style("Acc", "acc", vec![recv]).unwrap()
    }

    /// Two key pairs plus the cross accessors: (aPriv, aPub, bPriv, bPub).
    fn two_parties(interp: &mut Interpreter<'_>, cls: &str) -> (Value, Value, Value, Value) {
        let a = interp
            .call_static_style(cls, "generateKeyPair", vec![])
            .unwrap();
        let b = interp
            .call_static_style(cls, "generateKeyPair", vec![])
            .unwrap();
        (
            accessor(a.clone(), "getPrivate"),
            accessor(a, "getPublic"),
            accessor(b.clone(), "getPrivate"),
            accessor(b, "getPublic"),
        )
    }

    #[test]
    fn dh_agreement_pins_the_algorithm_and_both_sides_agree() {
        let g = generated(&dh_agreement());
        assert!(
            g.java_source
                .contains("KeyPairGenerator.getInstance(kpAlg)"),
            "{}",
            g.java_source
        );
        assert!(
            g.java_source.contains("KeyAgreement.getInstance(\"DH\")"),
            "{}",
            g.java_source
        );
        let mut interp = Interpreter::new(&g.unit);
        let cls = "DhKeyAgreement";
        let (a_priv, a_pub, b_priv, b_pub) = two_parties(&mut interp, cls);
        let s1 = interp
            .call_static_style(cls, "deriveSecret", vec![a_priv, b_pub])
            .unwrap();
        let s2 = interp
            .call_static_style(cls, "deriveSecret", vec![b_priv, a_pub])
            .unwrap();
        assert_eq!(s1.as_bytes().unwrap(), s2.as_bytes().unwrap());
    }

    #[test]
    fn ecdh_agreement_agrees_across_parties() {
        let g = generated(&ecdh_agreement());
        assert!(
            g.java_source.contains("KeyAgreement.getInstance(kaAlg)"),
            "{}",
            g.java_source
        );
        let mut interp = Interpreter::new(&g.unit);
        let cls = "EcdhKeyAgreement";
        let (a_priv, a_pub, b_priv, b_pub) = two_parties(&mut interp, cls);
        let s1 = interp
            .call_static_style(cls, "deriveSecret", vec![a_priv, b_pub])
            .unwrap();
        let s2 = interp
            .call_static_style(cls, "deriveSecret", vec![b_priv, a_pub])
            .unwrap();
        assert_eq!(s1.as_bytes().unwrap(), s2.as_bytes().unwrap());
        assert!(!s1.as_bytes().unwrap().is_empty());
    }

    fn session_roundtrip(t: &Template, cls: &str) {
        let g = generated(t);
        let mut interp = Interpreter::new(&g.unit);
        let (a_priv, a_pub, b_priv, b_pub) = two_parties(&mut interp, cls);
        let salt = interp
            .call_static_style(cls, "generateSalt", vec![])
            .unwrap();
        let k1 = interp
            .call_static_style(cls, "deriveSessionKey", vec![a_priv, b_pub, salt.clone()])
            .unwrap();
        let k2 = interp
            .call_static_style(cls, "deriveSessionKey", vec![b_priv, a_pub, salt])
            .unwrap();
        // One side seals, the other opens with its own derived key.
        let sealed = interp
            .call_static_style(cls, "seal", vec![Value::bytes(b"session msg".to_vec()), k1])
            .unwrap();
        let opened = interp
            .call_static_style(cls, "open", vec![sealed, k2])
            .unwrap();
        assert_eq!(opened.as_bytes().unwrap(), b"session msg");
    }

    #[test]
    fn dh_session_derives_an_aes_key_and_roundtrips() {
        let g = generated(&dh_session_encryption());
        // AES-128 needs exactly the pinned 16-byte HKDF output.
        assert!(
            g.java_source.contains("deriveData(") && g.java_source.contains("outLen"),
            "{}",
            g.java_source
        );
        session_roundtrip(&dh_session_encryption(), "DhSessionEncryptor");
    }

    #[test]
    fn ecdh_session_derives_a_chacha_key_and_roundtrips() {
        let g = generated(&ecdh_session_encryption());
        assert!(
            g.java_source.contains("new SecretKeySpec(okm, keyAlg)"),
            "{}",
            g.java_source
        );
        session_roundtrip(&ecdh_session_encryption(), "EcdhSessionEncryptor");
    }

    #[test]
    fn agreed_mac_produces_matching_tags_on_both_sides() {
        let g = generated(&agreed_mac());
        assert!(
            g.java_source.contains("Mac.getInstance(\"HmacSHA256\")"),
            "{}",
            g.java_source
        );
        let mut interp = Interpreter::new(&g.unit);
        let cls = "AgreedMacAuthenticator";
        let (a_priv, a_pub, b_priv, b_pub) = two_parties(&mut interp, cls);
        let salt = interp
            .call_static_style(cls, "generateSalt", vec![])
            .unwrap();
        let k1 = interp
            .call_static_style(cls, "deriveMacKey", vec![a_priv, b_pub, salt.clone()])
            .unwrap();
        let k2 = interp
            .call_static_style(cls, "deriveMacKey", vec![b_priv, a_pub, salt])
            .unwrap();
        let t1 = interp
            .call_static_style(
                cls,
                "authenticate",
                vec![Value::bytes(b"channel msg".to_vec()), k1.clone()],
            )
            .unwrap();
        let t2 = interp
            .call_static_style(
                cls,
                "authenticate",
                vec![Value::bytes(b"channel msg".to_vec()), k2],
            )
            .unwrap();
        assert_eq!(t1.as_bytes().unwrap(), t2.as_bytes().unwrap());
        // A different message must change the tag.
        let t3 = interp
            .call_static_style(
                cls,
                "authenticate",
                vec![Value::bytes(b"other msg".to_vec()), k1],
            )
            .unwrap();
        assert_ne!(t1.as_bytes().unwrap(), t3.as_bytes().unwrap());
    }

    #[test]
    fn agreement_family_is_sast_clean() {
        for t in [
            dh_agreement(),
            ecdh_agreement(),
            dh_session_encryption(),
            ecdh_session_encryption(),
            agreed_mac(),
        ] {
            let g = generated(&t);
            let misuses = sast::analyze_unit(
                &g.unit,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table(),
                sast::AnalyzerOptions::default(),
            );
            assert!(misuses.is_empty(), "{}: {misuses:?}", t.class_name);
        }
    }
}
