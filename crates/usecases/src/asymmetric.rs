//! Use case 8: asymmetric (RSA) encryption of strings.
//!
//! The template considers only the Cipher rule in its encrypt/decrypt
//! chains; because no `IvParameterSpec` rule is in play, the generator's
//! path filters select the two-argument `init` overload, and the
//! `instanceof` constraints pick the asymmetric transformation for the
//! `PublicKey`/`PrivateKey`-typed key parameters.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::hybrid::key_pair_chain;
use crate::PACKAGE;

/// RSA encryption chain: Cipher only, mode defaults to `ENCRYPT_MODE`.
pub fn rsa_encrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("publicKey", "key")
        .add_parameter("plainText", "plainText")
        .add_return_object("cipherText")
        .build()
}

/// RSA decryption chain: the template pins `encmode` to `DECRYPT_MODE`.
pub fn rsa_decrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("mode", "encmode")
        .add_parameter("privateKey", "key")
        .add_parameter("cipherText", "plainText")
        .add_return_object("decrypted")
        .build()
}

/// The use-case template: `generateKeyPair`, `encrypt`, `decrypt`.
pub fn asymmetric_strings() -> Template {
    let generate_key_pair =
        TemplateMethod::new("generateKeyPair", JavaType::class(names::KEY_PAIR))
            .pre(Stmt::decl_init(
                JavaType::class(names::KEY_PAIR),
                "keyPair",
                Expr::null(),
            ))
            .chain(key_pair_chain())
            .post(Stmt::Return(Some(Expr::var("keyPair"))));

    let encrypt = TemplateMethod::new("encrypt", JavaType::byte_array())
        .param(JavaType::string(), "data")
        .param(JavaType::class(names::PUBLIC_KEY), "publicKey")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "plainText",
            Expr::call(Expr::var("data"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(rsa_encrypt_chain())
        .post(Stmt::Return(Some(Expr::var("cipherText"))));

    let decrypt = TemplateMethod::new("decrypt", JavaType::string())
        .param(JavaType::byte_array(), "cipherText")
        .param(JavaType::class(names::PRIVATE_KEY), "privateKey")
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(rsa_decrypt_chain())
        .post(Stmt::Return(Some(Expr::new_object(
            names::STRING,
            vec![Expr::var("decrypted")],
        ))));

    Template::new(PACKAGE, "SecureAsymmetricEncryptor")
        .method(generate_key_pair)
        .method(encrypt)
        .method(decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn generator_picks_rsa_and_two_arg_init() {
        let generated = generate(
            &asymmetric_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        assert!(
            src.contains("Cipher.getInstance(\"RSA/ECB/PKCS1Padding\")"),
            "{src}"
        );
        // No IV spec rule considered, so the 2-argument init is chosen.
        assert!(src.contains(".init(1, publicKey)"), "{src}");
        assert!(src.contains(".init(mode, privateKey)"), "{src}");
        assert!(!src.contains("IvParameterSpec"), "{src}");
    }

    #[test]
    fn asymmetric_roundtrip_end_to_end() {
        let generated = generate(
            &asymmetric_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "SecureAsymmetricEncryptor";
        let kp = interp
            .call_static_style(cls, "generateKeyPair", vec![])
            .unwrap();
        let pub_key = accessor(kp.clone(), "getPublic");
        let priv_key = accessor(kp, "getPrivate");
        let ct = interp
            .call_static_style(
                cls,
                "encrypt",
                vec![Value::Str("rsa secret".into()), pub_key],
            )
            .unwrap();
        assert_ne!(ct.as_bytes().unwrap(), b"rsa secret");
        let pt = interp
            .call_static_style(cls, "decrypt", vec![ct, priv_key])
            .unwrap();
        assert_eq!(pt.as_str().unwrap(), "rsa secret");
    }

    fn accessor(recv: Value, name: &str) -> Value {
        use javamodel::ast::*;
        let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
            .param(JavaType::class("java.security.KeyPair"), "kp")
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("kp"),
                name,
                vec![],
            ))));
        let unit = CompilationUnit::new("q").class(ClassDecl::new("Acc").method(m));
        let mut helper = Interpreter::new(&unit);
        helper.call_static_style("Acc", "acc", vec![recv]).unwrap()
    }

    #[test]
    fn generated_asymmetric_code_is_sast_clean() {
        let generated = generate(
            &asymmetric_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
