//! Use cases 13–16: the authenticated-encryption family beyond plain
//! AES-GCM (use case 12).
//!
//! These templates steer the widened Cipher rule towards the
//! BouncyCastle-style AEAD providers the simulated JCA ships:
//! `AES/GCM-SIV/NoPadding` (nonce-misuse-resistant, deterministic per
//! key/nonce pair), `ChaCha20-Poly1305` (RFC 8439), and the unauthenticated
//! `AES/CTR/NoPadding` stream mode for contrast. All pinning goes through
//! the template idiom the paper's `addParameter` API enables: a pre-declared
//! constant bound to the rule variable.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::symmetric::generate_key_chain;
use crate::PACKAGE;

/// Chain generating a fresh ChaCha20 key: the `KeyGenerator` rule with
/// both choice points pinned away from their AES-first defaults.
pub fn chacha_key_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::KEY_GENERATOR)
        .add_parameter("chachaAlg", "alg")
        .add_parameter("chachaKeySize", "keySize")
        .add_return_object("key")
        .build()
}

/// AEAD encryption chain parameterized over the nonce container: GCM-family
/// transformations take a `GCMParameterSpec`, stream AEADs an
/// `IvParameterSpec`.
pub(crate) fn aead_encrypt_chain(spec_rule: &str) -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SECURE_RANDOM)
        .add_parameter("nonce", "out")
        .consider_crysl_rule(spec_rule)
        .add_parameter("nonce", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("transformation", "transformation")
        .add_parameter("key", "key")
        .add_parameter("plainText", "plainText")
        .add_return_object("cipherText")
        .build()
}

/// The matching decryption chain (`mode = 2` bound by the template).
pub(crate) fn aead_decrypt_chain(spec_rule: &str) -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(spec_rule)
        .add_parameter("nonce", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("transformation", "transformation")
        .add_parameter("mode", "encmode")
        .add_parameter("key", "key")
        .add_parameter("encrypted", "plainText")
        .add_return_object("decrypted")
        .build()
}

/// `seal(plainText, key) -> nonce || cipherText` for a pinned
/// transformation and nonce length.
pub(crate) fn seal_method(transformation: &str, spec_rule: &str, nonce_len: i64) -> TemplateMethod {
    TemplateMethod::new("seal", JavaType::byte_array())
        .param(JavaType::byte_array(), "plainText")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::string(),
            "transformation",
            Expr::str(transformation),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::new_array(JavaType::Byte, Expr::int(nonce_len)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(aead_encrypt_chain(spec_rule))
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("nonce"), Expr::var("cipherText")],
        ))))
}

/// `open(data, key)` splitting `data = nonce || cipherText` back apart.
pub(crate) fn open_method(transformation: &str, spec_rule: &str, nonce_len: i64) -> TemplateMethod {
    TemplateMethod::new("open", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::string(),
            "transformation",
            Expr::str(transformation),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(nonce_len)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(nonce_len),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(aead_decrypt_chain(spec_rule))
        .post(Stmt::Return(Some(Expr::var("decrypted"))))
}

/// `generateKey` via the plain AES chain.
pub(crate) fn aes_key_method() -> TemplateMethod {
    TemplateMethod::new("generateKey", JavaType::class(names::SECRET_KEY))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "key",
            Expr::null(),
        ))
        .chain(generate_key_chain())
        .post(Stmt::Return(Some(Expr::var("key"))))
}

/// `generateKey` via the pinned ChaCha20 chain.
fn chacha_key_method() -> TemplateMethod {
    TemplateMethod::new("generateKey", JavaType::class(names::SECRET_KEY))
        .pre(Stmt::decl_init(
            JavaType::string(),
            "chachaAlg",
            Expr::str("ChaCha20"),
        ))
        .pre(Stmt::decl_init(
            JavaType::Int,
            "chachaKeySize",
            Expr::int(256),
        ))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "key",
            Expr::null(),
        ))
        .chain(chacha_key_chain())
        .post(Stmt::Return(Some(Expr::var("key"))))
}

/// Use case 13: nonce-misuse-resistant encryption with AES-GCM-SIV.
pub fn gcm_siv_encryption() -> Template {
    Template::new(PACKAGE, "DeterministicAeadEncryptor")
        .method(aes_key_method())
        .method(seal_method(
            "AES/GCM-SIV/NoPadding",
            names::GCM_PARAMETER_SPEC,
            12,
        ))
        .method(open_method(
            "AES/GCM-SIV/NoPadding",
            names::GCM_PARAMETER_SPEC,
            12,
        ))
}

/// Use case 14: ChaCha20-Poly1305 encryption of byte arrays.
pub fn chacha_poly_encryption() -> Template {
    Template::new(PACKAGE, "ChaChaPolyEncryptor")
        .method(chacha_key_method())
        .method(seal_method(
            "ChaCha20-Poly1305",
            names::IV_PARAMETER_SPEC,
            12,
        ))
        .method(open_method(
            "ChaCha20-Poly1305",
            names::IV_PARAMETER_SPEC,
            12,
        ))
}

/// Use case 15: ChaCha20-Poly1305 encryption of strings — the same
/// fluent-API chains as use case 14 with string glue, mirroring how the
/// paper's use cases 1–3 and 5–7 differ only in wrapper code.
pub fn chacha_poly_strings() -> Template {
    let seal = TemplateMethod::new("sealText", JavaType::byte_array())
        .param(JavaType::string(), "text")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "plainText",
            Expr::call(Expr::var("text"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::string(),
            "transformation",
            Expr::str("ChaCha20-Poly1305"),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::new_array(JavaType::Byte, Expr::int(12)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(aead_encrypt_chain(names::IV_PARAMETER_SPEC))
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("nonce"), Expr::var("cipherText")],
        ))));

    let open = TemplateMethod::new("openText", JavaType::string())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::string(),
            "transformation",
            Expr::str("ChaCha20-Poly1305"),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(12)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(12),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(aead_decrypt_chain(names::IV_PARAMETER_SPEC))
        .post(Stmt::Return(Some(Expr::new_object(
            names::STRING,
            vec![Expr::var("decrypted")],
        ))));

    Template::new(PACKAGE, "ChaChaPolyStringEncryptor")
        .method(chacha_key_method())
        .method(seal)
        .method(open)
}

/// Use case 16: AES-CTR stream encryption (unauthenticated, for payloads
/// whose integrity is protected elsewhere, e.g. by a MAC from the token
/// family). The simulated provider's CTR layout is nonce (12 bytes) plus
/// a 4-byte block counter, so the IV length matches the AEAD modes.
pub fn ctr_encryption() -> Template {
    Template::new(PACKAGE, "CtrStreamEncryptor")
        .method(aes_key_method())
        .method(seal_method(
            "AES/CTR/NoPadding",
            names::IV_PARAMETER_SPEC,
            12,
        ))
        .method(open_method(
            "AES/CTR/NoPadding",
            names::IV_PARAMETER_SPEC,
            12,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    fn generated(t: &Template) -> cognicrypt_core::Generated {
        generate(
            t,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap()
    }

    fn roundtrip(t: &Template, cls: &str, seal: &str, open: &str) {
        let generated = generated(t);
        let mut interp = Interpreter::new(&generated.unit);
        let key = interp
            .call_static_style(cls, "generateKey", vec![])
            .unwrap();
        let sealed = interp
            .call_static_style(
                cls,
                seal,
                vec![Value::bytes(b"aead family payload".to_vec()), key.clone()],
            )
            .unwrap();
        let opened = interp
            .call_static_style(cls, open, vec![sealed, key])
            .unwrap();
        assert_eq!(opened.as_bytes().unwrap(), b"aead family payload");
    }

    #[test]
    fn gcm_siv_pins_the_transformation_and_roundtrips() {
        let g = generated(&gcm_siv_encryption());
        assert!(
            g.java_source.contains("\"AES/GCM-SIV/NoPadding\""),
            "{}",
            g.java_source
        );
        assert!(
            g.java_source.contains("new GCMParameterSpec(128, nonce)"),
            "{}",
            g.java_source
        );
        roundtrip(
            &gcm_siv_encryption(),
            "DeterministicAeadEncryptor",
            "seal",
            "open",
        );
    }

    #[test]
    fn gcm_siv_detects_tampering() {
        let g = generated(&gcm_siv_encryption());
        let mut interp = Interpreter::new(&g.unit);
        let cls = "DeterministicAeadEncryptor";
        let key = interp
            .call_static_style(cls, "generateKey", vec![])
            .unwrap();
        let sealed = interp
            .call_static_style(cls, "seal", vec![Value::bytes(b"pt".to_vec()), key.clone()])
            .unwrap();
        let mut tampered = sealed.as_bytes().unwrap();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        let err = interp
            .call_static_style(cls, "open", vec![Value::bytes(tampered), key])
            .unwrap_err();
        assert!(err.message.contains("tag"), "{err}");
    }

    #[test]
    fn chacha_poly_generates_a_chacha_key_and_roundtrips() {
        let g = generated(&chacha_poly_encryption());
        assert!(
            g.java_source
                .contains("KeyGenerator.getInstance(chachaAlg)"),
            "{}",
            g.java_source
        );
        assert!(
            g.java_source.contains("\"ChaCha20-Poly1305\""),
            "{}",
            g.java_source
        );
        roundtrip(
            &chacha_poly_encryption(),
            "ChaChaPolyEncryptor",
            "seal",
            "open",
        );
    }

    #[test]
    fn chacha_poly_strings_share_chains_with_byte_arrays() {
        let b = chacha_poly_encryption();
        let s = chacha_poly_strings();
        let rules_of = |t: &Template| -> Vec<Vec<String>> {
            t.methods
                .iter()
                .filter_map(|m| m.chain.as_ref())
                .map(|c| c.entries.iter().map(|e| e.rule.clone()).collect())
                .collect()
        };
        assert_eq!(rules_of(&b), rules_of(&s));
        assert_ne!(b, s);

        let g = generated(&s);
        let mut interp = Interpreter::new(&g.unit);
        let cls = "ChaChaPolyStringEncryptor";
        let key = interp
            .call_static_style(cls, "generateKey", vec![])
            .unwrap();
        let sealed = interp
            .call_static_style(
                cls,
                "sealText",
                vec![Value::Str("string payload".to_owned()), key.clone()],
            )
            .unwrap();
        let opened = interp
            .call_static_style(cls, "openText", vec![sealed, key])
            .unwrap();
        assert_eq!(opened.as_str().unwrap(), "string payload");
    }

    #[test]
    fn ctr_streams_roundtrip() {
        let g = generated(&ctr_encryption());
        assert!(
            g.java_source.contains("\"AES/CTR/NoPadding\""),
            "{}",
            g.java_source
        );
        roundtrip(&ctr_encryption(), "CtrStreamEncryptor", "seal", "open");
    }

    #[test]
    fn aead_family_is_sast_clean() {
        for t in [
            gcm_siv_encryption(),
            chacha_poly_encryption(),
            chacha_poly_strings(),
            ctr_encryption(),
        ] {
            let g = generated(&t);
            let misuses = sast::analyze_unit(
                &g.unit,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table(),
                sast::AnalyzerOptions::default(),
            );
            assert!(misuses.is_empty(), "{}: {misuses:?}", t.class_name);
        }
    }
}
