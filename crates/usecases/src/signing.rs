//! Use case 10: digital signing of strings.
//!
//! The Signature rule has two path alternatives — sign and verify. Which
//! one the generator picks is decided purely by the template's bindings
//! (`privKey` vs `pubKey`), the paper's path-filtering step in action.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::hybrid::key_pair_chain;
use crate::PACKAGE;

/// Signing chain: binds the private key, data and signature output.
pub fn sign_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SIGNATURE)
        .add_parameter("privateKey", "privKey")
        .add_parameter("dataBytes", "input")
        .add_return_object("signature")
        .build()
}

/// Verification chain: binds the public key, data, signature input and
/// the boolean result.
pub fn verify_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SIGNATURE)
        .add_parameter("publicKey", "pubKey")
        .add_parameter("dataBytes", "input")
        .add_parameter("signature", "signature")
        .add_return_object("valid")
        .build()
}

/// The use-case template: `generateKeyPair`, `sign`, `verify`.
pub fn signing_strings() -> Template {
    let generate_key_pair =
        TemplateMethod::new("generateKeyPair", JavaType::class(names::KEY_PAIR))
            .pre(Stmt::decl_init(
                JavaType::class(names::KEY_PAIR),
                "keyPair",
                Expr::null(),
            ))
            .chain(key_pair_chain())
            .post(Stmt::Return(Some(Expr::var("keyPair"))));

    let sign = TemplateMethod::new("sign", JavaType::byte_array())
        .param(JavaType::string(), "data")
        .param(JavaType::class(names::PRIVATE_KEY), "privateKey")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "dataBytes",
            Expr::call(Expr::var("data"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "signature",
            Expr::null(),
        ))
        .chain(sign_chain())
        .post(Stmt::Return(Some(Expr::var("signature"))));

    let verify = TemplateMethod::new("verify", JavaType::Boolean)
        .param(JavaType::string(), "data")
        .param(JavaType::byte_array(), "signature")
        .param(JavaType::class(names::PUBLIC_KEY), "publicKey")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "dataBytes",
            Expr::call(Expr::var("data"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::Boolean,
            "valid",
            Expr::bool(false),
        ))
        .chain(verify_chain())
        .post(Stmt::Return(Some(Expr::var("valid"))));

    Template::new(PACKAGE, "SecureSigner")
        .method(generate_key_pair)
        .method(sign)
        .method(verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn bindings_select_sign_vs_verify_paths() {
        let generated = generate(
            &signing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        assert!(src.contains(".initSign(privateKey)"), "{src}");
        assert!(src.contains(".sign()"), "{src}");
        assert!(src.contains(".initVerify(publicKey)"), "{src}");
        assert!(src.contains(".verify(signature)"), "{src}");
        assert!(
            src.contains("Signature.getInstance(\"SHA256withRSA\")"),
            "{src}"
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let generated = generate(
            &signing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "SecureSigner";
        let kp = interp
            .call_static_style(cls, "generateKeyPair", vec![])
            .unwrap();
        let priv_key = accessor(kp.clone(), "getPrivate");
        let pub_key = accessor(kp, "getPublic");
        let sig = interp
            .call_static_style(
                cls,
                "sign",
                vec![Value::Str("signed message".into()), priv_key],
            )
            .unwrap();
        let ok = interp
            .call_static_style(
                cls,
                "verify",
                vec![
                    Value::Str("signed message".into()),
                    sig.clone(),
                    pub_key.clone(),
                ],
            )
            .unwrap();
        assert!(ok.as_bool().unwrap());
        let tampered = interp
            .call_static_style(
                cls,
                "verify",
                vec![Value::Str("tampered message".into()), sig, pub_key],
            )
            .unwrap();
        assert!(!tampered.as_bool().unwrap());
    }

    fn accessor(recv: Value, name: &str) -> Value {
        use javamodel::ast::*;
        let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
            .param(JavaType::class("java.security.KeyPair"), "kp")
            .statement(Stmt::Return(Some(Expr::call(
                Expr::var("kp"),
                name,
                vec![],
            ))));
        let unit = CompilationUnit::new("q").class(ClassDecl::new("Acc").method(m));
        let mut helper = Interpreter::new(&unit);
        helper.call_static_style("Acc", "acc", vec![recv]).unwrap()
    }

    #[test]
    fn generated_signing_code_is_sast_clean() {
        let generated = generate(
            &signing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
