//! Use cases 22–26: MAC tokens, HKDF expansion and key transport.
//!
//! The token family covers integrity without confidentiality: minting and
//! verifying HMAC tags over payloads, expanding master keys into
//! per-purpose subkeys, and moving exported key material between parties.
//! Verification compares tags with `java.util.Arrays.equals` — the
//! generated code never reimplements the comparison.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::pbe::{decrypt_chain, encrypt_chain, get_key_method};
use crate::symmetric::generate_key_chain;
use crate::PACKAGE;

/// The MAC chain every minting method shares: `Mac` keyed by the caller's
/// secret, fed the payload, returning the tag.
pub fn mac_chain(payload_var: &str, tag_var: &str) -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::MAC)
        .add_parameter("key", "key")
        .add_parameter(payload_var, "input")
        .add_return_object(tag_var)
        .build()
}

/// `mint(payload, key) -> tag`.
fn mint_method() -> TemplateMethod {
    TemplateMethod::new("mint", JavaType::byte_array())
        .param(JavaType::byte_array(), "payload")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(JavaType::byte_array(), "tag", Expr::null()))
        .chain(mac_chain("payload", "tag"))
        .post(Stmt::Return(Some(Expr::var("tag"))))
}

/// `verify(payload, tag, key) -> boolean`: recompute and compare.
fn verify_method() -> TemplateMethod {
    TemplateMethod::new("verify", JavaType::Boolean)
        .param(JavaType::byte_array(), "payload")
        .param(JavaType::byte_array(), "tag")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "freshTag",
            Expr::null(),
        ))
        .chain(mac_chain("payload", "freshTag"))
        .post(Stmt::Return(Some(Expr::static_call(
            names::ARRAYS,
            "equals",
            vec![Expr::var("tag"), Expr::var("freshTag")],
        ))))
}

/// `generateSalt()` — identical shape to the agreement family's.
fn salt_method() -> TemplateMethod {
    TemplateMethod::new("generateSalt", JavaType::byte_array())
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::SECURE_RANDOM)
                .add_parameter("salt", "out")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("salt"))))
}

/// Use case 22: HMAC token minting under a freshly generated key.
pub fn hmac_token() -> Template {
    let generate_key = TemplateMethod::new("generateKey", JavaType::class(names::SECRET_KEY))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "key",
            Expr::null(),
        ))
        .chain(generate_key_chain())
        .post(Stmt::Return(Some(Expr::var("key"))));

    Template::new(PACKAGE, "HmacTokenMinter")
        .method(generate_key)
        .method(mint_method())
        .method(verify_method())
}

/// Use case 23: expanding a fresh master key into a context-bound subkey —
/// `KeyGenerator → getEncoded → HKDF`, the predicate chain
/// `generatedKey → rawKey → rawKey` within one method.
pub fn hkdf_subkeys() -> Template {
    let expand = TemplateMethod::new("expandKey", JavaType::byte_array())
        .param(JavaType::byte_array(), "salt")
        .param(JavaType::byte_array(), "info")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "subkey",
            Expr::null(),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::KEY_GENERATOR)
                .consider_crysl_rule(names::SECRET_KEY)
                .consider_crysl_rule(names::KDF)
                .add_parameter("salt", "salt")
                .add_parameter("info", "info")
                .add_return_object("subkey")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("subkey"))));

    Template::new(PACKAGE, "HkdfSubkeyDeriver")
        .method(salt_method())
        .method(expand)
}

/// Use case 24: minting tokens under a key derived from caller-supplied
/// input keying material — HKDF → `SecretKeySpec("HmacSHA256")` → `Mac`.
pub fn derived_mac_token() -> Template {
    let derive = TemplateMethod::new("deriveMacKey", JavaType::class(names::SECRET_KEY))
        .param(JavaType::byte_array(), "ikm")
        .param(JavaType::byte_array(), "salt")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "info",
            Expr::call(Expr::str("token-mac"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::string(),
            "keyAlg",
            Expr::str("HmacSHA256"),
        ))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "macKey",
            Expr::null(),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::KDF)
                .add_parameter("ikm", "ikm")
                .add_parameter("salt", "salt")
                .add_parameter("info", "info")
                .consider_crysl_rule(names::SECRET_KEY_SPEC)
                .add_parameter("keyAlg", "alg")
                .add_return_object("macKey")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("macKey"))));

    Template::new(PACKAGE, "DerivedMacTokenMinter")
        .method(salt_method())
        .method(derive)
        .method(mint_method())
        .method(verify_method())
}

/// Use case 25: minting tokens under a password-derived key — the paper's
/// Figure 4 derivation reused verbatim, with `Mac` instead of `Cipher`
/// downstream.
pub fn password_mac_token() -> Template {
    let mint = TemplateMethod::new("mint", JavaType::byte_array())
        .param(JavaType::string(), "payload")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "message",
            Expr::call(Expr::var("payload"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(JavaType::byte_array(), "tag", Expr::null()))
        .chain(mac_chain("message", "tag"))
        .post(Stmt::Return(Some(Expr::var("tag"))));

    let verify = TemplateMethod::new("verify", JavaType::Boolean)
        .param(JavaType::string(), "payload")
        .param(JavaType::byte_array(), "tag")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "message",
            Expr::call(Expr::var("payload"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "freshTag",
            Expr::null(),
        ))
        .chain(mac_chain("message", "freshTag"))
        .post(Stmt::Return(Some(Expr::static_call(
            names::ARRAYS,
            "equals",
            vec![Expr::var("tag"), Expr::var("freshTag")],
        ))));

    Template::new(PACKAGE, "PasswordMacTokenMinter")
        .method(get_key_method())
        .method(mint)
        .method(verify)
}

/// Use case 26: key transport — export a fresh key's material, rebuild it
/// elsewhere via `SecretKeySpec`, and prove the rebuilt key decrypts what
/// the exporter sealed. Exercises the optional `getEncoded` event that the
/// encryption-only use cases never select.
pub fn key_transport() -> Template {
    let export = TemplateMethod::new("exportFreshKey", JavaType::byte_array())
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "exported",
            Expr::null(),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::KEY_GENERATOR)
                .consider_crysl_rule(names::SECRET_KEY)
                .add_return_object("exported")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("exported"))));

    let import = TemplateMethod::new("importKey", JavaType::class(names::SECRET_KEY))
        .param(JavaType::byte_array(), "keyMaterial")
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "importedKey",
            Expr::null(),
        ))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule(names::SECRET_KEY_SPEC)
                .add_parameter("keyMaterial", "keyMaterial")
                .add_return_object("importedKey")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("importedKey"))));

    let encrypt = TemplateMethod::new("encrypt", JavaType::byte_array())
        .param(JavaType::byte_array(), "plainText")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(encrypt_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("ivBytes"), Expr::var("cipherText")],
        ))));

    let decrypt = TemplateMethod::new("decrypt", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(16)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(16),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(decrypt_chain())
        .post(Stmt::Return(Some(Expr::var("decrypted"))));

    Template::new(PACKAGE, "KeyTransportCodec")
        .method(export)
        .method(import)
        .method(encrypt)
        .method(decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    fn generated(t: &Template) -> cognicrypt_core::Generated {
        generate(
            t,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap()
    }

    #[test]
    fn hmac_token_mints_and_verifies() {
        let g = generated(&hmac_token());
        assert!(
            g.java_source.contains("Arrays.equals(tag, freshTag)"),
            "{}",
            g.java_source
        );
        let mut interp = Interpreter::new(&g.unit);
        let cls = "HmacTokenMinter";
        let key = interp
            .call_static_style(cls, "generateKey", vec![])
            .unwrap();
        let tag = interp
            .call_static_style(
                cls,
                "mint",
                vec![Value::bytes(b"grant:read".to_vec()), key.clone()],
            )
            .unwrap();
        let ok = interp
            .call_static_style(
                cls,
                "verify",
                vec![
                    Value::bytes(b"grant:read".to_vec()),
                    tag.clone(),
                    key.clone(),
                ],
            )
            .unwrap();
        assert!(ok.as_bool().unwrap());
        let forged = interp
            .call_static_style(
                cls,
                "verify",
                vec![Value::bytes(b"grant:write".to_vec()), tag, key],
            )
            .unwrap();
        assert!(!forged.as_bool().unwrap());
    }

    #[test]
    fn hkdf_expansion_links_key_generation_into_the_kdf() {
        let g = generated(&hkdf_subkeys());
        assert!(g.java_source.contains(".getEncoded()"), "{}", g.java_source);
        let mut interp = Interpreter::new(&g.unit);
        let cls = "HkdfSubkeyDeriver";
        let salt = interp
            .call_static_style(cls, "generateSalt", vec![])
            .unwrap();
        let s1 = interp
            .call_static_style(
                cls,
                "expandKey",
                vec![salt.clone(), Value::bytes(b"ctx-a".to_vec())],
            )
            .unwrap();
        // KDF's first-choice output length.
        assert_eq!(s1.as_bytes().unwrap().len(), 32);
        // A fresh master key is generated per call: outputs differ.
        let s2 = interp
            .call_static_style(
                cls,
                "expandKey",
                vec![salt, Value::bytes(b"ctx-a".to_vec())],
            )
            .unwrap();
        assert_ne!(s1.as_bytes().unwrap(), s2.as_bytes().unwrap());
    }

    #[test]
    fn derived_mac_tokens_are_deterministic_in_ikm_and_salt() {
        let g = generated(&derived_mac_token());
        let mut interp = Interpreter::new(&g.unit);
        let cls = "DerivedMacTokenMinter";
        let ikm = Value::bytes(b"master secret".to_vec());
        let salt = interp
            .call_static_style(cls, "generateSalt", vec![])
            .unwrap();
        let k1 = interp
            .call_static_style(cls, "deriveMacKey", vec![ikm.clone(), salt.clone()])
            .unwrap();
        let k2 = interp
            .call_static_style(cls, "deriveMacKey", vec![ikm, salt])
            .unwrap();
        let tag1 = interp
            .call_static_style(cls, "mint", vec![Value::bytes(b"claim".to_vec()), k1])
            .unwrap();
        let ok = interp
            .call_static_style(
                cls,
                "verify",
                vec![Value::bytes(b"claim".to_vec()), tag1, k2],
            )
            .unwrap();
        assert!(ok.as_bool().unwrap());
    }

    #[test]
    fn password_mac_tokens_roundtrip_through_getkey() {
        let g = generated(&password_mac_token());
        let mut interp = Interpreter::new(&g.unit);
        let cls = "PasswordMacTokenMinter";
        let key = interp
            .call_static_style(
                cls,
                "getKey",
                vec![Value::chars("hunter2".chars().collect())],
            )
            .unwrap();
        let tag = interp
            .call_static_style(
                cls,
                "mint",
                vec![Value::Str("session:42".into()), key.clone()],
            )
            .unwrap();
        let ok = interp
            .call_static_style(
                cls,
                "verify",
                vec![Value::Str("session:42".into()), tag.clone(), key.clone()],
            )
            .unwrap();
        assert!(ok.as_bool().unwrap());
        let forged = interp
            .call_static_style(
                cls,
                "verify",
                vec![Value::Str("session:43".into()), tag, key],
            )
            .unwrap();
        assert!(!forged.as_bool().unwrap());
    }

    #[test]
    fn exported_keys_rebuild_and_decrypt() {
        let g = generated(&key_transport());
        assert!(g.java_source.contains(".getEncoded()"), "{}", g.java_source);
        let mut interp = Interpreter::new(&g.unit);
        let cls = "KeyTransportCodec";
        let material = interp
            .call_static_style(cls, "exportFreshKey", vec![])
            .unwrap();
        // The provider's AES keys are 128-bit.
        assert_eq!(material.as_bytes().unwrap().len(), 16);
        let key = interp
            .call_static_style(cls, "importKey", vec![material])
            .unwrap();
        let ct = interp
            .call_static_style(
                cls,
                "encrypt",
                vec![Value::bytes(b"transported".to_vec()), key.clone()],
            )
            .unwrap();
        let pt = interp
            .call_static_style(cls, "decrypt", vec![ct, key])
            .unwrap();
        assert_eq!(pt.as_bytes().unwrap(), b"transported");
    }

    #[test]
    fn token_family_is_sast_clean() {
        for t in [
            hmac_token(),
            hkdf_subkeys(),
            derived_mac_token(),
            password_mac_token(),
            key_transport(),
        ] {
            let g = generated(&t);
            let misuses = sast::analyze_unit(
                &g.unit,
                &rules::open(rules::PackSource::Embedded).unwrap().rules,
                &jca_type_table(),
                sast::AnalyzerOptions::default(),
            );
            assert!(misuses.is_empty(), "{}: {misuses:?}", t.class_name);
        }
    }
}
