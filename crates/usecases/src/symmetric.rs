//! Use case 4: symmetric-key encryption with a freshly generated AES key.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::pbe::{decrypt_chain, encrypt_chain};
use crate::PACKAGE;

/// Chain generating a fresh AES key through `KeyGenerator`.
pub fn generate_key_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::KEY_GENERATOR)
        .add_return_object("key")
        .build()
}

/// The use-case template: `generateKey`, `encrypt`, `decrypt` on byte
/// arrays.
pub fn symmetric_encryption() -> Template {
    let generate_key = TemplateMethod::new("generateKey", JavaType::class(names::SECRET_KEY))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "key",
            Expr::null(),
        ))
        .chain(generate_key_chain())
        .post(Stmt::Return(Some(Expr::var("key"))));

    let encrypt = TemplateMethod::new("encrypt", JavaType::byte_array())
        .param(JavaType::byte_array(), "plainText")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::new_array(JavaType::Byte, Expr::int(16)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(encrypt_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("ivBytes"), Expr::var("cipherText")],
        ))));

    let decrypt = TemplateMethod::new("decrypt", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "ivBytes",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(16)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(16),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(decrypt_chain())
        .post(Stmt::Return(Some(Expr::var("decrypted"))));

    Template::new(PACKAGE, "SecureSymmetricEncryptor")
        .method(generate_key)
        .method(encrypt)
        .method(decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn generated_code_selects_aes_128() {
        let generated = generate(
            &symmetric_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        assert!(src.contains("KeyGenerator.getInstance(\"AES\")"), "{src}");
        assert!(src.contains(".init(128)"), "{src}");
        assert!(
            src.contains("Cipher.getInstance(\"AES/CBC/PKCS5Padding\")"),
            "{src}"
        );
    }

    #[test]
    fn symmetric_roundtrip_end_to_end() {
        let generated = generate(
            &symmetric_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let key = interp
            .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
            .unwrap();
        let ct = interp
            .call_static_style(
                "SecureSymmetricEncryptor",
                "encrypt",
                vec![Value::bytes(b"payload".to_vec()), key.clone()],
            )
            .unwrap();
        let pt = interp
            .call_static_style("SecureSymmetricEncryptor", "decrypt", vec![ct, key])
            .unwrap();
        assert_eq!(pt.as_bytes().unwrap(), b"payload");
    }

    #[test]
    fn distinct_keys_per_call() {
        let generated = generate(
            &symmetric_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let k1 = interp
            .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
            .unwrap();
        let k2 = interp
            .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
            .unwrap();
        let e1 = interp::Value::as_object(&k1).unwrap();
        let e2 = interp::Value::as_object(&k2).unwrap();
        let b1 = match &e1.borrow().state {
            interp::NativeState::Key(k) => k.encoded(),
            _ => panic!("not a key"),
        };
        let b2 = match &e2.borrow().state {
            interp::NativeState::Key(k) => k.encoded(),
            _ => panic!("not a key"),
        };
        assert_ne!(b1, b2);
    }

    #[test]
    fn generated_symmetric_code_is_sast_clean() {
        let generated = generate(
            &symmetric_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
