//! Extension use case: authenticated encryption with AES-GCM.
//!
//! The paper's future work proposes implementing more use cases on the
//! same engine. This module does exactly that: a template steering the
//! Cipher rule towards `AES/GCM/NoPadding` through an explicit
//! transformation binding, exercising the `GCMParameterSpec` rule that
//! the eleven Table 1 templates never touch.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::symmetric::generate_key_chain;
use crate::PACKAGE;

/// GCM encryption chain: randomized nonce, `GCMParameterSpec`, cipher
/// with the template-pinned transformation.
pub fn gcm_encrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SECURE_RANDOM)
        .add_parameter("nonce", "out")
        .consider_crysl_rule(names::GCM_PARAMETER_SPEC)
        .add_parameter("nonce", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("gcmTransformation", "transformation")
        .add_parameter("key", "key")
        .add_parameter("plainText", "plainText")
        .add_return_object("cipherText")
        .build()
}

/// GCM decryption chain.
pub fn gcm_decrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::GCM_PARAMETER_SPEC)
        .add_parameter("nonce", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("gcmTransformation", "transformation")
        .add_parameter("mode", "encmode")
        .add_parameter("key", "key")
        .add_parameter("encrypted", "plainText")
        .add_return_object("decrypted")
        .build()
}

/// The authenticated-encryption template: `generateKey`, `seal`, `open`.
pub fn authenticated_encryption() -> Template {
    let generate_key = TemplateMethod::new("generateKey", JavaType::class(names::SECRET_KEY))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "key",
            Expr::null(),
        ))
        .chain(generate_key_chain())
        .post(Stmt::Return(Some(Expr::var("key"))));

    let seal = TemplateMethod::new("seal", JavaType::byte_array())
        .param(JavaType::byte_array(), "plainText")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::string(),
            "gcmTransformation",
            Expr::str("AES/GCM/NoPadding"),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::new_array(JavaType::Byte, Expr::int(12)),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "cipherText",
            Expr::null(),
        ))
        .chain(gcm_encrypt_chain())
        .post(Stmt::Return(Some(Expr::static_call(
            names::BYTE_ARRAYS,
            "concat",
            vec![Expr::var("nonce"), Expr::var("cipherText")],
        ))));

    let open = TemplateMethod::new("open", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .param(JavaType::class(names::SECRET_KEY), "key")
        .pre(Stmt::decl_init(
            JavaType::string(),
            "gcmTransformation",
            Expr::str("AES/GCM/NoPadding"),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "nonce",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![Expr::var("data"), Expr::int(0), Expr::int(12)],
            ),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "encrypted",
            Expr::static_call(
                names::BYTE_ARRAYS,
                "slice",
                vec![
                    Expr::var("data"),
                    Expr::int(12),
                    Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var("data")]),
                ],
            ),
        ))
        .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "decrypted",
            Expr::null(),
        ))
        .chain(gcm_decrypt_chain())
        .post(Stmt::Return(Some(Expr::var("decrypted"))));

    Template::new(PACKAGE, "AuthenticatedEncryptor")
        .method(generate_key)
        .method(seal)
        .method(open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn generated_code_uses_gcm_with_full_tag() {
        let generated = generate(
            &authenticated_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let src = &generated.java_source;
        assert!(
            src.contains("Cipher.getInstance(gcmTransformation)"),
            "{src}"
        );
        // GCMParameterSpec's tag length comes from the rule constraint.
        assert!(src.contains("new GCMParameterSpec(128, nonce)"), "{src}");
    }

    #[test]
    fn seal_open_roundtrip_and_tamper_detection() {
        let generated = generate(
            &authenticated_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let cls = "AuthenticatedEncryptor";
        let key = interp
            .call_static_style(cls, "generateKey", vec![])
            .unwrap();
        let sealed = interp
            .call_static_style(
                cls,
                "seal",
                vec![Value::bytes(b"aead payload".to_vec()), key.clone()],
            )
            .unwrap();
        let opened = interp
            .call_static_style(cls, "open", vec![sealed.clone(), key.clone()])
            .unwrap();
        assert_eq!(opened.as_bytes().unwrap(), b"aead payload");

        // Flip a ciphertext byte: the GCM tag check must fail.
        let mut tampered = sealed.as_bytes().unwrap();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        let err = interp
            .call_static_style(cls, "open", vec![Value::bytes(tampered), key])
            .unwrap_err();
        assert!(err.message.contains("tag"), "{err}");
    }

    #[test]
    fn generated_gcm_code_is_sast_clean() {
        let generated = generate(
            &authenticated_encryption(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
