//! Use case 11: hashing of strings — the smallest template, one rule.

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::PACKAGE;

/// Chain hashing a byte array with the rule-selected digest.
pub fn hash_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::MESSAGE_DIGEST)
        .add_parameter("dataBytes", "input")
        .add_return_object("digest")
        .build()
}

/// The use-case template: `hash(String) -> byte[]`.
pub fn hashing_strings() -> Template {
    let hash = TemplateMethod::new("hash", JavaType::byte_array())
        .param(JavaType::string(), "data")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "dataBytes",
            Expr::call(Expr::var("data"), "getBytes", vec![]),
        ))
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "digest",
            Expr::null(),
        ))
        .chain(hash_chain())
        .post(Stmt::Return(Some(Expr::var("digest"))));

    Template::new(PACKAGE, "SecureHasher").method(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn generated_code_uses_sha256() {
        let generated = generate(
            &hashing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        assert!(generated
            .java_source
            .contains("MessageDigest.getInstance(\"SHA-256\")"));
    }

    #[test]
    fn hash_matches_reference_sha256() {
        let generated = generate(
            &hashing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let out = interp
            .call_static_style("SecureHasher", "hash", vec![Value::Str("abc".into())])
            .unwrap();
        // NIST vector for SHA-256("abc").
        let expected: Vec<u8> = vec![
            0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40, 0xde, 0x5d, 0xae,
            0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61,
            0xf2, 0x00, 0x15, 0xad,
        ];
        assert_eq!(out.as_bytes().unwrap(), expected);
    }

    #[test]
    fn generated_hashing_code_is_sast_clean() {
        let generated = generate(
            &hashing_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
