//! Use cases 1–3: password-based encryption on files, strings and byte
//! arrays.
//!
//! All three share the same fluent-API chains — the paper's Figure 4 key
//! derivation plus an encrypt/decrypt pair — and differ only in the glue
//! code that moves the data (file I/O, `String.getBytes`, or nothing).

use cognicrypt_core::template::{CrySlCodeGenerator, GeneratorChain, Template, TemplateMethod};
use javamodel::ast::{Expr, JavaType, Stmt};
use javamodel::jca::names;

use crate::PACKAGE;

/// The paper's Figure 4 chain: derive an AES key from a password.
pub fn get_key_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SECURE_RANDOM)
        .add_parameter("salt", "out")
        .consider_crysl_rule(names::PBE_KEY_SPEC)
        .add_parameter("pwd", "password")
        .consider_crysl_rule(names::SECRET_KEY_FACTORY)
        .consider_crysl_rule(names::SECRET_KEY)
        .consider_crysl_rule(names::SECRET_KEY_SPEC)
        .add_return_object("encryptionKey")
        .build()
}

/// `getKey(char[] pwd) -> SecretKey`, the paper's Figure 4 template method.
pub fn get_key_method() -> TemplateMethod {
    TemplateMethod::new("getKey", JavaType::class(names::SECRET_KEY))
        .param(JavaType::char_array(), "pwd")
        .pre(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            Expr::new_array(JavaType::Byte, Expr::int(32)),
        ))
        .pre(Stmt::decl_init(
            JavaType::class(names::SECRET_KEY),
            "encryptionKey",
            Expr::null(),
        ))
        .chain(get_key_chain())
        .post(Stmt::Return(Some(Expr::var("encryptionKey"))))
}

/// The symmetric-encryption chain shared by every encrypt wrapper:
/// randomize an IV, wrap it in an `IvParameterSpec`, run the cipher.
pub fn encrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::SECURE_RANDOM)
        .add_parameter("ivBytes", "out")
        .consider_crysl_rule(names::IV_PARAMETER_SPEC)
        .add_parameter("ivBytes", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("key", "key")
        .add_parameter("plainText", "plainText")
        .add_return_object("cipherText")
        .build()
}

/// The symmetric-decryption chain shared by every decrypt wrapper: rebuild
/// the `IvParameterSpec` from the transmitted IV and run the cipher in
/// `DECRYPT_MODE` (the template binds `mode = 2`).
pub fn decrypt_chain() -> GeneratorChain {
    CrySlCodeGenerator::get_instance()
        .consider_crysl_rule(names::IV_PARAMETER_SPEC)
        .add_parameter("ivBytes", "iv")
        .consider_crysl_rule(names::CIPHER)
        .add_parameter("mode", "encmode")
        .add_parameter("key", "key")
        .add_parameter("encrypted", "plainText")
        .add_return_object("decrypted")
        .build()
}

/// Shared glue: declarations every encrypt wrapper needs before the chain.
fn encrypt_pre(m: TemplateMethod) -> TemplateMethod {
    m.pre(Stmt::decl_init(
        JavaType::byte_array(),
        "ivBytes",
        Expr::new_array(JavaType::Byte, Expr::int(16)),
    ))
    .pre(Stmt::decl_init(
        JavaType::byte_array(),
        "cipherText",
        Expr::null(),
    ))
}

/// Shared glue for decrypt wrappers operating on `data = iv || ciphertext`.
fn decrypt_pre(m: TemplateMethod, data_var: &str) -> TemplateMethod {
    m.pre(Stmt::decl_init(
        JavaType::byte_array(),
        "ivBytes",
        Expr::static_call(
            names::BYTE_ARRAYS,
            "slice",
            vec![Expr::var(data_var), Expr::int(0), Expr::int(16)],
        ),
    ))
    .pre(Stmt::decl_init(
        JavaType::byte_array(),
        "encrypted",
        Expr::static_call(
            names::BYTE_ARRAYS,
            "slice",
            vec![
                Expr::var(data_var),
                Expr::int(16),
                Expr::static_call(names::BYTE_ARRAYS, "length", vec![Expr::var(data_var)]),
            ],
        ),
    ))
    .pre(Stmt::decl_init(JavaType::Int, "mode", Expr::int(2)))
    .pre(Stmt::decl_init(
        JavaType::byte_array(),
        "decrypted",
        Expr::null(),
    ))
}

/// Use case 3: PBE on byte arrays.
pub fn pbe_byte_arrays() -> Template {
    let encrypt = encrypt_pre(
        TemplateMethod::new("encrypt", JavaType::byte_array())
            .param(JavaType::byte_array(), "plainText")
            .param(JavaType::class(names::SECRET_KEY), "key"),
    )
    .chain(encrypt_chain())
    .post(Stmt::Return(Some(Expr::static_call(
        names::BYTE_ARRAYS,
        "concat",
        vec![Expr::var("ivBytes"), Expr::var("cipherText")],
    ))));

    let decrypt = decrypt_pre(
        TemplateMethod::new("decrypt", JavaType::byte_array())
            .param(JavaType::byte_array(), "data")
            .param(JavaType::class(names::SECRET_KEY), "key"),
        "data",
    )
    .chain(decrypt_chain())
    .post(Stmt::Return(Some(Expr::var("decrypted"))));

    Template::new(PACKAGE, "SecureByteArrayEncryptor")
        .method(get_key_method())
        .method(encrypt)
        .method(decrypt)
}

/// Use case 2: PBE on strings.
pub fn pbe_strings() -> Template {
    let encrypt = encrypt_pre(
        TemplateMethod::new("encrypt", JavaType::byte_array())
            .param(JavaType::string(), "data")
            .param(JavaType::class(names::SECRET_KEY), "key")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "plainText",
                Expr::call(Expr::var("data"), "getBytes", vec![]),
            )),
    )
    .chain(encrypt_chain())
    .post(Stmt::Return(Some(Expr::static_call(
        names::BYTE_ARRAYS,
        "concat",
        vec![Expr::var("ivBytes"), Expr::var("cipherText")],
    ))));

    let decrypt = decrypt_pre(
        TemplateMethod::new("decrypt", JavaType::string())
            .param(JavaType::byte_array(), "data")
            .param(JavaType::class(names::SECRET_KEY), "key"),
        "data",
    )
    .chain(decrypt_chain())
    .post(Stmt::Return(Some(Expr::new_object(
        names::STRING,
        vec![Expr::var("decrypted")],
    ))));

    Template::new(PACKAGE, "SecureStringEncryptor")
        .method(get_key_method())
        .method(encrypt)
        .method(decrypt)
}

/// Use case 1: PBE on files. Reads the plaintext from the in-memory file
/// system, writes `iv || ciphertext` back.
pub fn pbe_files() -> Template {
    let encrypt = encrypt_pre(
        TemplateMethod::new("encryptFile", JavaType::Void)
            .param(JavaType::string(), "inPath")
            .param(JavaType::string(), "outPath")
            .param(JavaType::class(names::SECRET_KEY), "key")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "plainText",
                Expr::static_call(names::FILES, "readAllBytes", vec![Expr::var("inPath")]),
            )),
    )
    .chain(encrypt_chain())
    .post(Stmt::Expr(Expr::static_call(
        names::FILES,
        "write",
        vec![
            Expr::var("outPath"),
            Expr::static_call(
                names::BYTE_ARRAYS,
                "concat",
                vec![Expr::var("ivBytes"), Expr::var("cipherText")],
            ),
        ],
    )));

    let decrypt = decrypt_pre(
        TemplateMethod::new("decryptFile", JavaType::Void)
            .param(JavaType::string(), "inPath")
            .param(JavaType::string(), "outPath")
            .param(JavaType::class(names::SECRET_KEY), "key")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "data",
                Expr::static_call(names::FILES, "readAllBytes", vec![Expr::var("inPath")]),
            )),
        "data",
    )
    .chain(decrypt_chain())
    .post(Stmt::Expr(Expr::static_call(
        names::FILES,
        "write",
        vec![Expr::var("outPath"), Expr::var("decrypted")],
    )));

    Template::new(PACKAGE, "SecureFileEncryptor")
        .method(get_key_method())
        .method(encrypt)
        .method(decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use interp::{Interpreter, Value};
    use javamodel::jca::jca_type_table;

    #[test]
    fn pbe_bytes_roundtrip_end_to_end() {
        let generated = generate(
            &pbe_byte_arrays(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .expect("generation succeeds");
        let mut interp = Interpreter::new(&generated.unit);
        let pwd: Vec<char> = "correct horse".chars().collect();
        let key = interp
            .call_static_style(
                "SecureByteArrayEncryptor",
                "getKey",
                vec![Value::chars(pwd)],
            )
            .expect("key derivation runs");
        let ct = interp
            .call_static_style(
                "SecureByteArrayEncryptor",
                "encrypt",
                vec![Value::bytes(b"the quick brown fox".to_vec()), key.clone()],
            )
            .expect("encryption runs");
        assert_ne!(ct.as_bytes().unwrap(), b"the quick brown fox");
        let pt = interp
            .call_static_style("SecureByteArrayEncryptor", "decrypt", vec![ct, key])
            .expect("decryption runs");
        assert_eq!(pt.as_bytes().unwrap(), b"the quick brown fox");
    }

    #[test]
    fn pbe_strings_roundtrip_end_to_end() {
        let generated = generate(
            &pbe_strings(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let key = interp
            .call_static_style(
                "SecureStringEncryptor",
                "getKey",
                vec![Value::chars("hunter2".chars().collect())],
            )
            .unwrap();
        let ct = interp
            .call_static_style(
                "SecureStringEncryptor",
                "encrypt",
                vec![Value::Str("attack at dawn".into()), key.clone()],
            )
            .unwrap();
        let pt = interp
            .call_static_style("SecureStringEncryptor", "decrypt", vec![ct, key])
            .unwrap();
        assert_eq!(pt.as_str().unwrap(), "attack at dawn");
    }

    #[test]
    fn pbe_files_roundtrip_end_to_end() {
        let generated = generate(
            &pbe_files(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        interp.put_file("plain.txt", b"file contents".to_vec());
        let key = interp
            .call_static_style(
                "SecureFileEncryptor",
                "getKey",
                vec![Value::chars("pw".chars().collect())],
            )
            .unwrap();
        interp
            .call_static_style(
                "SecureFileEncryptor",
                "encryptFile",
                vec![
                    Value::Str("plain.txt".into()),
                    Value::Str("cipher.bin".into()),
                    key.clone(),
                ],
            )
            .unwrap();
        assert_ne!(interp.file("cipher.bin").unwrap(), b"file contents");
        interp
            .call_static_style(
                "SecureFileEncryptor",
                "decryptFile",
                vec![
                    Value::Str("cipher.bin".into()),
                    Value::Str("roundtrip.txt".into()),
                    key,
                ],
            )
            .unwrap();
        assert_eq!(interp.file("roundtrip.txt").unwrap(), b"file contents");
    }

    #[test]
    fn wrong_password_fails_to_decrypt() {
        let generated = generate(
            &pbe_byte_arrays(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let mut interp = Interpreter::new(&generated.unit);
        let key1 = interp
            .call_static_style(
                "SecureByteArrayEncryptor",
                "getKey",
                vec![Value::chars("right".chars().collect())],
            )
            .unwrap();
        let key2 = interp
            .call_static_style(
                "SecureByteArrayEncryptor",
                "getKey",
                vec![Value::chars("wrong".chars().collect())],
            )
            .unwrap();
        let ct = interp
            .call_static_style(
                "SecureByteArrayEncryptor",
                "encrypt",
                vec![Value::bytes(b"sixteen byte msg".to_vec()), key1],
            )
            .unwrap();
        // Wrong key: padding failure or garbled output.
        if let Ok(pt) =
            interp.call_static_style("SecureByteArrayEncryptor", "decrypt", vec![ct, key2])
        {
            assert_ne!(pt.as_bytes().unwrap(), b"sixteen byte msg")
        }
    }

    #[test]
    fn generated_pbe_code_is_sast_clean() {
        let generated = generate(
            &pbe_files(),
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap();
        let misuses = sast::analyze_unit(
            &generated.unit,
            &rules::open(rules::PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            sast::AnalyzerOptions::default(),
        );
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}
