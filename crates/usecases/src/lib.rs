//! The eleven common cryptographic use cases of the paper's Table 1,
//! implemented as CogniCryptGEN code templates.
//!
//! | # | Use case | Module |
//! |---|----------|--------|
//! | 1 | PBE on files | [`pbe`] |
//! | 2 | PBE on strings | [`pbe`] |
//! | 3 | PBE on byte arrays | [`pbe`] |
//! | 4 | Symmetric-key encryption | [`symmetric`] |
//! | 5 | Hybrid file encryption | [`hybrid`] |
//! | 6 | Hybrid string encryption | [`hybrid`] |
//! | 7 | Hybrid byte-array encryption | [`hybrid`] |
//! | 8 | Asymmetric string encryption | [`asymmetric`] |
//! | 9 | Secure user-password storage | [`password`] |
//! | 10 | Digital signing of strings | [`signing`] |
//! | 11 | Hashing of strings | [`hashing`] |
//!
//! Use cases 1–3 share the same fluent-API chains and differ only in
//! wrapper glue, as the paper observes; the same holds for 5–7.

pub mod asymmetric;
pub mod gcm;
pub mod hashing;
pub mod hybrid;
pub mod password;
pub mod pbe;
pub mod signing;
pub mod symmetric;

use cognicrypt_core::Template;

/// Package all use-case templates generate into.
pub const PACKAGE: &str = "de.crypto.cognicrypt";

/// A catalogued use case: its Table 1 row, name, sources and template.
#[derive(Debug, Clone)]
pub struct UseCase {
    /// Row number in the paper's Table 1.
    pub id: u8,
    /// Human-readable name, as in Table 1.
    pub name: &'static str,
    /// Source citations from Table 1 (`[21]` = CogniCrypt, `[27]` =
    /// CryptoExamples, `[29]` = Nadi et al.).
    pub sources: &'static str,
    /// The code template.
    pub template: Template,
}

/// All eleven use cases, in Table 1 order.
pub fn all_use_cases() -> Vec<UseCase> {
    vec![
        UseCase {
            id: 1,
            name: "PBE on Files",
            sources: "[21]",
            template: pbe::pbe_files(),
        },
        UseCase {
            id: 2,
            name: "PBE on Strings",
            sources: "[21], [27]",
            template: pbe::pbe_strings(),
        },
        UseCase {
            id: 3,
            name: "PBE on Byte-Arrays",
            sources: "[21]",
            template: pbe::pbe_byte_arrays(),
        },
        UseCase {
            id: 4,
            name: "Symmetric-Key Encryption",
            sources: "[27], [29]",
            template: symmetric::symmetric_encryption(),
        },
        UseCase {
            id: 5,
            name: "Hybrid File Encryption",
            sources: "[21]",
            template: hybrid::hybrid_files(),
        },
        UseCase {
            id: 6,
            name: "Hybrid String Encryption",
            sources: "[21]",
            template: hybrid::hybrid_strings(),
        },
        UseCase {
            id: 7,
            name: "Hybrid Byte-Array Encryption",
            sources: "[21]",
            template: hybrid::hybrid_byte_arrays(),
        },
        UseCase {
            id: 8,
            name: "Asymmetric String Encryption",
            sources: "[27]",
            template: asymmetric::asymmetric_strings(),
        },
        UseCase {
            id: 9,
            name: "Secure User-Password Storage",
            sources: "[21], [27]",
            template: password::password_storage(),
        },
        UseCase {
            id: 10,
            name: "Digital Signing of Strings",
            sources: "[21], [27], [29]",
            template: signing::signing_strings(),
        },
        UseCase {
            id: 11,
            name: "Hashing of Strings",
            sources: "[27]",
            template: hashing::hashing_strings(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use javamodel::jca::jca_type_table;

    #[test]
    fn catalog_has_eleven_entries_in_order() {
        let ucs = all_use_cases();
        assert_eq!(ucs.len(), 11);
        for (i, uc) in ucs.iter().enumerate() {
            assert_eq!(uc.id as usize, i + 1);
        }
    }

    #[test]
    fn every_use_case_generates_without_fallback() {
        let rules = rules::open(rules::PackSource::Embedded).unwrap().rules;
        let table = jca_type_table();
        for uc in all_use_cases() {
            let generated = generate(&uc.template, &rules, &table)
                .unwrap_or_else(|e| panic!("use case {} ({}): {e}", uc.id, uc.name));
            assert!(
                generated.hoisted.is_empty(),
                "use case {} needed the fallback: {:?}",
                uc.id,
                generated.hoisted
            );
        }
    }

    #[test]
    fn hybrid_variants_share_chains_but_not_glue() {
        // Paper §5.1: "The same is true for use cases 5–7."
        let h5 = hybrid::hybrid_files();
        let h6 = hybrid::hybrid_strings();
        let h7 = hybrid::hybrid_byte_arrays();
        let rules_of = |t: &Template| -> Vec<Vec<String>> {
            t.methods
                .iter()
                .filter_map(|m| m.chain.as_ref())
                .map(|c| c.entries.iter().map(|e| e.rule.clone()).collect())
                .collect()
        };
        assert_eq!(rules_of(&h5), rules_of(&h6));
        assert_eq!(rules_of(&h6), rules_of(&h7));
        assert_ne!(h5, h6);
        assert_ne!(h6, h7);
    }

    #[test]
    fn pbe_variants_share_chains_but_not_glue() {
        // Paper §5.1: use cases 1–3 have the exact same fluent-API calls.
        let c1 = pbe::pbe_files();
        let c2 = pbe::pbe_strings();
        let c3 = pbe::pbe_byte_arrays();
        let chains =
            |t: &Template| -> Vec<_> { t.methods.iter().filter_map(|m| m.chain.clone()).collect() };
        let (a, b, c) = (chains(&c1), chains(&c2), chains(&c3));
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            let rules_of = |ch: &cognicrypt_core::template::GeneratorChain| {
                ch.entries
                    .iter()
                    .map(|e| e.rule.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(rules_of(x), rules_of(y));
            assert_eq!(rules_of(y), rules_of(z));
        }
        assert_ne!(c1, c2);
    }
}
