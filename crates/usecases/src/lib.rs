//! The cryptographic use-case catalogue: the paper's Table 1 (rows 1–11)
//! plus the scale-out families the same engine generates.
//!
//! | # | Use case | Module |
//! |---|----------|--------|
//! | 1 | PBE on files | [`pbe`] |
//! | 2 | PBE on strings | [`pbe`] |
//! | 3 | PBE on byte arrays | [`pbe`] |
//! | 4 | Symmetric-key encryption | [`symmetric`] |
//! | 5 | Hybrid file encryption | [`hybrid`] |
//! | 6 | Hybrid string encryption | [`hybrid`] |
//! | 7 | Hybrid byte-array encryption | [`hybrid`] |
//! | 8 | Asymmetric string encryption | [`asymmetric`] |
//! | 9 | Secure user-password storage | [`password`] |
//! | 10 | Digital signing of strings | [`signing`] |
//! | 11 | Hashing of strings | [`hashing`] |
//! | 12 | Authenticated encryption (AES-GCM) | [`gcm`] |
//! | 13 | Deterministic AEAD (AES-GCM-SIV) | [`aead`] |
//! | 14 | ChaCha20-Poly1305 on byte arrays | [`aead`] |
//! | 15 | ChaCha20-Poly1305 on strings | [`aead`] |
//! | 16 | AES-CTR stream encryption | [`aead`] |
//! | 17 | DH shared-secret derivation | [`agreement`] |
//! | 18 | ECDH shared-secret derivation | [`agreement`] |
//! | 19 | DH session encryption (AES-GCM) | [`agreement`] |
//! | 20 | ECDH session encryption (ChaCha20-Poly1305) | [`agreement`] |
//! | 21 | MAC under an agreed key | [`agreement`] |
//! | 22 | HMAC token minting | [`token`] |
//! | 23 | HKDF subkey expansion | [`token`] |
//! | 24 | HKDF-derived MAC tokens | [`token`] |
//! | 25 | Password-derived MAC tokens | [`token`] |
//! | 26 | Key export/import transport | [`token`] |
//!
//! Use cases 1–3 share the same fluent-API chains and differ only in
//! wrapper glue, as the paper observes; the same holds for 5–7 and
//! for 14–15.

pub mod aead;
pub mod agreement;
pub mod asymmetric;
pub mod gcm;
pub mod hashing;
pub mod hybrid;
pub mod password;
pub mod pbe;
pub mod signing;
pub mod symmetric;
pub mod token;

use cognicrypt_core::Template;

/// Package all use-case templates generate into.
pub const PACKAGE: &str = "de.crypto.cognicrypt";

/// A catalogued use case: its Table 1 row, name, sources and template.
#[derive(Debug, Clone)]
pub struct UseCase {
    /// Row number in the paper's Table 1.
    pub id: u8,
    /// Human-readable name, as in Table 1.
    pub name: &'static str,
    /// Source citations from Table 1 (`[21]` = CogniCrypt, `[27]` =
    /// CryptoExamples, `[29]` = Nadi et al.).
    pub sources: &'static str,
    /// The code template.
    pub template: Template,
}

/// The full catalogue in id order: Table 1 rows 1–11, then the AEAD
/// (12–16), key-agreement (17–21) and token (22–26) families.
pub fn all_use_cases() -> Vec<UseCase> {
    vec![
        UseCase {
            id: 1,
            name: "PBE on Files",
            sources: "[21]",
            template: pbe::pbe_files(),
        },
        UseCase {
            id: 2,
            name: "PBE on Strings",
            sources: "[21], [27]",
            template: pbe::pbe_strings(),
        },
        UseCase {
            id: 3,
            name: "PBE on Byte-Arrays",
            sources: "[21]",
            template: pbe::pbe_byte_arrays(),
        },
        UseCase {
            id: 4,
            name: "Symmetric-Key Encryption",
            sources: "[27], [29]",
            template: symmetric::symmetric_encryption(),
        },
        UseCase {
            id: 5,
            name: "Hybrid File Encryption",
            sources: "[21]",
            template: hybrid::hybrid_files(),
        },
        UseCase {
            id: 6,
            name: "Hybrid String Encryption",
            sources: "[21]",
            template: hybrid::hybrid_strings(),
        },
        UseCase {
            id: 7,
            name: "Hybrid Byte-Array Encryption",
            sources: "[21]",
            template: hybrid::hybrid_byte_arrays(),
        },
        UseCase {
            id: 8,
            name: "Asymmetric String Encryption",
            sources: "[27]",
            template: asymmetric::asymmetric_strings(),
        },
        UseCase {
            id: 9,
            name: "Secure User-Password Storage",
            sources: "[21], [27]",
            template: password::password_storage(),
        },
        UseCase {
            id: 10,
            name: "Digital Signing of Strings",
            sources: "[21], [27], [29]",
            template: signing::signing_strings(),
        },
        UseCase {
            id: 11,
            name: "Hashing of Strings",
            sources: "[27]",
            template: hashing::hashing_strings(),
        },
        UseCase {
            id: 12,
            name: "Authenticated Encryption (AES-GCM)",
            sources: "ext",
            template: gcm::authenticated_encryption(),
        },
        UseCase {
            id: 13,
            name: "Deterministic AEAD (AES-GCM-SIV)",
            sources: "ext",
            template: aead::gcm_siv_encryption(),
        },
        UseCase {
            id: 14,
            name: "ChaCha20-Poly1305 on Byte-Arrays",
            sources: "ext",
            template: aead::chacha_poly_encryption(),
        },
        UseCase {
            id: 15,
            name: "ChaCha20-Poly1305 on Strings",
            sources: "ext",
            template: aead::chacha_poly_strings(),
        },
        UseCase {
            id: 16,
            name: "AES-CTR Stream Encryption",
            sources: "ext",
            template: aead::ctr_encryption(),
        },
        UseCase {
            id: 17,
            name: "DH Shared-Secret Derivation",
            sources: "ext",
            template: agreement::dh_agreement(),
        },
        UseCase {
            id: 18,
            name: "ECDH Shared-Secret Derivation",
            sources: "ext",
            template: agreement::ecdh_agreement(),
        },
        UseCase {
            id: 19,
            name: "DH Session Encryption (AES-GCM)",
            sources: "ext",
            template: agreement::dh_session_encryption(),
        },
        UseCase {
            id: 20,
            name: "ECDH Session Encryption (ChaCha20-Poly1305)",
            sources: "ext",
            template: agreement::ecdh_session_encryption(),
        },
        UseCase {
            id: 21,
            name: "MAC under an Agreed Key",
            sources: "ext",
            template: agreement::agreed_mac(),
        },
        UseCase {
            id: 22,
            name: "HMAC Token Minting",
            sources: "ext",
            template: token::hmac_token(),
        },
        UseCase {
            id: 23,
            name: "HKDF Subkey Expansion",
            sources: "ext",
            template: token::hkdf_subkeys(),
        },
        UseCase {
            id: 24,
            name: "HKDF-Derived MAC Tokens",
            sources: "ext",
            template: token::derived_mac_token(),
        },
        UseCase {
            id: 25,
            name: "Password-Derived MAC Tokens",
            sources: "ext",
            template: token::password_mac_token(),
        },
        UseCase {
            id: 26,
            name: "Key Export/Import Transport",
            sources: "ext",
            template: token::key_transport(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cognicrypt_core::generate;
    use javamodel::jca::jca_type_table;

    #[test]
    fn catalog_has_at_least_twenty_five_entries_in_order() {
        let ucs = all_use_cases();
        assert!(ucs.len() >= 25, "only {} use cases", ucs.len());
        for (i, uc) in ucs.iter().enumerate() {
            assert_eq!(uc.id as usize, i + 1);
        }
        // Class names are unique: they double as generation targets.
        let mut names: Vec<_> = ucs.iter().map(|u| u.template.class_name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ucs.len());
    }

    #[test]
    fn every_use_case_generates_without_fallback() {
        let rules = rules::open(rules::PackSource::Embedded).unwrap().rules;
        let table = jca_type_table();
        for uc in all_use_cases() {
            let generated = generate(&uc.template, &rules, &table)
                .unwrap_or_else(|e| panic!("use case {} ({}): {e}", uc.id, uc.name));
            assert!(
                generated.hoisted.is_empty(),
                "use case {} needed the fallback: {:?}",
                uc.id,
                generated.hoisted
            );
        }
    }

    #[test]
    fn hybrid_variants_share_chains_but_not_glue() {
        // Paper §5.1: "The same is true for use cases 5–7."
        let h5 = hybrid::hybrid_files();
        let h6 = hybrid::hybrid_strings();
        let h7 = hybrid::hybrid_byte_arrays();
        let rules_of = |t: &Template| -> Vec<Vec<String>> {
            t.methods
                .iter()
                .filter_map(|m| m.chain.as_ref())
                .map(|c| c.entries.iter().map(|e| e.rule.clone()).collect())
                .collect()
        };
        assert_eq!(rules_of(&h5), rules_of(&h6));
        assert_eq!(rules_of(&h6), rules_of(&h7));
        assert_ne!(h5, h6);
        assert_ne!(h6, h7);
    }

    #[test]
    fn pbe_variants_share_chains_but_not_glue() {
        // Paper §5.1: use cases 1–3 have the exact same fluent-API calls.
        let c1 = pbe::pbe_files();
        let c2 = pbe::pbe_strings();
        let c3 = pbe::pbe_byte_arrays();
        let chains =
            |t: &Template| -> Vec<_> { t.methods.iter().filter_map(|m| m.chain.clone()).collect() };
        let (a, b, c) = (chains(&c1), chains(&c2), chains(&c3));
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            let rules_of = |ch: &cognicrypt_core::template::GeneratorChain| {
                ch.entries
                    .iter()
                    .map(|e| e.rule.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(rules_of(x), rules_of(y));
            assert_eq!(rules_of(y), rules_of(z));
        }
        assert_ne!(c1, c2);
    }
}
