//! Property-based round trips for the CrySL language: randomly generated
//! rule ASTs survive print → parse → validate unchanged.

use proptest::prelude::*;

use crysl::ast::*;
use crysl::printer::print_rule;
use crysl::{parse_rule, Rule};

fn ident() -> impl Strategy<Value = String> {
    // Identifiers that are not section keywords or reserved words.
    "[a-z][a-zA-Z0-9]{0,6}".prop_filter("reserved", |s| {
        !matches!(
            s.as_str(),
            "in" | "after" | "this" | "true" | "false" | "instanceof" | "neverTypeOf"
        )
    })
}

fn type_ref() -> impl Strategy<Value = TypeRef> {
    prop_oneof![
        Just(TypeRef::scalar("int")),
        Just(TypeRef::scalar("boolean")),
        Just(TypeRef::array("byte")),
        Just(TypeRef::array("char")),
        Just(TypeRef::scalar("java.lang.String")),
        Just(TypeRef::scalar("java.security.Key")),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i.into())),
        "[A-Za-z0-9/_-]{1,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

#[derive(Debug, Clone)]
struct RuleSkeleton {
    objects: Vec<(TypeRef, String)>,
    events: Vec<(String, String, Vec<usize>)>, // label, method, object indices
    use_order: bool,
    cmp_constraints: Vec<(usize, CmpOp, i64)>,
    in_constraints: Vec<(usize, Vec<Literal>)>,
    requires: Vec<(String, usize)>,
    ensures: Vec<(String, Option<usize>)>, // predicate, after event index
}

fn skeleton() -> impl Strategy<Value = RuleSkeleton> {
    (
        proptest::collection::vec((type_ref(), ident()), 1..5),
        proptest::collection::vec((ident(), ident()), 1..5),
        any::<bool>(),
        proptest::collection::vec((0usize..4, cmp_op(), -1000i64..1000), 0..3),
        proptest::collection::vec((0usize..4, proptest::collection::vec(literal(), 1..4)), 0..2),
        proptest::collection::vec((ident(), 0usize..4), 0..2),
        proptest::collection::vec((ident(), proptest::option::of(0usize..4)), 0..2),
    )
        .prop_map(
            |(objects, raw_events, use_order, cmp, ins, requires, ensures)| {
                // Deduplicate object and event names.
                let mut seen = std::collections::HashSet::new();
                let objects: Vec<(TypeRef, String)> = objects
                    .into_iter()
                    .filter(|(_, n)| seen.insert(n.clone()))
                    .collect();
                let mut seen_labels = std::collections::HashSet::new();
                let events: Vec<(String, String, Vec<usize>)> = raw_events
                    .into_iter()
                    .filter(|(l, _)| seen_labels.insert(l.clone()))
                    .enumerate()
                    .map(|(i, (label, method))| {
                        let params = if i % 2 == 0 && !objects.is_empty() {
                            vec![i % objects.len()]
                        } else {
                            vec![]
                        };
                        (label, method, params)
                    })
                    .collect();
                RuleSkeleton {
                    objects,
                    events,
                    use_order,
                    cmp_constraints: cmp,
                    in_constraints: ins,
                    requires,
                    ensures,
                }
            },
        )
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn build_rule(sk: &RuleSkeleton) -> Rule {
    let objects: Vec<ObjectDecl> = sk
        .objects
        .iter()
        .map(|(ty, name)| ObjectDecl {
            ty: ty.clone(),
            name: name.clone(),
        })
        .collect();
    let int_objects: Vec<&ObjectDecl> = objects
        .iter()
        .filter(|o| o.ty == TypeRef::scalar("int"))
        .collect();
    let events: Vec<EventDecl> = sk
        .events
        .iter()
        .map(|(label, method, params)| {
            EventDecl::Method(MethodEvent {
                label: label.clone(),
                return_var: None,
                method_name: method.clone(),
                params: params
                    .iter()
                    .map(|&i| ParamPattern::Var(objects[i % objects.len()].name.clone()))
                    .collect(),
            })
        })
        .collect();
    let order = if sk.use_order && !events.is_empty() {
        OrderExpr::Seq(
            events
                .iter()
                .map(|e| OrderExpr::Label(e.label().to_owned()))
                .collect(),
        )
    } else {
        OrderExpr::Empty
    };
    let mut constraints = Vec::new();
    for (i, op, v) in &sk.cmp_constraints {
        if let Some(o) = int_objects.get(i % int_objects.len().max(1)) {
            constraints.push(Constraint::Cmp {
                left: Atom::Var(o.name.clone()),
                op: *op,
                right: Atom::Lit(Literal::Int(*v)),
            });
        }
    }
    for (i, choices) in &sk.in_constraints {
        let o = &objects[i % objects.len()];
        constraints.push(Constraint::In {
            var: o.name.clone(),
            choices: choices.clone(),
        });
    }
    let requires = sk
        .requires
        .iter()
        .map(|(name, i)| Predicate {
            name: name.clone(),
            args: vec![PredArg::Var(objects[i % objects.len()].name.clone())],
        })
        .collect();
    let ensures = sk
        .ensures
        .iter()
        .map(|(name, after)| EnsuredPredicate {
            predicate: Predicate {
                name: name.clone(),
                args: vec![PredArg::This],
            },
            after: after
                .filter(|_| !sk.events.is_empty())
                .map(|i| sk.events[i % sk.events.len()].0.clone()),
        })
        .collect();
    Rule {
        class_name: QualifiedName::new("gen.Example"),
        objects,
        events,
        order,
        constraints,
        forbidden: Vec::new(),
        requires,
        ensures,
        negates: Vec::new(),
    }
}

// The normalization the parser applies to `Seq` of one element etc. means
// we compare via a second print instead of structural equality when the
// AST has degenerate shapes; for the shapes generated here, structural
// equality holds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_rules_roundtrip(sk in skeleton()) {
        let rule = build_rule(&sk);
        // Some generated combinations may be structurally degenerate
        // (e.g. Seq of a single event prints without parens and reparses
        // as a bare label); printing twice must reach a fixpoint and the
        // reparsed rule must print identically.
        let printed = print_rule(&rule);
        let reparsed = match parse_rule(&printed) {
            Ok(r) => r,
            Err(e) => panic!("printed rule failed to reparse: {e}\n---\n{printed}"),
        };
        prop_assert_eq!(print_rule(&reparsed), printed);
    }
}
