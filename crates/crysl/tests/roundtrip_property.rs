//! Property-based round trips for the CrySL language: randomly generated
//! rule ASTs survive print → parse → validate unchanged. Runs on the
//! in-repo `devharness` property harness (hermetic, no registry).

use devharness::prop::{check, gens, Config, Gen};

use crysl::ast::*;
use crysl::printer::print_rule;
use crysl::{parse_rule, Rule};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const ALNUM: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

fn ident() -> Gen<String> {
    // Identifiers that are not section keywords or reserved words:
    // one lowercase letter followed by up to six alphanumerics.
    let first = gens::string_of(LOWER, 1, 2);
    let rest = gens::string_of(ALNUM, 0, 7);
    gens::tuple2(first, rest)
        .map(|(f, r)| format!("{f}{r}"))
        .filter("reserved word", |s| {
            !matches!(
                s.as_str(),
                "in" | "after" | "this" | "true" | "false" | "instanceof" | "neverTypeOf"
            )
        })
}

fn type_ref() -> Gen<TypeRef> {
    gens::one_of(vec![
        TypeRef::scalar("int"),
        TypeRef::scalar("boolean"),
        TypeRef::array("byte"),
        TypeRef::array("char"),
        TypeRef::scalar("java.lang.String"),
        TypeRef::scalar("java.security.Key"),
    ])
}

fn literal() -> Gen<Literal> {
    gens::pick(vec![
        gens::i32_any().map(|i| Literal::Int(i.into())),
        gens::string_of(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789/_-",
            1,
            13,
        )
        .map(Literal::Str),
        gens::bool_any().map(Literal::Bool),
    ])
}

fn cmp_op() -> Gen<CmpOp> {
    gens::one_of(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

#[derive(Debug, Clone)]
struct RuleSkeleton {
    objects: Vec<(TypeRef, String)>,
    events: Vec<(String, String, Vec<usize>)>, // label, method, object indices
    use_order: bool,
    cmp_constraints: Vec<(usize, CmpOp, i64)>,
    in_constraints: Vec<(usize, Vec<Literal>)>,
    requires: Vec<(String, usize)>,
    ensures: Vec<(String, Option<usize>)>, // predicate, after event index
}

fn skeleton() -> Gen<RuleSkeleton> {
    let objects = gens::vec(gens::tuple2(type_ref(), ident()), 1, 5);
    let raw_events = gens::vec(gens::tuple2(ident(), ident()), 1, 5);
    let use_order = gens::bool_any();
    let cmp = gens::vec(
        gens::tuple3(
            gens::usize_range(0, 4),
            cmp_op(),
            gens::i64_range(-1000, 1000),
        ),
        0,
        3,
    );
    let ins = gens::vec(
        gens::tuple2(gens::usize_range(0, 4), gens::vec(literal(), 1, 4)),
        0,
        2,
    );
    let requires = gens::vec(gens::tuple2(ident(), gens::usize_range(0, 4)), 0, 2);
    let ensures = gens::vec(
        gens::tuple2(ident(), gens::option(gens::usize_range(0, 4))),
        0,
        2,
    );
    Gen::new(move |t| {
        let objects = objects.run(t);
        let raw_events = raw_events.run(t);
        let use_order = use_order.run(t);
        let cmp = cmp.run(t);
        let ins = ins.run(t);
        let requires = requires.run(t);
        let ensures = ensures.run(t);
        // Deduplicate object and event names.
        let mut seen = std::collections::HashSet::new();
        let objects: Vec<(TypeRef, String)> = objects
            .into_iter()
            .filter(|(_, n)| seen.insert(n.clone()))
            .collect();
        let mut seen_labels = std::collections::HashSet::new();
        let events: Vec<(String, String, Vec<usize>)> = raw_events
            .into_iter()
            .filter(|(l, _)| seen_labels.insert(l.clone()))
            .enumerate()
            .map(|(i, (label, method))| {
                let params = if i % 2 == 0 && !objects.is_empty() {
                    vec![i % objects.len()]
                } else {
                    vec![]
                };
                (label, method, params)
            })
            .collect();
        RuleSkeleton {
            objects,
            events,
            use_order,
            cmp_constraints: cmp,
            in_constraints: ins,
            requires,
            ensures,
        }
    })
}

fn build_rule(sk: &RuleSkeleton) -> Rule {
    let objects: Vec<ObjectDecl> = sk
        .objects
        .iter()
        .map(|(ty, name)| ObjectDecl {
            ty: ty.clone(),
            name: name.clone(),
        })
        .collect();
    let int_objects: Vec<&ObjectDecl> = objects
        .iter()
        .filter(|o| o.ty == TypeRef::scalar("int"))
        .collect();
    let events: Vec<EventDecl> = sk
        .events
        .iter()
        .map(|(label, method, params)| {
            EventDecl::Method(MethodEvent {
                label: label.clone(),
                return_var: None,
                method_name: method.clone(),
                params: params
                    .iter()
                    .map(|&i| ParamPattern::Var(objects[i % objects.len()].name.clone()))
                    .collect(),
            })
        })
        .collect();
    let order = if sk.use_order && !events.is_empty() {
        OrderExpr::Seq(
            events
                .iter()
                .map(|e| OrderExpr::Label(e.label().to_owned()))
                .collect(),
        )
    } else {
        OrderExpr::Empty
    };
    let mut constraints = Vec::new();
    for (i, op, v) in &sk.cmp_constraints {
        if let Some(o) = int_objects.get(i % int_objects.len().max(1)) {
            constraints.push(Constraint::Cmp {
                left: Atom::Var(o.name.clone()),
                op: *op,
                right: Atom::Lit(Literal::Int(*v)),
            });
        }
    }
    for (i, choices) in &sk.in_constraints {
        let o = &objects[i % objects.len()];
        constraints.push(Constraint::In {
            var: o.name.clone(),
            choices: choices.clone(),
        });
    }
    let requires = sk
        .requires
        .iter()
        .map(|(name, i)| Predicate {
            name: name.clone(),
            args: vec![PredArg::Var(objects[i % objects.len()].name.clone())],
        })
        .collect();
    let ensures = sk
        .ensures
        .iter()
        .map(|(name, after)| EnsuredPredicate {
            predicate: Predicate {
                name: name.clone(),
                args: vec![PredArg::This],
            },
            after: after
                .filter(|_| !sk.events.is_empty())
                .map(|i| sk.events[i % sk.events.len()].0.clone()),
        })
        .collect();
    Rule {
        class_name: QualifiedName::new("gen.Example"),
        objects,
        events,
        order,
        constraints,
        forbidden: Vec::new(),
        requires,
        ensures,
        negates: Vec::new(),
    }
}

// The normalization the parser applies to `Seq` of one element etc. means
// we compare via a second print instead of structural equality when the
// AST has degenerate shapes; for the shapes generated here, structural
// equality holds.
#[test]
fn random_rules_roundtrip() {
    check(
        "random_rules_roundtrip",
        &Config::with_cases(128),
        &skeleton(),
        |sk| {
            let rule = build_rule(sk);
            // Some generated combinations may be structurally degenerate
            // (e.g. Seq of a single event prints without parens and reparses
            // as a bare label); printing twice must reach a fixpoint and the
            // reparsed rule must print identically.
            let printed = print_rule(&rule);
            let reparsed = match parse_rule(&printed) {
                Ok(r) => r,
                Err(e) => panic!("printed rule failed to reparse: {e}\n---\n{printed}"),
            };
            assert_eq!(print_rule(&reparsed), printed);
        },
    );
}
