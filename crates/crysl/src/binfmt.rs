//! Compact binary (de)serialization for CrySL ASTs — the byte layer of
//! precompiled rule packs.
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! integers, `u32`-length-prefixed UTF-8 strings, `u32`-count-prefixed
//! collections, one tag byte per enum variant. No self-describing
//! schema, no compression, no external dependency — the format version
//! in the pack header is the only compatibility mechanism.
//!
//! The [`Reader`] treats its input as hostile. Every read is bounds-
//! checked against the remaining input, every declared collection count
//! is capped against the bytes that could possibly back it, and every
//! enum tag must match a known variant. Any violation is a typed
//! [`CryslError::Pack`] — the decoder never panics and never allocates
//! more than the input length can justify.

use crate::ast::{
    Atom, CmpOp, Constraint, EnsuredPredicate, EventDecl, ForbiddenMethod, Literal, MethodEvent,
    ObjectDecl, OrderExpr, ParamPattern, PredArg, Predicate, QualifiedName, Rule, TypeRef,
};
use crate::error::CryslError;

/// Maximum nesting depth accepted for recursive AST forms ([`OrderExpr`],
/// [`Constraint`]). Real rules nest a handful of levels; the cap turns a
/// hostile deeply-nested pack into an error instead of a stack overflow.
pub const MAX_DEPTH: usize = 64;

/// Append-only byte sink for the pack encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a collection count (`u32`).
    pub fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Appends an `Option<String>` as a presence byte plus the string.
    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

/// Bounds-checked cursor over untrusted pack bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole input.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current cursor position (for error messages).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CryslError> {
        if self.remaining() != 0 {
            return Err(CryslError::pack(format!(
                "{} trailing bytes after payload at offset {}",
                self.remaining(),
                self.pos
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CryslError> {
        if self.remaining() < n {
            return Err(CryslError::pack(format!(
                "truncated input: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CryslError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CryslError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CryslError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CryslError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CryslError> {
        self.u64().map(|v| v as i64)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string. The declared length
    /// is checked against the remaining input before any allocation.
    pub fn str(&mut self) -> Result<String, CryslError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            CryslError::pack(format!("invalid UTF-8 in string at offset {}", self.pos))
        })
    }

    /// Reads a collection count, capped against the remaining bytes:
    /// every element of any collection costs at least one encoded byte,
    /// so a count exceeding `remaining()` is corruption, not a reason
    /// to pre-allocate gigabytes.
    pub fn count(&mut self) -> Result<usize, CryslError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CryslError::pack(format!(
                "impossible collection count {n} at offset {} ({} bytes remain)",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `Option<String>` written by [`Writer::opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<String>, CryslError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            tag => Err(CryslError::pack(format!(
                "invalid option tag {tag} at offset {}",
                self.pos
            ))),
        }
    }

    fn bad_tag(&self, what: &str, tag: u8) -> CryslError {
        CryslError::pack(format!("invalid {what} tag {tag} at offset {}", self.pos))
    }
}

// ---------------------------------------------------------------------------
// AST encoding
// ---------------------------------------------------------------------------

fn write_type_ref(w: &mut Writer, t: &TypeRef) {
    w.str(&t.name);
    w.u8(t.array_dims);
}

fn read_type_ref(r: &mut Reader<'_>) -> Result<TypeRef, CryslError> {
    Ok(TypeRef {
        name: r.str()?,
        array_dims: r.u8()?,
    })
}

fn write_param(w: &mut Writer, p: &ParamPattern) {
    match p {
        ParamPattern::Var(v) => {
            w.u8(0);
            w.str(v);
        }
        ParamPattern::Wildcard => w.u8(1),
        ParamPattern::This => w.u8(2),
    }
}

fn read_param(r: &mut Reader<'_>) -> Result<ParamPattern, CryslError> {
    match r.u8()? {
        0 => Ok(ParamPattern::Var(r.str()?)),
        1 => Ok(ParamPattern::Wildcard),
        2 => Ok(ParamPattern::This),
        tag => Err(r.bad_tag("parameter pattern", tag)),
    }
}

fn write_event(w: &mut Writer, e: &EventDecl) {
    match e {
        EventDecl::Method(m) => {
            w.u8(0);
            w.str(&m.label);
            w.opt_str(m.return_var.as_deref());
            w.str(&m.method_name);
            w.count(m.params.len());
            for p in &m.params {
                write_param(w, p);
            }
        }
        EventDecl::Aggregate { label, members } => {
            w.u8(1);
            w.str(label);
            w.count(members.len());
            for m in members {
                w.str(m);
            }
        }
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<EventDecl, CryslError> {
    match r.u8()? {
        0 => {
            let label = r.str()?;
            let return_var = r.opt_str()?;
            let method_name = r.str()?;
            let n = r.count()?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(read_param(r)?);
            }
            Ok(EventDecl::Method(MethodEvent {
                label,
                return_var,
                method_name,
                params,
            }))
        }
        1 => {
            let label = r.str()?;
            let n = r.count()?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(r.str()?);
            }
            Ok(EventDecl::Aggregate { label, members })
        }
        tag => Err(r.bad_tag("event", tag)),
    }
}

fn write_order(w: &mut Writer, o: &OrderExpr) {
    match o {
        OrderExpr::Empty => w.u8(0),
        OrderExpr::Label(l) => {
            w.u8(1);
            w.str(l);
        }
        OrderExpr::Seq(xs) => {
            w.u8(2);
            w.count(xs.len());
            for x in xs {
                write_order(w, x);
            }
        }
        OrderExpr::Alt(xs) => {
            w.u8(3);
            w.count(xs.len());
            for x in xs {
                write_order(w, x);
            }
        }
        OrderExpr::Opt(x) => {
            w.u8(4);
            write_order(w, x);
        }
        OrderExpr::Star(x) => {
            w.u8(5);
            write_order(w, x);
        }
        OrderExpr::Plus(x) => {
            w.u8(6);
            write_order(w, x);
        }
    }
}

fn read_order(r: &mut Reader<'_>, depth: usize) -> Result<OrderExpr, CryslError> {
    if depth > MAX_DEPTH {
        return Err(CryslError::pack(format!(
            "ORDER expression nests deeper than {MAX_DEPTH} levels"
        )));
    }
    match r.u8()? {
        0 => Ok(OrderExpr::Empty),
        1 => Ok(OrderExpr::Label(r.str()?)),
        tag @ (2 | 3) => {
            let n = r.count()?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(read_order(r, depth + 1)?);
            }
            Ok(if tag == 2 {
                OrderExpr::Seq(xs)
            } else {
                OrderExpr::Alt(xs)
            })
        }
        4 => Ok(OrderExpr::Opt(Box::new(read_order(r, depth + 1)?))),
        5 => Ok(OrderExpr::Star(Box::new(read_order(r, depth + 1)?))),
        6 => Ok(OrderExpr::Plus(Box::new(read_order(r, depth + 1)?))),
        tag => Err(r.bad_tag("ORDER expression", tag)),
    }
}

fn write_literal(w: &mut Writer, l: &Literal) {
    match l {
        Literal::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Literal::Str(s) => {
            w.u8(1);
            w.str(s);
        }
        Literal::Bool(b) => {
            w.u8(2);
            w.u8(u8::from(*b));
        }
    }
}

fn read_literal(r: &mut Reader<'_>) -> Result<Literal, CryslError> {
    match r.u8()? {
        0 => Ok(Literal::Int(r.i64()?)),
        1 => Ok(Literal::Str(r.str()?)),
        2 => match r.u8()? {
            0 => Ok(Literal::Bool(false)),
            1 => Ok(Literal::Bool(true)),
            tag => Err(r.bad_tag("boolean", tag)),
        },
        tag => Err(r.bad_tag("literal", tag)),
    }
}

fn write_atom(w: &mut Writer, a: &Atom) {
    match a {
        Atom::Var(v) => {
            w.u8(0);
            w.str(v);
        }
        Atom::Lit(l) => {
            w.u8(1);
            write_literal(w, l);
        }
    }
}

fn read_atom(r: &mut Reader<'_>) -> Result<Atom, CryslError> {
    match r.u8()? {
        0 => Ok(Atom::Var(r.str()?)),
        1 => Ok(Atom::Lit(read_literal(r)?)),
        tag => Err(r.bad_tag("atom", tag)),
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn read_cmp_op(r: &mut Reader<'_>) -> Result<CmpOp, CryslError> {
    match r.u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        tag => Err(r.bad_tag("comparison operator", tag)),
    }
}

fn write_constraint(w: &mut Writer, c: &Constraint) {
    match c {
        Constraint::In { var, choices } => {
            w.u8(0);
            w.str(var);
            w.count(choices.len());
            for l in choices {
                write_literal(w, l);
            }
        }
        Constraint::Cmp { left, op, right } => {
            w.u8(1);
            write_atom(w, left);
            w.u8(cmp_op_tag(*op));
            write_atom(w, right);
        }
        Constraint::InstanceOf { var, java_type } => {
            w.u8(2);
            w.str(var);
            w.str(java_type.as_str());
        }
        Constraint::NeverTypeOf { var, java_type } => {
            w.u8(3);
            w.str(var);
            w.str(java_type.as_str());
        }
        Constraint::Implies {
            antecedent,
            consequent,
        } => {
            w.u8(4);
            write_constraint(w, antecedent);
            write_constraint(w, consequent);
        }
        Constraint::And(a, b) => {
            w.u8(5);
            write_constraint(w, a);
            write_constraint(w, b);
        }
        Constraint::Or(a, b) => {
            w.u8(6);
            write_constraint(w, a);
            write_constraint(w, b);
        }
    }
}

fn read_constraint(r: &mut Reader<'_>, depth: usize) -> Result<Constraint, CryslError> {
    if depth > MAX_DEPTH {
        return Err(CryslError::pack(format!(
            "constraint nests deeper than {MAX_DEPTH} levels"
        )));
    }
    match r.u8()? {
        0 => {
            let var = r.str()?;
            let n = r.count()?;
            let mut choices = Vec::with_capacity(n);
            for _ in 0..n {
                choices.push(read_literal(r)?);
            }
            Ok(Constraint::In { var, choices })
        }
        1 => Ok(Constraint::Cmp {
            left: read_atom(r)?,
            op: read_cmp_op(r)?,
            right: read_atom(r)?,
        }),
        2 => Ok(Constraint::InstanceOf {
            var: r.str()?,
            java_type: QualifiedName::new(r.str()?),
        }),
        3 => Ok(Constraint::NeverTypeOf {
            var: r.str()?,
            java_type: QualifiedName::new(r.str()?),
        }),
        4 => Ok(Constraint::Implies {
            antecedent: Box::new(read_constraint(r, depth + 1)?),
            consequent: Box::new(read_constraint(r, depth + 1)?),
        }),
        5 => Ok(Constraint::And(
            Box::new(read_constraint(r, depth + 1)?),
            Box::new(read_constraint(r, depth + 1)?),
        )),
        6 => Ok(Constraint::Or(
            Box::new(read_constraint(r, depth + 1)?),
            Box::new(read_constraint(r, depth + 1)?),
        )),
        tag => Err(r.bad_tag("constraint", tag)),
    }
}

fn write_pred_arg(w: &mut Writer, a: &PredArg) {
    match a {
        PredArg::Var(v) => {
            w.u8(0);
            w.str(v);
        }
        PredArg::This => w.u8(1),
        PredArg::Wildcard => w.u8(2),
        PredArg::Lit(l) => {
            w.u8(3);
            write_literal(w, l);
        }
    }
}

fn read_pred_arg(r: &mut Reader<'_>) -> Result<PredArg, CryslError> {
    match r.u8()? {
        0 => Ok(PredArg::Var(r.str()?)),
        1 => Ok(PredArg::This),
        2 => Ok(PredArg::Wildcard),
        3 => Ok(PredArg::Lit(read_literal(r)?)),
        tag => Err(r.bad_tag("predicate argument", tag)),
    }
}

fn write_predicate(w: &mut Writer, p: &Predicate) {
    w.str(&p.name);
    w.count(p.args.len());
    for a in &p.args {
        write_pred_arg(w, a);
    }
}

fn read_predicate(r: &mut Reader<'_>) -> Result<Predicate, CryslError> {
    let name = r.str()?;
    let n = r.count()?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_pred_arg(r)?);
    }
    Ok(Predicate { name, args })
}

/// Encodes one rule into `w`. The inverse of [`read_rule`].
pub fn write_rule(w: &mut Writer, rule: &Rule) {
    w.str(rule.class_name.as_str());
    w.count(rule.objects.len());
    for o in &rule.objects {
        write_type_ref(w, &o.ty);
        w.str(&o.name);
    }
    w.count(rule.events.len());
    for e in &rule.events {
        write_event(w, e);
    }
    write_order(w, &rule.order);
    w.count(rule.constraints.len());
    for c in &rule.constraints {
        write_constraint(w, c);
    }
    w.count(rule.forbidden.len());
    for fm in &rule.forbidden {
        w.str(&fm.method_name);
        w.count(fm.param_types.len());
        for t in &fm.param_types {
            write_type_ref(w, t);
        }
        w.opt_str(fm.replacement.as_deref());
    }
    w.count(rule.requires.len());
    for p in &rule.requires {
        write_predicate(w, p);
    }
    w.count(rule.ensures.len());
    for e in &rule.ensures {
        write_predicate(w, &e.predicate);
        w.opt_str(e.after.as_deref());
    }
    w.count(rule.negates.len());
    for p in &rule.negates {
        write_predicate(w, p);
    }
}

/// Decodes one rule from `r`. The structural inverse of [`write_rule`];
/// callers wanting full well-formedness must still run
/// [`crate::validate::validate`] on the result.
///
/// # Errors
///
/// Returns [`CryslError::Pack`] on truncation, an unknown tag, invalid
/// UTF-8, or an impossible count — never panics.
pub fn read_rule(r: &mut Reader<'_>) -> Result<Rule, CryslError> {
    let class_name = QualifiedName::new(r.str()?);
    let n = r.count()?;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let ty = read_type_ref(r)?;
        let name = r.str()?;
        objects.push(ObjectDecl { ty, name });
    }
    let n = r.count()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(read_event(r)?);
    }
    let order = read_order(r, 0)?;
    let n = r.count()?;
    let mut constraints = Vec::with_capacity(n);
    for _ in 0..n {
        constraints.push(read_constraint(r, 0)?);
    }
    let n = r.count()?;
    let mut forbidden = Vec::with_capacity(n);
    for _ in 0..n {
        let method_name = r.str()?;
        let tn = r.count()?;
        let mut param_types = Vec::with_capacity(tn);
        for _ in 0..tn {
            param_types.push(read_type_ref(r)?);
        }
        let replacement = r.opt_str()?;
        forbidden.push(ForbiddenMethod {
            method_name,
            param_types,
            replacement,
        });
    }
    let n = r.count()?;
    let mut requires = Vec::with_capacity(n);
    for _ in 0..n {
        requires.push(read_predicate(r)?);
    }
    let n = r.count()?;
    let mut ensures = Vec::with_capacity(n);
    for _ in 0..n {
        let predicate = read_predicate(r)?;
        let after = r.opt_str()?;
        ensures.push(EnsuredPredicate { predicate, after });
    }
    let n = r.count()?;
    let mut negates = Vec::with_capacity(n);
    for _ in 0..n {
        negates.push(read_predicate(r)?);
    }
    Ok(Rule {
        class_name,
        objects,
        events,
        order,
        constraints,
        forbidden,
        requires,
        ensures,
        negates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rule;

    const SAMPLE: &str = "SPEC javax.crypto.spec.PBEKeySpec\n\
        OBJECTS\n  char[] password;\n  byte[] salt;\n  int iterationCount;\n  int keyLength;\n\
        EVENTS\n  c1: PBEKeySpec(password, salt, iterationCount, keyLength);\n\
        cP: clearPassword();\n  Gets := c1 | cP;\n\
        ORDER\n  c1, cP?\n\
        CONSTRAINTS\n  iterationCount >= 10000;\n  keyLength in {128, 256};\n\
        FORBIDDEN\n  PBEKeySpec(char[]) => c1;\n\
        REQUIRES\n  randomized[salt];\n\
        ENSURES\n  speccedKey[this] after c1;\n\
        NEGATES\n  speccedKey[this, _];";

    fn roundtrip(rule: &Rule) -> Rule {
        let mut w = Writer::new();
        write_rule(&mut w, rule);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = read_rule(&mut r).expect("decode");
        r.expect_end().expect("no trailing bytes");
        decoded
    }

    #[test]
    fn rule_roundtrips_byte_exactly() {
        let rule = parse_rule(SAMPLE).unwrap();
        assert_eq!(roundtrip(&rule), rule);
    }

    #[test]
    fn every_section_shape_roundtrips() {
        let rule = parse_rule(
            "SPEC a.B\nOBJECTS int k; char[][] c; int x;\nEVENTS a: x = f(k, _, this); b: g();\n\
             ORDER (a | b)+, a*, b?\n\
             CONSTRAINTS k in {1, \"s\", true}; k >= 1 && k <= 9 || k == 5;\n\
             k != 2 => k > 0; instanceof[k, j.T]; neverTypeOf[k, j.S];",
        )
        .unwrap();
        assert_eq!(roundtrip(&rule), rule);
    }

    #[test]
    fn truncation_at_every_offset_is_a_typed_error() {
        let rule = parse_rule(SAMPLE).unwrap();
        let mut w = Writer::new();
        write_rule(&mut w, &rule);
        let bytes = w.into_bytes();
        for end in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..end]);
            match read_rule(&mut r) {
                Ok(_) => assert!(
                    r.expect_end().is_err(),
                    "prefix of {end} bytes decoded AND consumed everything"
                ),
                Err(CryslError::Pack { .. }) => {}
                Err(other) => panic!("non-pack error on truncation at {end}: {other}"),
            }
        }
    }

    #[test]
    fn impossible_count_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.str("a.B");
        w.u32(u32::MAX); // objects count far beyond remaining bytes
        let bytes = w.into_bytes();
        let err = read_rule(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CryslError::Pack { .. }), "{err}");
    }

    #[test]
    fn hostile_depth_is_capped_not_a_stack_overflow() {
        let mut w = Writer::new();
        w.str("a.B");
        w.count(0); // objects
        w.count(0); // events
        for _ in 0..10_000 {
            w.u8(4); // Opt(
        }
        w.u8(0); // Empty
        let bytes = w.into_bytes();
        let err = read_rule(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("nests deeper"), "{err}");
    }

    #[test]
    fn invalid_utf8_and_bad_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.u32(2);
        w.raw(&[0xff, 0xfe]);
        assert!(matches!(
            Reader::new(&w.into_bytes()).str(),
            Err(CryslError::Pack { .. })
        ));

        let mut w = Writer::new();
        w.str("a.B");
        w.count(1);
        w.str("int");
        w.u8(0);
        w.str("k");
        w.count(1);
        w.u8(9); // unknown event tag
        let err = read_rule(&mut Reader::new(&w.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("event tag"), "{err}");
    }
}
