//! Error type shared by the CrySL front end.

use std::error::Error;
use std::fmt;

/// A position in CrySL source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing, parsing, or validating a CrySL rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryslError {
    /// The tokenizer hit a character it does not understand.
    Lex {
        /// Position of the offending character.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// The parser found an unexpected token or missing section.
    Parse {
        /// Position of the offending token.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// The rule parsed but violates a well-formedness requirement
    /// (undeclared object, unknown event label, duplicate name, …).
    Validate {
        /// Human-readable description.
        message: String,
    },
    /// A precompiled rule pack failed to decode: truncated input, a bad
    /// magic number or version, a checksum mismatch, or a structurally
    /// impossible value. Corruption is always reported through this
    /// variant — the decoder never panics on hostile bytes.
    Pack {
        /// Human-readable description.
        message: String,
    },
}

impl CryslError {
    /// Convenience constructor for lexer errors.
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        CryslError::Lex {
            pos,
            message: message.into(),
        }
    }

    /// Convenience constructor for parser errors.
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        CryslError::Parse {
            pos,
            message: message.into(),
        }
    }

    /// Convenience constructor for validation errors.
    pub fn validate(message: impl Into<String>) -> Self {
        CryslError::Validate {
            message: message.into(),
        }
    }

    /// Convenience constructor for rule-pack decode errors.
    pub fn pack(message: impl Into<String>) -> Self {
        CryslError::Pack {
            message: message.into(),
        }
    }
}

impl fmt::Display for CryslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryslError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            CryslError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            CryslError::Validate { message } => write!(f, "invalid rule: {message}"),
            CryslError::Pack { message } => write!(f, "invalid rule pack: {message}"),
        }
    }
}

impl Error for CryslError {}
