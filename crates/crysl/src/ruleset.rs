//! Collections of CrySL rules keyed by the class they specify.

use std::collections::BTreeMap;

use crate::ast::{QualifiedName, Rule};
use crate::error::CryslError;
use crate::parse_rule;

/// A set of CrySL rules, at most one per class, resolvable by either the
/// fully-qualified or the simple class name (when unambiguous).
///
/// # Example
///
/// ```
/// use crysl::RuleSet;
///
/// let mut set = RuleSet::new();
/// set.add_source("SPEC java.security.SecureRandom\nEVENTS g: getInstance(_);")?;
/// assert!(set.by_name("java.security.SecureRandom").is_some());
/// assert!(set.by_name("SecureRandom").is_some());
/// # Ok::<(), crysl::CryslError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSet {
    rules: BTreeMap<QualifiedName, Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Parses, validates and inserts a rule from source text.
    ///
    /// # Errors
    ///
    /// Returns the parse/validation error, or a validation error if a rule
    /// for the same class is already present.
    pub fn add_source(&mut self, source: &str) -> Result<(), CryslError> {
        self.add(parse_rule(source)?)
    }

    /// Inserts an already-parsed rule.
    ///
    /// # Errors
    ///
    /// Returns [`CryslError::Validate`] if a rule for the same class is
    /// already present.
    pub fn add(&mut self, rule: Rule) -> Result<(), CryslError> {
        if self.rules.contains_key(&rule.class_name) {
            return Err(CryslError::validate(format!(
                "duplicate rule for `{}`",
                rule.class_name
            )));
        }
        self.rules.insert(rule.class_name.clone(), rule);
        Ok(())
    }

    /// Number of rules in the set.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Looks a rule up by fully-qualified name, or by simple name if exactly
    /// one rule matches it.
    pub fn by_name(&self, name: &str) -> Option<&Rule> {
        if let Some(r) = self.rules.get(&QualifiedName::new(name)) {
            return Some(r);
        }
        let mut matches = self
            .rules
            .values()
            .filter(|r| r.class_name.simple_name() == name);
        let first = matches.next()?;
        if matches.next().is_some() {
            None // ambiguous simple name
        } else {
            Some(first)
        }
    }

    /// Iterates over all rules in deterministic (class-name) order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// All rules that `ENSURES` a predicate with the given name.
    pub fn ensurers_of(&self, predicate_name: &str) -> Vec<&Rule> {
        self.rules
            .values()
            .filter(|r| r.ensures.iter().any(|e| e.predicate.name == predicate_name))
            .collect()
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        let mut set = RuleSet::new();
        for rule in iter {
            // Duplicates are a programming error when bulk-constructing.
            set.add(rule).expect("duplicate rule in FromIterator");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_name_lookup_requires_uniqueness() {
        let mut set = RuleSet::new();
        set.add_source("SPEC a.b.Cipher").unwrap();
        set.add_source("SPEC x.y.Cipher").unwrap();
        assert!(set.by_name("Cipher").is_none());
        assert!(set.by_name("a.b.Cipher").is_some());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn rejects_duplicates() {
        let mut set = RuleSet::new();
        set.add_source("SPEC a.B").unwrap();
        assert!(set.add_source("SPEC a.B").is_err());
    }

    #[test]
    fn finds_ensurers() {
        let mut set = RuleSet::new();
        set.add_source("SPEC a.Random\nOBJECTS byte[] out;\nEVENTS n: nextBytes(out);\nENSURES randomized[out];")
            .unwrap();
        set.add_source("SPEC a.Other").unwrap();
        let ensurers = set.ensurers_of("randomized");
        assert_eq!(ensurers.len(), 1);
        assert_eq!(ensurers[0].class_name.as_str(), "a.Random");
    }
}
