//! Abstract syntax tree for CrySL rules.
//!
//! The structure mirrors the sections of a CrySL rule in source order:
//! `SPEC`, `OBJECTS`, `EVENTS`, `ORDER`, `CONSTRAINTS`, `FORBIDDEN`,
//! `REQUIRES`, `ENSURES`, `NEGATES`. All sections except `SPEC` are
//! optional in the language; the AST represents absent sections as empty
//! collections (and a missing `ORDER` as [`OrderExpr::Empty`]).

use std::fmt;

/// A dot-separated, fully-qualified Java class name such as
/// `javax.crypto.spec.PBEKeySpec`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedName(pub String);

impl QualifiedName {
    /// Creates a qualified name from its textual form.
    pub fn new(name: impl Into<String>) -> Self {
        QualifiedName(name.into())
    }

    /// The last dot-separated segment (`PBEKeySpec` for
    /// `javax.crypto.spec.PBEKeySpec`).
    pub fn simple_name(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// The full dotted name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for QualifiedName {
    fn from(s: &str) -> Self {
        QualifiedName::new(s)
    }
}

/// A (possibly array) type reference appearing in `OBJECTS` declarations,
/// e.g. `char[]`, `int`, or `java.security.Key`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeRef {
    /// The base type name: a primitive (`int`, `char`, `byte`, `boolean`,
    /// `long`) or a (possibly qualified) class name.
    pub name: String,
    /// Number of array dimensions (`char[]` has 1, `byte[][]` has 2).
    pub array_dims: u8,
}

impl TypeRef {
    /// A scalar (non-array) type.
    pub fn scalar(name: impl Into<String>) -> Self {
        TypeRef {
            name: name.into(),
            array_dims: 0,
        }
    }

    /// A one-dimensional array of the named base type.
    pub fn array(name: impl Into<String>) -> Self {
        TypeRef {
            name: name.into(),
            array_dims: 1,
        }
    }

    /// Whether this is one of the Java primitive types understood by CrySL.
    pub fn is_primitive(&self) -> bool {
        self.array_dims == 0
            && matches!(
                self.name.as_str(),
                "int" | "long" | "char" | "byte" | "boolean" | "short" | "float" | "double"
            )
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        for _ in 0..self.array_dims {
            f.write_str("[]")?;
        }
        Ok(())
    }
}

/// An object declaration in the `OBJECTS` section: a named, typed variable
/// that events, constraints and predicates may refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDecl {
    /// Declared type.
    pub ty: TypeRef,
    /// Variable name.
    pub name: String,
}

/// A parameter pattern inside a method-event signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamPattern {
    /// A reference to an `OBJECTS` variable.
    Var(String),
    /// `_` — the parameter is irrelevant to the rule.
    Wildcard,
    /// `this` — the specified object itself.
    This,
}

impl fmt::Display for ParamPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamPattern::Var(v) => f.write_str(v),
            ParamPattern::Wildcard => f.write_str("_"),
            ParamPattern::This => f.write_str("this"),
        }
    }
}

/// A method-event pattern: `label: retVar = methodName(params);`.
///
/// When `method_name` equals the simple name of the rule's class the event
/// denotes a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodEvent {
    /// The label used by `ORDER`, `after`-clauses and aggregates.
    pub label: String,
    /// Optional binding of the call's return value to an `OBJECTS` variable.
    pub return_var: Option<String>,
    /// The method (or constructor) name.
    pub method_name: String,
    /// Parameter patterns, in call order.
    pub params: Vec<ParamPattern>,
}

impl MethodEvent {
    /// Whether this event denotes a constructor of `class_simple_name`.
    pub fn is_constructor_of(&self, class_simple_name: &str) -> bool {
        self.method_name == class_simple_name
    }
}

/// One entry of the `EVENTS` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventDecl {
    /// A concrete method-call pattern.
    Method(MethodEvent),
    /// An aggregate: `Label := a | b | c;` groups several labels under one
    /// name usable in `ORDER`.
    Aggregate {
        /// The aggregate's own label.
        label: String,
        /// Labels of the aggregated events (or nested aggregates).
        members: Vec<String>,
    },
}

impl EventDecl {
    /// The label this declaration introduces.
    pub fn label(&self) -> &str {
        match self {
            EventDecl::Method(m) => &m.label,
            EventDecl::Aggregate { label, .. } => label,
        }
    }
}

/// A regular expression over event labels — the `ORDER` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderExpr {
    /// No usage-pattern restriction (rule had no `ORDER` section).
    Empty,
    /// A single event or aggregate label.
    Label(String),
    /// Sequential composition (`a, b`).
    Seq(Vec<OrderExpr>),
    /// Alternatives (`a | b`).
    Alt(Vec<OrderExpr>),
    /// Zero-or-one (`a?`).
    Opt(Box<OrderExpr>),
    /// Zero-or-more (`a*`).
    Star(Box<OrderExpr>),
    /// One-or-more (`a+`).
    Plus(Box<OrderExpr>),
}

impl OrderExpr {
    /// Collects every label mentioned anywhere in the expression.
    pub fn labels(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            OrderExpr::Empty => {}
            OrderExpr::Label(l) => out.push(l),
            OrderExpr::Seq(xs) | OrderExpr::Alt(xs) => {
                for x in xs {
                    x.collect_labels(out);
                }
            }
            OrderExpr::Opt(x) | OrderExpr::Star(x) | OrderExpr::Plus(x) => x.collect_labels(out),
        }
    }
}

/// A literal value usable in constraints and predicate arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// An integer literal.
    Int(i64),
    /// A string literal (algorithm names, transformations, …).
    Str(String),
    /// A boolean literal.
    Bool(bool),
}

impl Eq for Literal {}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Str(s) => {
                // Escape exactly what the lexer unescapes, so printed
                // literals re-lex to the same string.
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        other => write!(f, "{other}")?,
                    }
                }
                f.write_str("\"")
            }
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Comparison operators available in `CONSTRAINTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An atomic operand of a comparison constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// An `OBJECTS` variable.
    Var(String),
    /// A literal value.
    Lit(Literal),
}

/// One constraint of the `CONSTRAINTS` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `var in {lit1, ..., litN}` — the variable must take one of the listed
    /// values. CogniCryptGEN's generator picks the *first* literal, so rule
    /// authors order the list by preference (paper §4).
    In {
        /// Constrained variable.
        var: String,
        /// Allowed values, most preferred first.
        choices: Vec<Literal>,
    },
    /// A binary comparison, e.g. `iterationCount >= 10000`.
    Cmp {
        /// Left operand.
        left: Atom,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Atom,
    },
    /// `instanceof[var, some.java.Type]` — the built-in predicate introduced
    /// by the paper (§4) to distinguish symmetric from asymmetric keys.
    InstanceOf {
        /// Constrained variable.
        var: String,
        /// Required Java type.
        java_type: QualifiedName,
    },
    /// `neverTypeOf[var, some.java.Type]` — the value must never originate
    /// from the given type (CrySL's guard against `String` passwords).
    NeverTypeOf {
        /// Constrained variable.
        var: String,
        /// Forbidden origin type.
        java_type: QualifiedName,
    },
    /// `antecedent => consequent` — the consequent must hold whenever the
    /// antecedent does.
    Implies {
        /// Guard constraint.
        antecedent: Box<Constraint>,
        /// Implied constraint.
        consequent: Box<Constraint>,
    },
    /// Conjunction of two constraints (`A && B`).
    And(Box<Constraint>, Box<Constraint>),
    /// Disjunction of two constraints (`A || B`).
    Or(Box<Constraint>, Box<Constraint>),
}

impl Constraint {
    /// All variables mentioned by the constraint.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Constraint::In { var, .. }
            | Constraint::InstanceOf { var, .. }
            | Constraint::NeverTypeOf { var, .. } => out.push(var),
            Constraint::Cmp { left, right, .. } => {
                if let Atom::Var(v) = left {
                    out.push(v);
                }
                if let Atom::Var(v) = right {
                    out.push(v);
                }
            }
            Constraint::Implies {
                antecedent,
                consequent,
            } => {
                antecedent.collect_vars(out);
                consequent.collect_vars(out);
            }
            Constraint::And(a, b) | Constraint::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// An argument of a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredArg {
    /// An `OBJECTS` variable.
    Var(String),
    /// `this` — the specified object.
    This,
    /// `_` — any value.
    Wildcard,
    /// A literal.
    Lit(Literal),
}

impl fmt::Display for PredArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredArg::Var(v) => f.write_str(v),
            PredArg::This => f.write_str("this"),
            PredArg::Wildcard => f.write_str("_"),
            PredArg::Lit(l) => write!(f, "{l}"),
        }
    }
}

/// A predicate occurrence: `name[arg1, ..., argN]`.
///
/// By CrySL convention the first argument names the object the predicate is
/// *on* (the value that carries the guarantee).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Predicate name, e.g. `randomized` or `generatedKey`.
    pub name: String,
    /// Arguments; the first one is the carrier object.
    pub args: Vec<PredArg>,
}

impl Predicate {
    /// The argument carrying the guarantee (first position), if any.
    pub fn carrier(&self) -> Option<&PredArg> {
        self.args.first()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str("]")
    }
}

/// An `ENSURES` entry: a predicate the rule guarantees, optionally only
/// `after` a given event label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsuredPredicate {
    /// The guaranteed predicate.
    pub predicate: Predicate,
    /// If set, the guarantee only holds after this event has executed.
    pub after: Option<String>,
}

/// A `FORBIDDEN` entry: a method that must never be called, with an optional
/// replacement event suggestion (`PBEKeySpec(char[]) => c1;`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForbiddenMethod {
    /// The forbidden method (or constructor) name.
    pub method_name: String,
    /// Parameter *types* distinguishing the overload, as written.
    pub param_types: Vec<TypeRef>,
    /// Label of the event to use instead, if the rule suggests one.
    pub replacement: Option<String>,
}

/// A complete CrySL rule for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The fully-qualified class this rule specifies (`SPEC`).
    pub class_name: QualifiedName,
    /// Declared objects (`OBJECTS`).
    pub objects: Vec<ObjectDecl>,
    /// Method events and aggregates (`EVENTS`).
    pub events: Vec<EventDecl>,
    /// The usage pattern (`ORDER`).
    pub order: OrderExpr,
    /// Parameter constraints (`CONSTRAINTS`).
    pub constraints: Vec<Constraint>,
    /// Methods that must never be called (`FORBIDDEN`).
    pub forbidden: Vec<ForbiddenMethod>,
    /// Predicates this rule relies on (`REQUIRES`).
    pub requires: Vec<Predicate>,
    /// Predicates this rule guarantees (`ENSURES`).
    pub ensures: Vec<EnsuredPredicate>,
    /// Predicates this rule invalidates (`NEGATES`).
    pub negates: Vec<Predicate>,
}

impl Rule {
    /// Looks up a declared object by name.
    pub fn object(&self, name: &str) -> Option<&ObjectDecl> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Looks up a method event by label (aggregates are not returned).
    pub fn method_event(&self, label: &str) -> Option<&MethodEvent> {
        self.events.iter().find_map(|e| match e {
            EventDecl::Method(m) if m.label == label => Some(m),
            _ => None,
        })
    }

    /// Resolves a label to the set of concrete method events it stands for,
    /// expanding aggregates transitively.
    pub fn resolve_label<'a>(&'a self, label: &str) -> Vec<&'a MethodEvent> {
        let mut out = Vec::new();
        self.resolve_label_into(label, &mut out);
        out
    }

    fn resolve_label_into<'a>(&'a self, label: &str, out: &mut Vec<&'a MethodEvent>) {
        for e in &self.events {
            match e {
                EventDecl::Method(m) if m.label == label => out.push(m),
                EventDecl::Aggregate { label: l, members } if l == label => {
                    for m in members {
                        self.resolve_label_into(m, out);
                    }
                }
                _ => {}
            }
        }
    }

    /// Every `In` constraint on `var`, most preferred choices first.
    pub fn in_choices(&self, var: &str) -> Option<&[Literal]> {
        self.constraints.iter().find_map(|c| match c {
            Constraint::In { var: v, choices } if v == var => Some(choices.as_slice()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_name_simple() {
        let q = QualifiedName::new("javax.crypto.Cipher");
        assert_eq!(q.simple_name(), "Cipher");
        assert_eq!(QualifiedName::new("Cipher").simple_name(), "Cipher");
    }

    #[test]
    fn type_ref_display() {
        assert_eq!(TypeRef::array("char").to_string(), "char[]");
        assert_eq!(TypeRef::scalar("int").to_string(), "int");
        assert!(TypeRef::scalar("int").is_primitive());
        assert!(!TypeRef::array("char").is_primitive());
        assert!(!TypeRef::scalar("java.lang.String").is_primitive());
    }

    #[test]
    fn order_labels_collects_all() {
        let e = OrderExpr::Seq(vec![
            OrderExpr::Label("a".into()),
            OrderExpr::Alt(vec![
                OrderExpr::Label("b".into()),
                OrderExpr::Label("c".into()),
            ]),
            OrderExpr::Opt(Box::new(OrderExpr::Label("d".into()))),
        ]);
        assert_eq!(e.labels(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn constraint_variables() {
        let c = Constraint::Implies {
            antecedent: Box::new(Constraint::In {
                var: "alg".into(),
                choices: vec![Literal::Str("AES".into())],
            }),
            consequent: Box::new(Constraint::Cmp {
                left: Atom::Var("keySize".into()),
                op: CmpOp::Ge,
                right: Atom::Lit(Literal::Int(128)),
            }),
        };
        assert_eq!(c.variables(), vec!["alg", "keySize"]);
    }

    #[test]
    fn predicate_display() {
        let p = Predicate {
            name: "speccedKey".into(),
            args: vec![PredArg::This, PredArg::Wildcard],
        };
        assert_eq!(p.to_string(), "speccedKey[this, _]");
    }
}
