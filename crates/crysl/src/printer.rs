//! Pretty-printer for CrySL rules: renders an [`crate::ast::Rule`] back to
//! source text that the parser accepts, giving the language a full
//! round trip (`parse(print(rule))` equals `rule`). Rule-set maintainers
//! can therefore manipulate rules programmatically and write them back.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a rule as CrySL source text.
pub fn print_rule(rule: &Rule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SPEC {}", rule.class_name);
    if !rule.objects.is_empty() {
        let _ = writeln!(out, "OBJECTS");
        for o in &rule.objects {
            let _ = writeln!(out, "    {} {};", o.ty, o.name);
        }
    }
    if !rule.events.is_empty() {
        let _ = writeln!(out, "EVENTS");
        for e in &rule.events {
            match e {
                EventDecl::Method(m) => {
                    let params: Vec<String> = m.params.iter().map(|p| p.to_string()).collect();
                    match &m.return_var {
                        Some(rv) => {
                            let _ = writeln!(
                                out,
                                "    {}: {} = {}({});",
                                m.label,
                                rv,
                                m.method_name,
                                params.join(", ")
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "    {}: {}({});",
                                m.label,
                                m.method_name,
                                params.join(", ")
                            );
                        }
                    }
                }
                EventDecl::Aggregate { label, members } => {
                    let _ = writeln!(out, "    {} := {};", label, members.join(" | "));
                }
            }
        }
    }
    if rule.order != OrderExpr::Empty {
        let _ = writeln!(out, "ORDER");
        let _ = writeln!(out, "    {}", print_order(&rule.order));
    }
    if !rule.constraints.is_empty() {
        let _ = writeln!(out, "CONSTRAINTS");
        for c in &rule.constraints {
            let _ = writeln!(out, "    {};", print_constraint(c));
        }
    }
    if !rule.forbidden.is_empty() {
        let _ = writeln!(out, "FORBIDDEN");
        for f in &rule.forbidden {
            let tys: Vec<String> = f.param_types.iter().map(|t| t.to_string()).collect();
            match &f.replacement {
                Some(r) => {
                    let _ = writeln!(out, "    {}({}) => {};", f.method_name, tys.join(", "), r);
                }
                None => {
                    let _ = writeln!(out, "    {}({});", f.method_name, tys.join(", "));
                }
            }
        }
    }
    if !rule.requires.is_empty() {
        let _ = writeln!(out, "REQUIRES");
        for p in &rule.requires {
            let _ = writeln!(out, "    {p};");
        }
    }
    if !rule.ensures.is_empty() {
        let _ = writeln!(out, "ENSURES");
        for e in &rule.ensures {
            match &e.after {
                Some(a) => {
                    let _ = writeln!(out, "    {} after {};", e.predicate, a);
                }
                None => {
                    let _ = writeln!(out, "    {};", e.predicate);
                }
            }
        }
    }
    if !rule.negates.is_empty() {
        let _ = writeln!(out, "NEGATES");
        for p in &rule.negates {
            let _ = writeln!(out, "    {p};");
        }
    }
    out
}

/// Renders an ORDER expression (fully parenthesized below the top level,
/// which the parser accepts unambiguously).
pub fn print_order(e: &OrderExpr) -> String {
    match e {
        OrderExpr::Empty => String::new(),
        OrderExpr::Label(l) => l.clone(),
        OrderExpr::Seq(parts) => parts
            .iter()
            .map(print_order_atomized)
            .collect::<Vec<_>>()
            .join(", "),
        OrderExpr::Alt(parts) => parts
            .iter()
            .map(print_order_atomized)
            .collect::<Vec<_>>()
            .join(" | "),
        OrderExpr::Opt(x) => format!("{}?", print_order_atomized(x)),
        OrderExpr::Star(x) => format!("{}*", print_order_atomized(x)),
        OrderExpr::Plus(x) => format!("{}+", print_order_atomized(x)),
    }
}

fn print_order_atomized(e: &OrderExpr) -> String {
    match e {
        OrderExpr::Label(_) | OrderExpr::Empty => print_order(e),
        OrderExpr::Opt(_) | OrderExpr::Star(_) | OrderExpr::Plus(_) => print_order(e),
        _ => format!("({})", print_order(e)),
    }
}

/// Renders a constraint.
pub fn print_constraint(c: &Constraint) -> String {
    print_constraint_prec(c, 0)
}

/// Binding strength mirroring the parser: `=>` (1) < `||` (2) < `&&` (3)
/// < atoms (4).
fn prec(c: &Constraint) -> u8 {
    match c {
        Constraint::Implies { .. } => 1,
        Constraint::Or(..) => 2,
        Constraint::And(..) => 3,
        _ => 4,
    }
}

/// Prints `c`, parenthesizing whenever its operator binds looser than the
/// surrounding context (`min`) requires, so the output reparses to the
/// identical AST. Right operands of the left-associative `&&`/`||` need
/// strictly tighter children; `=>` is non-associative, so both sides need
/// at least `||` strength.
fn print_constraint_prec(c: &Constraint, min: u8) -> String {
    let s = match c {
        Constraint::In { var, choices } => {
            let lits: Vec<String> = choices.iter().map(|l| l.to_string()).collect();
            format!("{var} in {{{}}}", lits.join(", "))
        }
        Constraint::Cmp { left, op, right } => {
            format!("{} {} {}", print_atom(left), op, print_atom(right))
        }
        Constraint::InstanceOf { var, java_type } => {
            format!("instanceof[{var}, {java_type}]")
        }
        Constraint::NeverTypeOf { var, java_type } => {
            format!("neverTypeOf[{var}, {java_type}]")
        }
        Constraint::Implies {
            antecedent,
            consequent,
        } => format!(
            "{} => {}",
            print_constraint_prec(antecedent, 2),
            print_constraint_prec(consequent, 2)
        ),
        Constraint::Or(a, b) => format!(
            "{} || {}",
            print_constraint_prec(a, 2),
            print_constraint_prec(b, 3)
        ),
        Constraint::And(a, b) => format!(
            "{} && {}",
            print_constraint_prec(a, 3),
            print_constraint_prec(b, 4)
        ),
    };
    if prec(c) < min {
        format!("({s})")
    } else {
        s
    }
}

fn print_atom(a: &Atom) -> String {
    match a {
        Atom::Var(v) => v.clone(),
        Atom::Lit(l) => l.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rule;

    #[test]
    fn prints_a_full_rule_with_every_section() {
        let src = "SPEC javax.crypto.spec.PBEKeySpec\nOBJECTS\n    char[] password;\n    byte[] salt;\n    int iterationCount;\nEVENTS\n    c1: PBEKeySpec(password, salt, iterationCount, _);\n    cP: clearPassword();\nORDER\n    c1, cP\nCONSTRAINTS\n    iterationCount >= 10000;\nFORBIDDEN\n    PBEKeySpec(char[]) => c1;\nREQUIRES\n    randomized[salt];\nENSURES\n    speccedKey[this] after c1;\nNEGATES\n    speccedKey[this, _];\n";
        let rule = parse_rule(src).unwrap();
        let printed = print_rule(&rule);
        assert_eq!(printed, src);
    }

    #[test]
    fn roundtrip_is_identity_on_the_shipped_semantics() {
        let src = "SPEC X\nEVENTS\n    a: fa();\n    b: fb();\n    c: fc();\n    G := a | b;\nORDER\n    G, (a | c)+, b?, c*\n";
        let rule = parse_rule(src).unwrap();
        let reparsed = parse_rule(&print_rule(&rule)).unwrap();
        assert_eq!(rule, reparsed);
    }

    #[test]
    fn constraint_rendering_covers_all_forms() {
        let src = "SPEC X\nOBJECTS\n    int k;\n    java.lang.String a;\n    java.security.Key key;\nCONSTRAINTS\n    a in {\"AES\", \"DES\"};\n    k >= 10 && k != 11;\n    instanceof[key, javax.crypto.SecretKey] => a in {\"AES\"};\n    neverTypeOf[a, java.lang.String] || k == 1;\n";
        let rule = parse_rule(src).unwrap();
        let reparsed = parse_rule(&print_rule(&rule)).unwrap();
        assert_eq!(rule.constraints, reparsed.constraints);
    }
}
