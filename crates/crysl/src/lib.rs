//! CrySL — a domain-specific language for specifying the secure usage of
//! crypto APIs, as described in the CGO 2020 paper *CogniCryptGEN* and the
//! ECOOP 2018 paper *CrySL*.
//!
//! A CrySL rule specifies the correct use of one class: which methods exist
//! ([`ast::EventDecl`]), in which order they may be called ([`ast::OrderExpr`]),
//! which constraints parameters must satisfy ([`ast::Constraint`]), and how
//! objects of different classes compose through ENSURES/REQUIRES/NEGATES
//! predicates ([`ast::Predicate`]).
//!
//! This crate provides the full language front end:
//!
//! * [`lexer`] — hand-written tokenizer with source positions,
//! * [`parser`] — recursive-descent parser producing [`ast::Rule`]s,
//! * [`validate`] — name resolution and structural well-formedness checks,
//! * [`ruleset`] — a collection type resolving rules by class name.
//!
//! # Example
//!
//! ```
//! use crysl::parse_rule;
//!
//! let rule = parse_rule(
//!     "SPEC javax.crypto.spec.PBEKeySpec\n\
//!      OBJECTS\n  char[] password;\n  byte[] salt;\n  int iterationCount;\n\
//!      EVENTS\n  c1: PBEKeySpec(password, salt, iterationCount, _);\n\
//!      cP: clearPassword();\n\
//!      ORDER\n  c1, cP\n\
//!      CONSTRAINTS\n  iterationCount >= 10000;\n\
//!      REQUIRES\n  randomized[salt];\n\
//!      ENSURES\n  speccedKey[this] after c1;\n\
//!      NEGATES\n  speccedKey[this, _];",
//! )?;
//! assert_eq!(rule.class_name.simple_name(), "PBEKeySpec");
//! assert_eq!(rule.events.len(), 2);
//! # Ok::<(), crysl::CryslError>(())
//! ```

pub mod ast;
pub mod binfmt;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod ruleset;
pub mod validate;

pub use ast::Rule;
pub use error::CryslError;
pub use ruleset::RuleSet;

/// Parses and validates a single CrySL rule from source text.
///
/// This is the main entry point of the crate: it tokenizes `source`, parses
/// it into an [`ast::Rule`], and runs the [`validate`] pass so that every
/// returned rule is known to be well-formed.
///
/// # Errors
///
/// Returns [`CryslError`] if the source fails to tokenize, parse, or
/// validate. The error carries a line/column position where applicable.
pub fn parse_rule(source: &str) -> Result<Rule, CryslError> {
    let tokens = lexer::tokenize(source)?;
    let rule = parser::Parser::new(&tokens).parse_rule()?;
    validate::validate(&rule)?;
    Ok(rule)
}
