//! Well-formedness validation for parsed CrySL rules.
//!
//! Validation enforces the structural properties the rest of the pipeline
//! (FSM construction, code generation, static analysis) relies on:
//!
//! * object names, event labels and aggregate members are unique and resolve,
//! * `ORDER` only references declared labels,
//! * every variable used in events, constraints and predicates is declared
//!   in `OBJECTS` (or is `this` / `_`),
//! * `after` clauses reference method events,
//! * aggregates are acyclic,
//! * return-value bindings refer to declared objects.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::error::CryslError;

/// Validates a parsed rule.
///
/// # Errors
///
/// Returns [`CryslError::Validate`] describing the first violation found.
pub fn validate(rule: &Rule) -> Result<(), CryslError> {
    let mut objects = HashSet::new();
    for o in &rule.objects {
        if !objects.insert(o.name.as_str()) {
            return Err(CryslError::validate(format!(
                "duplicate object `{}`",
                o.name
            )));
        }
        if o.name == "this" || o.name == "_" {
            return Err(CryslError::validate(format!(
                "object name `{}` is reserved",
                o.name
            )));
        }
    }

    let mut labels: HashMap<&str, &EventDecl> = HashMap::new();
    for e in &rule.events {
        if labels.insert(e.label(), e).is_some() {
            return Err(CryslError::validate(format!(
                "duplicate event label `{}`",
                e.label()
            )));
        }
    }

    for e in &rule.events {
        match e {
            EventDecl::Method(m) => {
                if let Some(rv) = &m.return_var {
                    if !objects.contains(rv.as_str()) && rv != "this" {
                        return Err(CryslError::validate(format!(
                            "event `{}` binds return value to undeclared object `{rv}`",
                            m.label
                        )));
                    }
                }
                for p in &m.params {
                    if let ParamPattern::Var(v) = p {
                        if !objects.contains(v.as_str()) {
                            return Err(CryslError::validate(format!(
                                "event `{}` references undeclared object `{v}`",
                                m.label
                            )));
                        }
                    }
                }
            }
            EventDecl::Aggregate { label, members } => {
                for m in members {
                    if !labels.contains_key(m.as_str()) {
                        return Err(CryslError::validate(format!(
                            "aggregate `{label}` references unknown label `{m}`"
                        )));
                    }
                }
            }
        }
    }

    check_aggregate_cycles(rule)?;

    for l in rule.order.labels() {
        if !labels.contains_key(l) {
            return Err(CryslError::validate(format!(
                "ORDER references unknown label `{l}`"
            )));
        }
    }

    for c in &rule.constraints {
        for v in c.variables() {
            if !objects.contains(v) {
                return Err(CryslError::validate(format!(
                    "constraint references undeclared object `{v}`"
                )));
            }
        }
    }

    for p in rule.requires.iter().chain(rule.negates.iter()) {
        check_predicate_args(p, &objects)?;
    }
    for e in &rule.ensures {
        check_predicate_args(&e.predicate, &objects)?;
        if let Some(after) = &e.after {
            match labels.get(after.as_str()) {
                Some(EventDecl::Method(_)) | Some(EventDecl::Aggregate { .. }) => {}
                None => {
                    return Err(CryslError::validate(format!(
                        "ENSURES `after {after}` references unknown label"
                    )))
                }
            }
        }
    }

    for f in &rule.forbidden {
        if let Some(r) = &f.replacement {
            if !labels.contains_key(r.as_str()) {
                return Err(CryslError::validate(format!(
                    "FORBIDDEN replacement `{r}` references unknown label"
                )));
            }
        }
    }

    Ok(())
}

fn check_predicate_args(p: &Predicate, objects: &HashSet<&str>) -> Result<(), CryslError> {
    if p.args.is_empty() {
        return Err(CryslError::validate(format!(
            "predicate `{}` has no arguments; the first argument must name the carrier object",
            p.name
        )));
    }
    for a in &p.args {
        if let PredArg::Var(v) = a {
            if !objects.contains(v.as_str()) {
                return Err(CryslError::validate(format!(
                    "predicate `{}` references undeclared object `{v}`",
                    p.name
                )));
            }
        }
    }
    Ok(())
}

fn check_aggregate_cycles(rule: &Rule) -> Result<(), CryslError> {
    // Depth-first search over aggregate membership edges.
    fn visit<'a>(
        rule: &'a Rule,
        label: &'a str,
        visiting: &mut Vec<&'a str>,
        done: &mut HashSet<&'a str>,
    ) -> Result<(), CryslError> {
        if done.contains(label) {
            return Ok(());
        }
        if visiting.contains(&label) {
            return Err(CryslError::validate(format!(
                "aggregate cycle involving `{label}`"
            )));
        }
        visiting.push(label);
        if let Some(EventDecl::Aggregate { members, .. }) = rule
            .events
            .iter()
            .find(|e| e.label() == label && matches!(e, EventDecl::Aggregate { .. }))
        {
            for m in members {
                visit(rule, m, visiting, done)?;
            }
        }
        visiting.pop();
        done.insert(label);
        Ok(())
    }

    let mut done = HashSet::new();
    for e in &rule.events {
        visit(rule, e.label(), &mut Vec::new(), &mut done)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::Parser;

    fn parse_only(src: &str) -> Rule {
        let toks = tokenize(src).unwrap();
        Parser::new(&toks).parse_rule().unwrap()
    }

    fn check(src: &str) -> Result<(), CryslError> {
        validate(&parse_only(src))
    }

    #[test]
    fn accepts_well_formed_rule() {
        check(
            "SPEC X\nOBJECTS int k;\nEVENTS e: init(k);\nORDER e\nCONSTRAINTS k >= 1;\nENSURES p[this, k] after e;",
        )
        .unwrap();
    }

    #[test]
    fn rejects_duplicate_objects() {
        let err = check("SPEC X\nOBJECTS int k; int k;").unwrap_err();
        assert!(err.to_string().contains("duplicate object"));
    }

    #[test]
    fn rejects_reserved_object_names() {
        assert!(check("SPEC X\nOBJECTS int this;").is_err());
    }

    #[test]
    fn rejects_duplicate_labels() {
        assert!(check("SPEC X\nEVENTS e: a(); e: b();").is_err());
    }

    #[test]
    fn rejects_undeclared_event_param() {
        let err = check("SPEC X\nEVENTS e: init(missing);").unwrap_err();
        assert!(err.to_string().contains("undeclared object `missing`"));
    }

    #[test]
    fn rejects_unknown_order_label() {
        assert!(check("SPEC X\nEVENTS e: a();\nORDER e, f").is_err());
    }

    #[test]
    fn rejects_undeclared_constraint_var() {
        assert!(check("SPEC X\nCONSTRAINTS k >= 1;").is_err());
    }

    #[test]
    fn rejects_empty_predicate() {
        // `p[]` lexes as an array-brackets token, so an empty argument list
        // can only arise from a programmatically built rule.
        let mut rule = parse_only("SPEC X");
        rule.ensures.push(crate::ast::EnsuredPredicate {
            predicate: crate::ast::Predicate {
                name: "p".into(),
                args: Vec::new(),
            },
            after: None,
        });
        assert!(validate(&rule).is_err());
    }

    #[test]
    fn rejects_unknown_after_label() {
        assert!(check("SPEC X\nEVENTS e: a();\nENSURES p[this] after zz;").is_err());
    }

    #[test]
    fn rejects_aggregate_cycle() {
        assert!(check("SPEC X\nEVENTS a := b; b := a;").is_err());
    }

    #[test]
    fn rejects_unknown_aggregate_member() {
        assert!(check("SPEC X\nEVENTS a := zz;").is_err());
    }

    #[test]
    fn rejects_undeclared_return_binding() {
        assert!(check("SPEC X\nEVENTS e: out = a();").is_err());
    }

    #[test]
    fn rejects_unknown_forbidden_replacement() {
        assert!(check("SPEC X\nEVENTS e: a();\nFORBIDDEN bad() => zz;").is_err());
    }
}
