//! Hand-written tokenizer for CrySL source text.
//!
//! The lexer tracks 1-based line/column positions for every token so that
//! parser diagnostics can point at the offending location. Comments use the
//! Java forms `// …` and `/* … */`.

use crate::error::{CryslError, Pos};

/// The kinds of token the CrySL grammar distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (section headers are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (without quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    ColonEq,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=>`
    Arrow,
    /// `|`
    Pipe,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?`
    Question,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `_`
    Underscore,
    /// `[]` appearing directly after a type name.
    Brackets,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub pos: Pos,
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CryslError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(CryslError::lex(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CryslError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                if self.peek() == Some(b']') {
                    self.bump();
                    TokenKind::Brackets
                } else {
                    TokenKind::LBracket
                }
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::ColonEq
                } else {
                    TokenKind::Colon
                }
            }
            b'=' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::EqEq
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Arrow
                    }
                    _ => TokenKind::Assign,
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    return Err(CryslError::lex(pos, "expected `!=`"));
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    TokenKind::Pipe
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(CryslError::lex(pos, "expected `&&`"));
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(other) => {
                                return Err(CryslError::lex(
                                    pos,
                                    format!("unknown escape `\\{}`", other as char),
                                ))
                            }
                            None => return Err(CryslError::lex(pos, "unterminated string")),
                        },
                        Some(other) => s.push(other as char),
                        None => return Err(CryslError::lex(pos, "unterminated string")),
                    }
                }
                TokenKind::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let neg = c == b'-';
                if neg {
                    self.bump();
                    if !self.peek().is_some_and(|d| d.is_ascii_digit()) {
                        return Err(CryslError::lex(pos, "expected digits after `-`"));
                    }
                }
                // Accumulate negatively so `i64::MIN` (whose magnitude
                // exceeds `i64::MAX`) lexes without overflow.
                let mut value: i64 = 0;
                while let Some(d) = self.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    self.bump();
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_sub(i64::from(d - b'0')))
                        .ok_or_else(|| CryslError::lex(pos, "integer literal overflows i64"))?;
                }
                if !neg {
                    value = value
                        .checked_neg()
                        .ok_or_else(|| CryslError::lex(pos, "integer literal overflows i64"))?;
                }
                TokenKind::Int(value)
            }
            b'_' => {
                // A lone underscore is the wildcard; `_foo` is an identifier.
                if self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_alphanumeric() || d == b'_')
                {
                    self.lex_ident()
                } else {
                    self.bump();
                    TokenKind::Underscore
                }
            }
            c if c.is_ascii_alphabetic() => self.lex_ident(),
            other => {
                return Err(CryslError::lex(
                    pos,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token { kind, pos })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        // Keywords (`in`, `after`, `true`, section names, …) are
        // context-dependent in CrySL; the parser distinguishes them.
        TokenKind::Ident(s)
    }
}

/// Upper bound on accepted source size. Real CrySL rules are a few
/// hundred bytes; the cap keeps token vectors and downstream ASTs for
/// hostile inputs bounded.
pub const MAX_SOURCE_BYTES: usize = 64 * 1024;

/// Tokenizes CrySL source text into a vector ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`CryslError::Lex`] for oversized input ([`MAX_SOURCE_BYTES`]),
/// unknown characters, unterminated strings or comments, and integer
/// overflow.
pub fn tokenize(source: &str) -> Result<Vec<Token>, CryslError> {
    if source.len() > MAX_SOURCE_BYTES {
        return Err(CryslError::lex(
            Pos { line: 1, col: 1 },
            format!(
                "source is {} bytes; the limit is {MAX_SOURCE_BYTES}",
                source.len()
            ),
        ));
    }
    let mut lexer = Lexer::new(source);
    let mut tokens = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        tokens.push(tok);
        if done {
            return Ok(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) { } [ ] , ; : := . == != < <= > >= => | && || ? * + _ []"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::ColonEq,
                TokenKind::Dot,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Arrow,
                TokenKind::Pipe,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Question,
                TokenKind::Star,
                TokenKind::Plus,
                TokenKind::Underscore,
                TokenKind::Brackets,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(
            kinds("10000 -12 0"),
            vec![
                TokenKind::Int(10000),
                TokenKind::Int(-12),
                TokenKind::Int(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""AES/CBC/PKCS5Padding" "a\"b""#),
            vec![
                TokenKind::Str("AES/CBC/PKCS5Padding".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n still */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn underscore_prefixed_identifier() {
        assert_eq!(
            kinds("_ _x"),
            vec![
                TokenKind::Underscore,
                TokenKind::Ident("_x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("&x").is_err());
        assert!(tokenize("! x").is_err());
        assert!(tokenize("- x").is_err());
    }
}
