//! Recursive-descent parser for CrySL rules.
//!
//! Grammar (sections in fixed order, all optional except `SPEC`):
//!
//! ```text
//! rule        := "SPEC" qname
//!                ["OBJECTS"     objectDecl*]
//!                ["EVENTS"      eventDecl*]
//!                ["ORDER"       orderExpr]
//!                ["CONSTRAINTS" constraint*]
//!                ["FORBIDDEN"   forbidden*]
//!                ["REQUIRES"    predicate*]
//!                ["ENSURES"     ensured*]
//!                ["NEGATES"     predicate*]
//! objectDecl  := type ident ";"
//! eventDecl   := ident ":" [ident "="] ident "(" params ")" ";"
//!              | ident ":=" ident ("|" ident)* ";"
//! orderExpr   := alt                      // "," binds tighter than "|"
//! constraint  := orConstraint ["=>" orConstraint] ";"
//! predicate   := ident "[" predArgs "]" ";"
//! ensured     := predicate ["after" ident] ";"
//! forbidden   := ident "(" types ")" ["=>" ident] ";"
//! ```

use crate::ast::*;
use crate::error::{CryslError, Pos};
use crate::lexer::{Token, TokenKind};

/// Section keywords, in the order they must appear.
const SECTIONS: &[&str] = &[
    "SPEC",
    "OBJECTS",
    "EVENTS",
    "ORDER",
    "CONSTRAINTS",
    "FORBIDDEN",
    "REQUIRES",
    "ENSURES",
    "NEGATES",
];

/// Maximum parenthesis-nesting depth in `ORDER` and `CONSTRAINTS`
/// expressions. Recursive descent otherwise turns deep nesting in hostile
/// input into a stack overflow, which aborts the process.
pub const MAX_NEST_DEPTH: usize = 64;

/// Maximum consecutive postfix operators (`?`, `*`, `+`) on one `ORDER`
/// atom. Each operator adds a level of `Box` nesting that recursive
/// consumers (printing, dropping) must walk.
pub const MAX_POSTFIX_RUN: usize = 32;

/// Maximum terms in one `&&` or `||` chain. The chains build left-leaning
/// `Box` trees whose depth equals the term count.
pub const MAX_CHAIN_TERMS: usize = 256;

/// A recursive-descent parser over a token slice produced by
/// [`crate::lexer::tokenize`].
pub struct Parser<'t> {
    tokens: &'t [Token],
    i: usize,
    depth: usize,
}

impl<'t> Parser<'t> {
    /// Creates a parser positioned at the first token.
    pub fn new(tokens: &'t [Token]) -> Self {
        Parser {
            tokens,
            i: 0,
            depth: 0,
        }
    }

    /// Enters one level of expression nesting, rejecting input deeper
    /// than [`MAX_NEST_DEPTH`]. Callers pair it with `leave` on success;
    /// on error the parser is abandoned, so no unwinding is needed.
    fn enter(&mut self) -> Result<(), CryslError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(CryslError::parse(
                self.pos(),
                format!("expression nesting exceeds {MAX_NEST_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i.min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> &TokenKind {
        let t = &self.tokens[self.i.min(self.tokens.len() - 1)].kind;
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CryslError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(CryslError::parse(
                self.pos(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CryslError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(CryslError::parse(
                self.pos(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    /// Whether the current token starts a new section header.
    fn at_section(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if SECTIONS.contains(&s.as_str()))
            || *self.peek() == TokenKind::Eof
    }

    /// Parses a complete rule.
    ///
    /// # Errors
    ///
    /// Returns [`CryslError::Parse`] on any grammar violation; the error's
    /// position points at the unexpected token.
    pub fn parse_rule(&mut self) -> Result<Rule, CryslError> {
        self.expect_keyword("SPEC")?;
        let class_name = self.parse_qname()?;
        let mut rule = Rule {
            class_name,
            objects: Vec::new(),
            events: Vec::new(),
            order: OrderExpr::Empty,
            constraints: Vec::new(),
            forbidden: Vec::new(),
            requires: Vec::new(),
            ensures: Vec::new(),
            negates: Vec::new(),
        };
        if self.eat_keyword("OBJECTS") {
            while !self.at_section() {
                rule.objects.push(self.parse_object_decl()?);
            }
        }
        if self.eat_keyword("EVENTS") {
            while !self.at_section() {
                rule.events.push(self.parse_event_decl()?);
            }
        }
        if self.eat_keyword("ORDER") {
            rule.order = self.parse_order_alt()?;
            self.eat(&TokenKind::Semi);
        }
        if self.eat_keyword("CONSTRAINTS") {
            while !self.at_section() {
                let c = self.parse_constraint()?;
                self.expect(&TokenKind::Semi, "`;` after constraint")?;
                rule.constraints.push(c);
            }
        }
        if self.eat_keyword("FORBIDDEN") {
            while !self.at_section() {
                rule.forbidden.push(self.parse_forbidden()?);
            }
        }
        if self.eat_keyword("REQUIRES") {
            while !self.at_section() {
                let p = self.parse_predicate()?;
                self.expect(&TokenKind::Semi, "`;` after predicate")?;
                rule.requires.push(p);
            }
        }
        if self.eat_keyword("ENSURES") {
            while !self.at_section() {
                rule.ensures.push(self.parse_ensured()?);
            }
        }
        if self.eat_keyword("NEGATES") {
            while !self.at_section() {
                let p = self.parse_predicate()?;
                self.expect(&TokenKind::Semi, "`;` after predicate")?;
                rule.negates.push(p);
            }
        }
        if *self.peek() != TokenKind::Eof {
            return Err(CryslError::parse(
                self.pos(),
                format!("unexpected trailing input: {:?}", self.peek()),
            ));
        }
        Ok(rule)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CryslError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(CryslError::parse(
                self.pos(),
                format!("expected section `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_qname(&mut self) -> Result<QualifiedName, CryslError> {
        let mut name = self.expect_ident("class name")?;
        while self.eat(&TokenKind::Dot) {
            name.push('.');
            name.push_str(&self.expect_ident("name segment")?);
        }
        Ok(QualifiedName::new(name))
    }

    fn parse_type(&mut self) -> Result<TypeRef, CryslError> {
        let name = self.parse_qname()?.0;
        let mut dims = 0;
        while self.eat(&TokenKind::Brackets) {
            dims += 1;
        }
        Ok(TypeRef {
            name,
            array_dims: dims,
        })
    }

    fn parse_object_decl(&mut self) -> Result<ObjectDecl, CryslError> {
        let ty = self.parse_type()?;
        let name = self.expect_ident("object name")?;
        self.expect(&TokenKind::Semi, "`;` after object declaration")?;
        Ok(ObjectDecl { ty, name })
    }

    fn parse_event_decl(&mut self) -> Result<EventDecl, CryslError> {
        let label = self.expect_ident("event label")?;
        if self.eat(&TokenKind::ColonEq) {
            let mut members = vec![self.expect_ident("aggregate member")?];
            while self.eat(&TokenKind::Pipe) {
                members.push(self.expect_ident("aggregate member")?);
            }
            self.expect(&TokenKind::Semi, "`;` after aggregate")?;
            return Ok(EventDecl::Aggregate { label, members });
        }
        self.expect(&TokenKind::Colon, "`:` after event label")?;
        let first = self.expect_ident("method name")?;
        let (return_var, method_name) = if self.eat(&TokenKind::Assign) {
            (Some(first), self.expect_ident("method name")?)
        } else {
            (None, first)
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.parse_param_pattern()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,` between parameters")?;
            }
        }
        self.expect(&TokenKind::Semi, "`;` after event")?;
        Ok(EventDecl::Method(MethodEvent {
            label,
            return_var,
            method_name,
            params,
        }))
    }

    fn parse_param_pattern(&mut self) -> Result<ParamPattern, CryslError> {
        match self.peek().clone() {
            TokenKind::Underscore => {
                self.bump();
                Ok(ParamPattern::Wildcard)
            }
            TokenKind::Ident(s) if s == "this" => {
                self.bump();
                Ok(ParamPattern::This)
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(ParamPattern::Var(s))
            }
            other => Err(CryslError::parse(
                self.pos(),
                format!("expected parameter pattern, found {other:?}"),
            )),
        }
    }

    // ORDER — precedence: `|` < `,` < postfix ?*+ < atom
    fn parse_order_alt(&mut self) -> Result<OrderExpr, CryslError> {
        let mut parts = vec![self.parse_order_seq()?];
        while self.eat(&TokenKind::Pipe) {
            parts.push(self.parse_order_seq()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            OrderExpr::Alt(parts)
        })
    }

    fn parse_order_seq(&mut self) -> Result<OrderExpr, CryslError> {
        let mut parts = vec![self.parse_order_postfix()?];
        while self.eat(&TokenKind::Comma) {
            parts.push(self.parse_order_postfix()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            OrderExpr::Seq(parts)
        })
    }

    fn parse_order_postfix(&mut self) -> Result<OrderExpr, CryslError> {
        let mut e = self.parse_order_atom()?;
        let mut run = 0usize;
        loop {
            if self.eat(&TokenKind::Question) {
                e = OrderExpr::Opt(Box::new(e));
            } else if self.eat(&TokenKind::Star) {
                e = OrderExpr::Star(Box::new(e));
            } else if self.eat(&TokenKind::Plus) {
                e = OrderExpr::Plus(Box::new(e));
            } else {
                return Ok(e);
            }
            run += 1;
            if run > MAX_POSTFIX_RUN {
                return Err(CryslError::parse(
                    self.pos(),
                    format!("more than {MAX_POSTFIX_RUN} consecutive postfix operators"),
                ));
            }
        }
    }

    fn parse_order_atom(&mut self) -> Result<OrderExpr, CryslError> {
        if self.eat(&TokenKind::LParen) {
            self.enter()?;
            let e = self.parse_order_alt()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.leave();
            Ok(e)
        } else {
            let label = self.expect_ident("event label")?;
            Ok(OrderExpr::Label(label))
        }
    }

    // CONSTRAINTS — precedence: `=>` < `||` < `&&` < atom
    fn parse_constraint(&mut self) -> Result<Constraint, CryslError> {
        let lhs = self.parse_constraint_or()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.parse_constraint_or()?;
            Ok(Constraint::Implies {
                antecedent: Box::new(lhs),
                consequent: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_constraint_or(&mut self) -> Result<Constraint, CryslError> {
        let mut lhs = self.parse_constraint_and()?;
        let mut terms = 1usize;
        while self.eat(&TokenKind::OrOr) {
            terms += 1;
            if terms > MAX_CHAIN_TERMS {
                return Err(CryslError::parse(
                    self.pos(),
                    format!("more than {MAX_CHAIN_TERMS} `||` terms"),
                ));
            }
            let rhs = self.parse_constraint_and()?;
            lhs = Constraint::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_constraint_and(&mut self) -> Result<Constraint, CryslError> {
        let mut lhs = self.parse_constraint_atom()?;
        let mut terms = 1usize;
        while self.eat(&TokenKind::AndAnd) {
            terms += 1;
            if terms > MAX_CHAIN_TERMS {
                return Err(CryslError::parse(
                    self.pos(),
                    format!("more than {MAX_CHAIN_TERMS} `&&` terms"),
                ));
            }
            let rhs = self.parse_constraint_atom()?;
            lhs = Constraint::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_constraint_atom(&mut self) -> Result<Constraint, CryslError> {
        if self.eat(&TokenKind::LParen) {
            self.enter()?;
            let c = self.parse_constraint()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.leave();
            return Ok(c);
        }
        // instanceof[var, Type] / neverTypeOf[var, Type]
        let builtin = match self.peek() {
            TokenKind::Ident(s) if s == "instanceof" || s == "neverTypeOf" => Some(s.clone()),
            _ => None,
        };
        if let Some(kw) = builtin {
            self.bump();
            self.expect(&TokenKind::LBracket, "`[` after built-in constraint")?;
            let var = self.expect_ident("variable")?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let java_type = self.parse_qname()?;
            self.expect(&TokenKind::RBracket, "`]`")?;
            return Ok(if kw == "instanceof" {
                Constraint::InstanceOf { var, java_type }
            } else {
                Constraint::NeverTypeOf { var, java_type }
            });
        }
        let left = self.parse_atom()?;
        // `var in { ... }`
        if matches!(self.peek(), TokenKind::Ident(s) if s == "in") {
            let Atom::Var(var) = left else {
                return Err(CryslError::parse(
                    self.pos(),
                    "left-hand side of `in` must be a variable",
                ));
            };
            self.bump();
            self.expect(&TokenKind::LBrace, "`{`")?;
            let mut choices = Vec::new();
            if !self.eat(&TokenKind::RBrace) {
                loop {
                    choices.push(self.parse_literal()?);
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                    self.expect(&TokenKind::Comma, "`,` between literals")?;
                }
            }
            return Ok(Constraint::In { var, choices });
        }
        let op = match self.peek() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(CryslError::parse(
                    self.pos(),
                    format!("expected comparison operator or `in`, found {other:?}"),
                ))
            }
        };
        self.bump();
        let right = self.parse_atom()?;
        Ok(Constraint::Cmp { left, op, right })
    }

    fn parse_atom(&mut self) -> Result<Atom, CryslError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Atom::Lit(Literal::Int(i)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Atom::Lit(Literal::Str(s)))
            }
            TokenKind::Ident(s) if s == "true" => {
                self.bump();
                Ok(Atom::Lit(Literal::Bool(true)))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.bump();
                Ok(Atom::Lit(Literal::Bool(false)))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Atom::Var(s))
            }
            other => Err(CryslError::parse(
                self.pos(),
                format!("expected variable or literal, found {other:?}"),
            )),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal, CryslError> {
        match self.parse_atom()? {
            Atom::Lit(l) => Ok(l),
            Atom::Var(v) => Err(CryslError::parse(
                self.pos(),
                format!("expected literal, found variable `{v}`"),
            )),
        }
    }

    fn parse_forbidden(&mut self) -> Result<ForbiddenMethod, CryslError> {
        let method_name = self.expect_ident("method name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut param_types = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                param_types.push(self.parse_type()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,` between types")?;
            }
        }
        let replacement = if self.eat(&TokenKind::Arrow) {
            Some(self.expect_ident("replacement event label")?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;` after forbidden method")?;
        Ok(ForbiddenMethod {
            method_name,
            param_types,
            replacement,
        })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, CryslError> {
        let name = self.expect_ident("predicate name")?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RBracket) {
            loop {
                args.push(self.parse_pred_arg()?);
                if self.eat(&TokenKind::RBracket) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,` between predicate arguments")?;
            }
        }
        Ok(Predicate { name, args })
    }

    fn parse_pred_arg(&mut self) -> Result<PredArg, CryslError> {
        match self.peek().clone() {
            TokenKind::Underscore => {
                self.bump();
                Ok(PredArg::Wildcard)
            }
            TokenKind::Ident(s) if s == "this" => {
                self.bump();
                Ok(PredArg::This)
            }
            TokenKind::Ident(s) if s == "true" || s == "false" => {
                self.bump();
                Ok(PredArg::Lit(Literal::Bool(s == "true")))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(PredArg::Lit(Literal::Int(i)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(PredArg::Lit(Literal::Str(s)))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(PredArg::Var(s))
            }
            other => Err(CryslError::parse(
                self.pos(),
                format!("expected predicate argument, found {other:?}"),
            )),
        }
    }

    fn parse_ensured(&mut self) -> Result<EnsuredPredicate, CryslError> {
        let predicate = self.parse_predicate()?;
        let after = if self.eat_keyword("after") {
            Some(self.expect_ident("event label")?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;` after ensured predicate")?;
        Ok(EnsuredPredicate { predicate, after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> Result<Rule, CryslError> {
        let toks = tokenize(src)?;
        Parser::new(&toks).parse_rule()
    }

    const PBEKEYSPEC: &str = r#"
        SPEC javax.crypto.spec.PBEKeySpec
        OBJECTS
            char[] password;
            byte[] salt;
            int iterationCount;
            int keylength;
        EVENTS
            c1: PBEKeySpec(password, salt, iterationCount, keylength);
            cP: clearPassword();
        ORDER
            c1, cP
        CONSTRAINTS
            iterationCount >= 10000;
        REQUIRES
            randomized[salt];
        ENSURES
            speccedKey[this, keylength] after c1;
        NEGATES
            speccedKey[this, _];
    "#;

    #[test]
    fn parses_paper_figure_2() {
        let rule = parse(PBEKEYSPEC).unwrap();
        assert_eq!(rule.class_name.as_str(), "javax.crypto.spec.PBEKeySpec");
        assert_eq!(rule.objects.len(), 4);
        assert_eq!(rule.objects[0].ty, TypeRef::array("char"));
        assert_eq!(rule.events.len(), 2);
        let c1 = rule.method_event("c1").unwrap();
        assert!(c1.is_constructor_of("PBEKeySpec"));
        assert_eq!(c1.params.len(), 4);
        assert_eq!(
            rule.order,
            OrderExpr::Seq(vec![
                OrderExpr::Label("c1".into()),
                OrderExpr::Label("cP".into())
            ])
        );
        assert_eq!(rule.constraints.len(), 1);
        assert_eq!(rule.requires[0].name, "randomized");
        assert_eq!(rule.ensures[0].after.as_deref(), Some("c1"));
        assert_eq!(rule.negates[0].args[1], PredArg::Wildcard);
    }

    #[test]
    fn parses_aggregates_and_regex_order() {
        let rule = parse(
            "SPEC X\nEVENTS\n  g1: getInstance(alg);\n  g2: getInstance(alg, _);\n  Gets := g1 | g2;\n  i: init(_);\n  u: update(_);\n  f: doFinal(_);\nORDER\n  Gets, i, u*, (f | u)+",
        )
        .unwrap();
        assert_eq!(rule.events.len(), 6);
        let gets = rule.resolve_label("Gets");
        assert_eq!(gets.len(), 2);
        match &rule.order {
            OrderExpr::Seq(parts) => {
                assert_eq!(parts.len(), 4);
                assert!(matches!(parts[2], OrderExpr::Star(_)));
                assert!(matches!(parts[3], OrderExpr::Plus(_)));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn parses_in_constraint_and_implication() {
        let rule = parse(
            "SPEC X\nOBJECTS\n int k; java.lang.String a;\nCONSTRAINTS\n a in {\"AES\", \"Blowfish\"};\n a == \"AES\" => k >= 128;",
        )
        .unwrap();
        assert_eq!(
            rule.in_choices("a").unwrap(),
            &[Literal::Str("AES".into()), Literal::Str("Blowfish".into())]
        );
        assert!(matches!(rule.constraints[1], Constraint::Implies { .. }));
    }

    #[test]
    fn parses_instanceof_builtin() {
        let rule = parse(
            "SPEC javax.crypto.Cipher\nOBJECTS\n java.security.Key key;\nCONSTRAINTS\n instanceof[key, javax.crypto.SecretKey] => key == key;",
        )
        .unwrap();
        match &rule.constraints[0] {
            Constraint::Implies { antecedent, .. } => match antecedent.as_ref() {
                Constraint::InstanceOf { var, java_type } => {
                    assert_eq!(var, "key");
                    assert_eq!(java_type.as_str(), "javax.crypto.SecretKey");
                }
                other => panic!("expected InstanceOf, got {other:?}"),
            },
            other => panic!("expected Implies, got {other:?}"),
        }
    }

    #[test]
    fn parses_return_binding_and_forbidden() {
        let rule = parse(
            "SPEC javax.crypto.SecretKeyFactory\nOBJECTS\n javax.crypto.SecretKey key; java.security.spec.KeySpec spec;\nEVENTS\n gs: key = generateSecret(spec);\nFORBIDDEN\n PBEKeySpec(char[]) => gs;\n translateKey(java.security.Key);",
        )
        .unwrap();
        let gs = rule.method_event("gs").unwrap();
        assert_eq!(gs.return_var.as_deref(), Some("key"));
        assert_eq!(rule.forbidden.len(), 2);
        assert_eq!(rule.forbidden[0].replacement.as_deref(), Some("gs"));
        assert_eq!(rule.forbidden[0].param_types[0], TypeRef::array("char"));
        assert_eq!(rule.forbidden[1].replacement, None);
    }

    #[test]
    fn error_on_missing_spec() {
        assert!(parse("OBJECTS int k;").is_err());
    }

    #[test]
    fn error_on_trailing_garbage() {
        assert!(parse("SPEC X\nORDER a\n garbage!").is_err());
    }

    #[test]
    fn error_on_literal_lhs_of_in() {
        assert!(parse("SPEC X\nCONSTRAINTS 5 in {1};").is_err());
    }

    #[test]
    fn empty_sections_are_fine() {
        let rule = parse("SPEC java.security.SecureRandom").unwrap();
        assert_eq!(rule.order, OrderExpr::Empty);
        assert!(rule.events.is_empty());
    }
}
