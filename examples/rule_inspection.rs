//! Rule inspection — the crypto-API developer's view of the rule set.
//!
//! Prints a CrySL rule back from its AST, compiles its ORDER pattern to
//! an automaton, minimizes it, enumerates the generation candidates the
//! paper's step 3 would consider, and emits Graphviz DOT for the usage
//! pattern (pipe it into `dot -Tsvg` to visualize).
//!
//! Run with: `cargo run --example rule_inspection [ClassName]`

use cognicryptgen::crysl::printer::print_rule;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::statemachine::dot::dfa_to_dot;
use cognicryptgen::statemachine::paths::{enumerate, PathLimit};
use cognicryptgen::statemachine::{Dfa, Nfa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let class = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "java.security.Signature".to_owned());
    let rules = open(PackSource::Embedded)?.rules;
    let rule = rules
        .by_name(&class)
        .ok_or_else(|| format!("no rule for `{class}`"))?;

    println!("== Rule source (printed from the AST) ==\n");
    println!("{}", print_rule(rule));

    let nfa = Nfa::from_rule(rule)?;
    let dfa = Dfa::from_nfa(&nfa);
    let min = dfa.minimize();
    println!("== Usage-pattern automaton ==");
    println!(
        "NFA: {} states;  DFA: {} states;  minimized: {} states\n",
        nfa.state_count(),
        dfa.state_count(),
        min.state_count()
    );

    println!("== Generation candidates (accepting paths, repetition unrolled) ==");
    for path in enumerate(rule, PathLimit::default())? {
        println!("  {}", path.join(" -> "));
    }

    println!("\n== Graphviz DOT (minimized) ==\n");
    println!("{}", dfa_to_dot(&min, &format!("{class} usage pattern")));
    Ok(())
}
