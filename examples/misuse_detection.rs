//! The paper's motivating example (Figure 1): an insecure password-based
//! encryption implementation that compiles and runs without exceptions,
//! yet contains three security-breaking misuses — a constant salt, a
//! `String`-sourced password, and a missing `clearPassword()` call.
//!
//! This example runs the CrySL static analyzer over the insecure program
//! (all three misuses reported), then over the CogniCryptGEN-generated
//! counterpart (clean) — the paper's point that generation prevents
//! misuses that detection can only report after the fact.
//!
//! Run with: `cargo run --example misuse_detection`

use cognicryptgen::core::generate;
use cognicryptgen::javamodel::ast::*;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases;

/// Figure 1, transcribed into the Java model.
fn insecure_pbe() -> CompilationUnit {
    let generate_key = MethodDecl::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
        .param(JavaType::string(), "pwd") // misuse 2: password as String
        .statement(Stmt::decl_init(
            JavaType::byte_array(),
            "salt",
            // misuse 1: constant salt
            Expr::ArrayLit {
                elem: JavaType::Byte,
                elems: vec![15, -12, 94, 0, 12, 3, -65, 73, -1, -84, -35]
                    .into_iter()
                    .map(Expr::int)
                    .collect(),
            },
        ))
        .statement(Stmt::decl_init(
            JavaType::class("javax.crypto.spec.PBEKeySpec"),
            "spec",
            Expr::new_object(
                "javax.crypto.spec.PBEKeySpec",
                vec![
                    Expr::call(Expr::var("pwd"), "toCharArray", vec![]),
                    Expr::var("salt"),
                    Expr::int(100000), // the one thing Figure 1 gets right
                    Expr::int(256),
                ],
            ),
        ))
        .statement(Stmt::decl_init(
            JavaType::class("javax.crypto.SecretKeyFactory"),
            "skf",
            Expr::static_call(
                "javax.crypto.SecretKeyFactory",
                "getInstance",
                vec![Expr::str("PBKDF2WithHmacSHA256")],
            ),
        ))
        .statement(Stmt::decl_init(
            JavaType::class("javax.crypto.SecretKey"),
            "secretKey",
            Expr::call(Expr::var("skf"), "generateSecret", vec![Expr::var("spec")]),
        ))
        .statement(Stmt::decl_init(
            JavaType::byte_array(),
            "keyMaterial",
            Expr::call(Expr::var("secretKey"), "getEncoded", vec![]),
        ))
        .statement(Stmt::decl_init(
            JavaType::class("javax.crypto.spec.SecretKeySpec"),
            "cipherKey",
            Expr::new_object(
                "javax.crypto.spec.SecretKeySpec",
                vec![Expr::var("keyMaterial"), Expr::str("AES")],
            ),
        ))
        // misuse 3: clearPassword() never called
        .statement(Stmt::Return(Some(Expr::var("cipherKey"))));
    CompilationUnit::new("app").class(ClassDecl::new("InsecurePbe").method(generate_key))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = open(PackSource::Embedded)?.rules;
    let table = jca_type_table();

    println!("== Analyzing the paper's Figure 1 (hand-written, insecure) ==");
    let misuses = analyze_unit(&insecure_pbe(), &rules, &table, AnalyzerOptions::default());
    for m in &misuses {
        println!("  - {m}");
    }
    assert_eq!(misuses.len(), 3, "Figure 1 exhibits exactly three misuses");

    println!("\n== Analyzing the CogniCryptGEN-generated counterpart ==");
    let generated = generate(&usecases::pbe::pbe_byte_arrays(), &rules, &table)?;
    let clean = analyze_unit(&generated.unit, &rules, &table, AnalyzerOptions::default());
    println!("  {} misuses", clean.len());
    assert!(clean.is_empty());
    println!("\nGeneration prevents what analysis can only detect.");
    Ok(())
}
