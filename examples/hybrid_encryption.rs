//! Hybrid encryption scenario (paper Table 1, #5–7).
//!
//! Generates the hybrid byte-array encryptor, then plays both sides of a
//! message exchange: the recipient publishes an RSA key pair; the sender
//! generates a fresh AES session key, encrypts the payload symmetrically
//! and wraps the session key under the recipient's public key; the
//! recipient unwraps and decrypts. The `instanceof` constraints of the
//! Cipher rule (paper §4) make the generator pick AES/CBC for the data
//! cipher and RSA for the key-wrapping cipher automatically.
//!
//! Run with: `cargo run --example hybrid_encryption`

use cognicryptgen::core::generate;
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::{ClassDecl, CompilationUnit, Expr, JavaType, MethodDecl, Stmt};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases::hybrid;

fn key_accessor(recv: Value, name: &str) -> Value {
    let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
        .param(JavaType::class("java.security.KeyPair"), "kp")
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("kp"),
            name,
            vec![],
        ))));
    let unit = CompilationUnit::new("helper").class(ClassDecl::new("Acc").method(m));
    let mut helper = Interpreter::new(&unit);
    helper
        .call_static_style("Acc", "acc", vec![recv])
        .expect("accessor runs")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(
        &hybrid::hybrid_byte_arrays(),
        &open(PackSource::Embedded)?.rules,
        &jca_type_table(),
    )?;
    println!(
        "Generated {} lines of Java.\n",
        generated.java_source.lines().count()
    );

    let cls = "HybridByteArrayEncryptor";
    let mut interp = Interpreter::new(&generated.unit);

    // Recipient side: publish a key pair.
    let key_pair = interp.call_static_style(cls, "generateKeyPair", vec![])?;
    let public_key = key_accessor(key_pair.clone(), "getPublic");
    let private_key = key_accessor(key_pair, "getPrivate");
    println!("[recipient] key pair generated");

    // Sender side: fresh session key, encrypt, wrap.
    let session_key = interp.call_static_style(cls, "generateSessionKey", vec![])?;
    let payload = b"meet me at the usual place, 6pm".to_vec();
    let ciphertext = interp.call_static_style(
        cls,
        "encryptData",
        vec![Value::bytes(payload.clone()), session_key.clone()],
    )?;
    let wrapped_key =
        interp.call_static_style(cls, "wrapSessionKey", vec![session_key, public_key])?;
    println!(
        "[sender] payload encrypted ({} bytes), session key wrapped ({} bytes)",
        ciphertext.as_bytes()?.len(),
        wrapped_key.as_bytes()?.len()
    );

    // Recipient side: unwrap, decrypt.
    let recovered_key =
        interp.call_static_style(cls, "unwrapSessionKey", vec![wrapped_key, private_key])?;
    let decrypted =
        interp.call_static_style(cls, "decryptData", vec![ciphertext, recovered_key])?;
    assert_eq!(decrypted.as_bytes()?, payload);
    println!("[recipient] payload recovered: round trip succeeded");
    Ok(())
}
