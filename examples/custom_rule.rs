//! Extending CogniCryptGEN with a new use case — the crypto-API
//! developer's perspective (the paper's RQ4/RQ5 audience).
//!
//! A domain expert who wants a new use case writes (a) a CrySL rule per
//! involved class and (b) a small Java code template. This example adds a
//! *message authentication* use case on top of the shipped `Mac` rule:
//! generate an AES key, compute an HMAC tag, verify it.
//!
//! Run with: `cargo run --example custom_rule`

use cognicryptgen::core::generate;
use cognicryptgen::core::template::{CrySlCodeGenerator, Template, TemplateMethod};
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::{Expr, JavaType, Stmt};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = open(PackSource::Embedded)?.rules;
    let table = jca_type_table();

    // The template a crypto expert would write: two wrapper methods with
    // fluent-API chains, a few lines of glue.
    let generate_key =
        TemplateMethod::new("generateKey", JavaType::class("javax.crypto.SecretKey"))
            .pre(Stmt::decl_init(
                JavaType::class("javax.crypto.SecretKey"),
                "key",
                Expr::null(),
            ))
            .chain(
                CrySlCodeGenerator::get_instance()
                    .consider_crysl_rule("javax.crypto.KeyGenerator")
                    .add_return_object("key")
                    .build(),
            )
            .post(Stmt::Return(Some(Expr::var("key"))));

    let tag = TemplateMethod::new("authenticate", JavaType::byte_array())
        .param(JavaType::byte_array(), "message")
        .param(JavaType::class("javax.crypto.SecretKey"), "key")
        .pre(Stmt::decl_init(JavaType::byte_array(), "tag", Expr::null()))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("javax.crypto.Mac")
                .add_parameter("key", "key")
                .add_parameter("message", "input")
                .add_return_object("tag")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::var("tag"))));

    let verify = TemplateMethod::new("verify", JavaType::Boolean)
        .param(JavaType::byte_array(), "message")
        .param(JavaType::class("javax.crypto.SecretKey"), "key")
        .param(JavaType::byte_array(), "expectedTag")
        .pre(Stmt::decl_init(JavaType::byte_array(), "tag", Expr::null()))
        .chain(
            CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("javax.crypto.Mac")
                .add_parameter("key", "key")
                .add_parameter("message", "input")
                .add_return_object("tag")
                .build(),
        )
        .post(Stmt::Return(Some(Expr::static_call(
            "java.util.Arrays",
            "equals",
            vec![Expr::var("tag"), Expr::var("expectedTag")],
        ))));

    let template = Template::new("de.crypto.cognicrypt", "MessageAuthenticator")
        .method(generate_key)
        .method(tag)
        .method(verify);

    let generated = generate(&template, &rules, &table)?;
    println!("{}", generated.java_source);

    // Drive it: tag a message, verify, reject tampering.
    let mut interp = Interpreter::new(&generated.unit);
    let cls = "MessageAuthenticator";
    let key = interp.call_static_style(cls, "generateKey", vec![])?;
    let msg = b"wire transfer: 100 coins to alice".to_vec();
    let tag = interp.call_static_style(
        cls,
        "authenticate",
        vec![Value::bytes(msg.clone()), key.clone()],
    )?;
    let ok = interp.call_static_style(
        cls,
        "verify",
        vec![Value::bytes(msg), key.clone(), tag.clone()],
    )?;
    assert!(ok.as_bool()?);
    let tampered = interp.call_static_style(
        cls,
        "verify",
        vec![
            Value::bytes(b"wire transfer: 999 coins to mallory".to_vec()),
            key,
            tag,
        ],
    )?;
    assert!(!tampered.as_bool()?);
    println!("MAC use case generated and verified end to end.");
    Ok(())
}
