//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 4 template for password-based encryption, generates
//! the Figure 5 Java code from the CrySL rules, prints it, verifies it
//! with the static analyzer, and finally *executes* it on the simulated
//! JCA provider to derive a key and encrypt/decrypt a message.
//!
//! Run with: `cargo run --example quickstart`

use cognicryptgen::core::generate;
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast;
use cognicryptgen::usecases;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = open(PackSource::Embedded)?.rules;
    let table = jca_type_table();

    // 1. The code template for "PBE on byte arrays" (paper Table 1, #3).
    let template = usecases::pbe::pbe_byte_arrays();
    println!(
        "== Template: {} (3 methods, ~60 LoC of glue) ==\n",
        template.class_name
    );

    // 2. Generate: rules + template -> complete Java implementation.
    let generated = generate(&template, &rules, &table)?;
    println!("== Generated Java (syntax-error free, type-checked) ==\n");
    println!("{}", generated.java_source);

    // 3. Verify with the CrySL static analyzer (CogniCryptSAST analogue).
    let misuses = sast::analyze_unit(
        &generated.unit,
        &rules,
        &table,
        sast::AnalyzerOptions::default(),
    );
    println!("== Static analysis: {} misuses ==\n", misuses.len());
    assert!(misuses.is_empty(), "generated code must be misuse-free");

    // 4. Execute the generated code on the simulated JCA provider.
    let mut interp = Interpreter::new(&generated.unit);
    let password: Vec<char> = "correct horse battery staple".chars().collect();
    let key = interp.call_static_style(
        "SecureByteArrayEncryptor",
        "getKey",
        vec![Value::chars(password)],
    )?;
    let secret = b"attack at dawn".to_vec();
    let ciphertext = interp.call_static_style(
        "SecureByteArrayEncryptor",
        "encrypt",
        vec![Value::bytes(secret.clone()), key.clone()],
    )?;
    let recovered =
        interp.call_static_style("SecureByteArrayEncryptor", "decrypt", vec![ciphertext, key])?;
    assert_eq!(recovered.as_bytes()?, secret);
    println!("== Executed: encrypt/decrypt round trip succeeded ==");
    Ok(())
}
